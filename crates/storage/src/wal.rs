//! Durable snapshot write-ahead log.
//!
//! The paper's queryable state (§VI-A) assumes committed snapshots survive
//! failures; in this reproduction the `SnapshotStore` is in-memory, so this
//! module gives the aligned-snapshot protocol a disk footprint. Every
//! checkpoint phase-1 write appends a CRC-checked *delta record* to a
//! per-partition segment file, and phase 2 seals the round with a single
//! *commit record* in a store-spanning commit log — so the on-disk commit
//! point is one atomic append, mirroring the in-memory atomic flip of
//! `SnapshotRegistry::commit`. A process kill at any instant leaves either
//! a sealed round (fully recoverable) or an unsealed tail (discarded by
//! recovery); there is no third state.
//!
//! ## Record framing
//!
//! Every record in every file is framed as:
//!
//! ```text
//! [len: u32 LE][crc32(body): u32 LE][body: len bytes]
//!   body[0]     = kind (0 header, 1 delta, 2 seal)
//!   body[1..]   = kind-specific payload
//! ```
//!
//! * `header` — magic `SQWL`, format version, partition id; written once
//!   when a file is created.
//! * `delta`  — `ssid`, full/incremental flag, and the codec-encoded
//!   `(key, Option<value>)` entries of one `write_partition` call.
//! * `seal`   — `ssid`; only ever written to the manager's `commit.wal`.
//!
//! ## Crash consistency
//!
//! Segment appends happen during phase 1, strictly before the commit
//! record. Recovery reads `commit.wal` first to learn the sealed-round set
//! `S`, then replays segment deltas keeping only versions in `S`. A torn
//! tail (a partially-written final record with nothing valid after it) is
//! truncated and counted; a CRC mismatch *followed by further valid
//! records* means a sealed region was damaged at rest, and recovery fails
//! hard rather than silently dropping committed data.
//!
//! Compaction mirrors `SnapshotStore::prune_below`: versions at or below
//! the prune horizon fold into one full base at the horizon, written to a
//! `.tmp` sibling and atomically renamed over the segment. A kill before
//! the rename leaves the old segment intact plus an ignored `.tmp` file.
//!
//! Fault injection simulates a kill with a *freeze*: once a durability
//! fault fires, every subsequent append, seal, truncate, and compaction
//! silently no-ops, so the directory stays byte-identical to the kill
//! instant while the in-memory system runs on. The durability soak then
//! cold-starts a fresh system from the directory alone.

use crate::locks::ClassedMutex;
use crate::snapshot::SnapshotStore;
use squery_common::codec;
use squery_common::fault::{FaultAction, FaultInjector};
use squery_common::lockorder::LockClass;
use squery_common::metrics::SharedHistogram;
use squery_common::telemetry::{Counter, MetricsRegistry};
use squery_common::{SqError, SqResult, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

const MAGIC: &[u8; 4] = b"SQWL";
const FORMAT_VERSION: u16 = 1;
const REC_HEADER: u8 = 0;
const REC_DELTA: u8 = 1;
const REC_SEAL: u8 = 2;
/// Sanity ceiling for one record body; anything larger is treated as a
/// corrupt length prefix.
const MAX_RECORD: u32 = 64 << 20;
/// How far past a bad frame recovery scans for a later valid frame before
/// concluding the damage is a torn tail rather than at-rest corruption.
const RESYNC_WINDOW: usize = 4 << 20;
/// The commit log: one seal record per committed round, store-spanning.
const COMMIT_LOG: &str = "commit.wal";

/// When segment and commit-log writes are flushed to stable storage.
///
/// Process-kill durability needs no fsync at all (the page cache survives
/// the process); `OnCommit` extends the guarantee to OS/machine crashes by
/// syncing dirty segments before the commit record and the commit log
/// after it, preserving write ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncMode {
    /// Never fsync (default): durable against process kills only.
    #[default]
    Never,
    /// Fsync dirty segments + the commit log at every phase-2 seal.
    OnCommit,
}

fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    0xEDB8_8320 ^ (crc >> 1)
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

fn frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Parse one frame at the head of `buf`: `Some((body, bytes_consumed))` if
/// the length is sane and the CRC matches.
fn parse_frame(buf: &[u8]) -> Option<(&[u8], usize)> {
    if buf.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap_or([0; 4])) as usize;
    if len == 0 || len > MAX_RECORD as usize || buf.len() < 8 + len {
        return None;
    }
    let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap_or([0; 4]));
    let body = &buf[8..8 + len];
    if crc32(body) != crc {
        return None;
    }
    Some((body, 8 + len))
}

fn header_body(pid: u32) -> Vec<u8> {
    let mut body = Vec::with_capacity(11);
    body.push(REC_HEADER);
    body.extend_from_slice(MAGIC);
    body.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    body.extend_from_slice(&pid.to_le_bytes());
    body
}

fn delta_body(ssid: u64, full: bool, entries: &[(Value, Option<Value>)]) -> Vec<u8> {
    let mut body = Vec::with_capacity(32);
    body.push(REC_DELTA);
    body.extend_from_slice(&ssid.to_le_bytes());
    body.push(u8::from(full));
    body.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (key, value) in entries {
        body.extend_from_slice(&codec::encode(key));
        match value {
            Some(v) => {
                body.push(1);
                body.extend_from_slice(&codec::encode(v));
            }
            None => body.push(0),
        }
    }
    body
}

/// Seal-record body. The original format was 9 bytes `[tag, ssid]`; the
/// watermark and wall-clock seal stamp extend it to 25 bytes. Recovery
/// reads only the prefix it understands, so old logs replay under new code
/// (freshness recovers as zero = unknown) and vice versa.
fn seal_body(ssid: u64, watermark_us: u64, sealed_at_us: u64) -> Vec<u8> {
    let mut body = Vec::with_capacity(25);
    body.push(REC_SEAL);
    body.extend_from_slice(&ssid.to_le_bytes());
    body.extend_from_slice(&watermark_us.to_le_bytes());
    body.extend_from_slice(&sealed_at_us.to_le_bytes());
    body
}

fn take_bytes<'a>(buf: &mut &'a [u8], n: usize) -> SqResult<&'a [u8]> {
    if buf.len() < n {
        return Err(SqError::Storage("truncated WAL record body".into()));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

/// One decoded delta record.
struct DeltaRecord {
    ssid: u64,
    full: bool,
    entries: Vec<(Value, Option<Value>)>,
}

fn decode_delta(mut body: &[u8]) -> SqResult<DeltaRecord> {
    let ssid = u64::from_le_bytes(
        take_bytes(&mut body, 8)?
            .try_into()
            .map_err(|_| SqError::Storage("bad delta ssid".into()))?,
    );
    let full = take_bytes(&mut body, 1)?[0] != 0;
    let count = u32::from_le_bytes(
        take_bytes(&mut body, 4)?
            .try_into()
            .map_err(|_| SqError::Storage("bad delta count".into()))?,
    ) as usize;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let key = codec::decode_from(&mut body)?;
        let has = take_bytes(&mut body, 1)?[0] != 0;
        let value = if has {
            Some(codec::decode_from(&mut body)?)
        } else {
            None
        };
        entries.push((key, value));
    }
    Ok(DeltaRecord {
        ssid,
        full,
        entries,
    })
}

/// Counters the WAL feeds once telemetry is attached.
struct WalMetrics {
    appends: Counter,
    bytes_written: Counter,
    seals: Counter,
    fsyncs: Counter,
    compactions: Counter,
    torn: Counter,
    recover_us: SharedHistogram,
}

impl WalMetrics {
    fn new(registry: &MetricsRegistry) -> WalMetrics {
        WalMetrics {
            appends: registry.counter("wal_appends_total", &[]),
            bytes_written: registry.counter("wal_bytes_written_total", &[]),
            seals: registry.counter("wal_seals_total", &[]),
            fsyncs: registry.counter("wal_fsyncs_total", &[]),
            compactions: registry.counter("wal_compactions_total", &[]),
            torn: registry.counter("wal_torn_truncations_total", &[]),
            recover_us: registry.histogram("wal_recover_us", &[]),
        }
    }
}

/// State shared by the manager, its commit log, and every [`StoreWal`].
struct WalShared {
    root: PathBuf,
    fsync: FsyncMode,
    retention: usize,
    frozen: AtomicBool,
    started: Instant,
    injector: OnceLock<Arc<FaultInjector>>,
    metrics: OnceLock<WalMetrics>,
}

impl WalShared {
    fn is_frozen(&self) -> bool {
        self.frozen.load(Ordering::Acquire)
    }

    fn freeze(&self) {
        self.frozen.store(true, Ordering::Release);
    }

    fn injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.get()
    }

    fn metrics(&self) -> Option<&WalMetrics> {
        self.metrics.get()
    }

    fn count_write(&self, bytes: usize) {
        if let Some(m) = self.metrics() {
            m.appends.inc();
            m.bytes_written.add(bytes as u64);
        }
    }

    fn maybe_fsync(&self, file: &File) -> SqResult<()> {
        if self.fsync == FsyncMode::OnCommit {
            file.sync_data()
                .map_err(|e| SqError::Storage(format!("WAL fsync failed: {e}")))?;
            if let Some(m) = self.metrics() {
                m.fsyncs.inc();
            }
        }
        Ok(())
    }
}

/// One partition's segment file state. `len` / `sealed_len` are logical
/// watermarks: appends advance `len`, a phase-2 seal promotes it to
/// `sealed_len`, and an abort truncates the file back to `sealed_len`.
struct Segment {
    file: Option<File>,
    len: u64,
    sealed_len: u64,
    /// Unsealed ssids with deltas in the tail (at most the one in-flight
    /// round, but tracked as a set for defence).
    pending: BTreeSet<u64>,
    /// Sealed ssids with deltas in this file.
    sealed: BTreeSet<u64>,
    /// Whether the file had any deltas appended for the round being sealed
    /// (drives per-round fsync selection).
    dirty: bool,
}

impl Segment {
    fn new() -> Segment {
        Segment {
            file: None,
            len: 0,
            sealed_len: 0,
            pending: BTreeSet::new(),
            sealed: BTreeSet::new(),
            dirty: false,
        }
    }
}

/// One key's WAL delta entry: the key and `Some(value)` or a tombstone.
pub type WalEntry = (Value, Option<Value>);

/// A recovered sealed version: `(ssid, partition, full, entries)`.
pub type RecoveredVersion = (u64, u32, bool, Vec<WalEntry>);

/// What recovery reconstructed for one store.
#[derive(Debug)]
pub struct StoreRecovery {
    /// Sealed versions in replay order: `(ssid, partition, full, entries)`.
    pub versions: Vec<RecoveredVersion>,
    /// Distinct sealed ssids with data in this store.
    pub sealed: BTreeSet<u64>,
    /// Files whose tails were truncated during this recovery.
    pub torn_truncations: u64,
}

/// One `sys_wal` row's worth of per-store accounting.
pub struct WalStoreStats {
    /// Operator (store) name, joinable with `sys_snapshots`.
    pub store: String,
    /// Partition segment files that exist on disk.
    pub segments: u64,
    /// Total segment bytes (commit log excluded).
    pub bytes: u64,
    /// Smallest sealed version with data, if any.
    pub sealed_min: Option<u64>,
    /// Largest sealed version with data, if any.
    pub sealed_max: Option<u64>,
    /// Microseconds since WAL start of the last compaction (0 = never).
    pub last_compaction_us: u64,
    /// Torn tails truncated by recovery.
    pub torn_truncations: u64,
}

/// Per-store WAL: one lazily-created segment file per partition under
/// `<root>/<operator>/part-<pid>.wal`.
pub struct StoreWal {
    name: String,
    dir: PathBuf,
    shared: Arc<WalShared>,
    segs: Vec<ClassedMutex<Segment>>,
    torn_truncations: AtomicU64,
    last_compaction_us: AtomicU64,
}

impl StoreWal {
    fn new(name: &str, partitions: usize, shared: Arc<WalShared>) -> StoreWal {
        StoreWal {
            name: name.to_string(),
            dir: shared.root.join(name),
            shared,
            segs: (0..partitions)
                .map(|_| ClassedMutex::new(LockClass::WalSegment, Segment::new()))
                .collect(),
            torn_truncations: AtomicU64::new(0),
            last_compaction_us: AtomicU64::new(0),
        }
    }

    /// Operator name this WAL belongs to.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn seg_path(&self, pid: u32) -> PathBuf {
        self.dir.join(format!("part-{pid}.wal"))
    }

    fn open_segment(&self, seg: &mut Segment, pid: u32) -> SqResult<()> {
        if seg.file.is_some() {
            return Ok(());
        }
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| SqError::Storage(format!("WAL mkdir {:?} failed: {e}", self.dir)))?;
        let path = self.seg_path(pid);
        let existed = path.exists();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| SqError::Storage(format!("WAL open {path:?} failed: {e}")))?;
        if existed {
            // Adopting a pre-existing file outside recovery: trust its
            // length and treat everything in it as sealed history.
            let disk_len = file
                .metadata()
                .map_err(|e| SqError::Storage(format!("WAL stat {path:?} failed: {e}")))?
                .len();
            if seg.len == 0 && disk_len > 0 {
                seg.len = disk_len;
                seg.sealed_len = disk_len;
            }
            seg.file = Some(file);
        } else {
            seg.file = Some(file);
            let rec = frame(&header_body(pid));
            self.write_record(seg, &rec)?;
            seg.sealed_len = seg.len;
        }
        Ok(())
    }

    fn write_record(&self, seg: &mut Segment, rec: &[u8]) -> SqResult<()> {
        let file = seg.file.as_mut().expect("segment opened before write");
        file.write_all(rec)
            .map_err(|e| SqError::Storage(format!("WAL write failed: {e}")))?;
        seg.len += rec.len() as u64;
        self.shared.count_write(rec.len());
        Ok(())
    }

    /// Append one phase-1 delta batch. Called by
    /// `SnapshotStore::write_partition` *before* it takes the partition's
    /// in-memory lock, so the durable record always precedes the version
    /// map it describes.
    pub fn append(
        &self,
        ssid: u64,
        pid: u32,
        full: bool,
        entries: &[(Value, Option<Value>)],
    ) -> SqResult<()> {
        if self.shared.is_frozen() {
            return Ok(());
        }
        let action = self
            .shared
            .injector()
            .and_then(|i| i.on_wal_append(&self.name, ssid, pid));
        let rec = frame(&delta_body(ssid, full, entries));
        let mut seg = self.segs[pid as usize].lock();
        self.open_segment(&mut seg, pid)?;
        match action {
            Some(FaultAction::FreezeWal) => {
                self.shared.freeze();
                Ok(())
            }
            Some(FaultAction::TornWrite { keep_bytes }) => {
                // Persist a strict prefix of the record — the torn tail a
                // mid-write kill leaves — then freeze the disk.
                let keep = (keep_bytes as usize)
                    .min(rec.len().saturating_sub(1))
                    .max(1);
                self.write_record(&mut seg, &rec[..keep])?;
                self.shared.freeze();
                Ok(())
            }
            _ => {
                self.write_record(&mut seg, &rec)?;
                seg.pending.insert(ssid);
                seg.dirty = true;
                Ok(())
            }
        }
    }

    /// Truncate the unsealed tail holding `ssid`'s deltas (aborted round).
    pub fn discard(&self, ssid: u64) {
        if self.shared.is_frozen() {
            return;
        }
        for seg in &self.segs {
            let mut seg = seg.lock();
            if !seg.pending.remove(&ssid) {
                continue;
            }
            if let Some(file) = seg.file.as_ref() {
                // Best effort: a failed truncate leaves an unsealed tail
                // that the next recovery discards anyway.
                let _ = file.set_len(seg.sealed_len);
            }
            seg.len = seg.sealed_len;
            seg.pending.clear();
            seg.dirty = false;
        }
    }

    /// Promote `ssid`'s pending deltas to sealed (phase-2 bookkeeping;
    /// the durable commit point is the manager's commit-log record).
    fn mark_sealed(&self, ssid: u64) -> SqResult<()> {
        for seg in &self.segs {
            let mut seg = seg.lock();
            if seg.pending.remove(&ssid) {
                seg.sealed.insert(ssid);
                seg.sealed_len = seg.len;
            }
            if seg.dirty {
                seg.dirty = false;
                if let Some(file) = seg.file.as_ref() {
                    self.shared.maybe_fsync(file)?;
                }
            }
        }
        Ok(())
    }

    /// Rewrite segments whose stale-version count (sealed versions strictly
    /// below `horizon`) reached the retention limit: fold everything at or
    /// below the horizon into one full base at the horizon — the exact
    /// fold `SnapshotStore::prune_below` applies in memory — via
    /// write-new-then-rename.
    pub fn maybe_compact(&self, horizon: u64) -> SqResult<()> {
        if self.shared.is_frozen() {
            return Ok(());
        }
        for (pid, seg) in self.segs.iter().enumerate() {
            let pid = pid as u32;
            let mut seg = seg.lock();
            if !seg.pending.is_empty() {
                continue; // never rewrite under an in-flight round
            }
            let stale = seg.sealed.iter().filter(|&&s| s < horizon).count();
            if stale == 0 || stale < self.shared.retention {
                continue;
            }
            self.compact_segment(&mut seg, pid, horizon)?;
            if self.shared.is_frozen() {
                return Ok(()); // a mid-compaction kill fired
            }
        }
        Ok(())
    }

    fn compact_segment(&self, seg: &mut Segment, pid: u32, horizon: u64) -> SqResult<()> {
        let path = self.seg_path(pid);
        let bytes = std::fs::read(&path)
            .map_err(|e| SqError::Storage(format!("WAL read {path:?} failed: {e}")))?;
        let sealed_slice = &bytes[..seg.sealed_len.min(bytes.len() as u64) as usize];
        // Replay our own writes; any parse failure here is a program error
        // surfaced as hard corruption, never silently dropped.
        let mut folded: HashMap<Value, Option<Value>> = HashMap::new();
        let mut kept: Vec<(u64, bool, Vec<WalEntry>)> = Vec::new();
        let mut off = 0usize;
        while off < sealed_slice.len() {
            let (body, used) = parse_frame(&sealed_slice[off..]).ok_or_else(|| {
                SqError::Storage(format!("corrupt WAL segment {path:?} during compaction"))
            })?;
            off += used;
            if body[0] != REC_DELTA {
                continue;
            }
            let delta = decode_delta(&body[1..])?;
            if delta.ssid <= horizon {
                if delta.full {
                    folded.clear();
                }
                for (k, v) in delta.entries {
                    folded.insert(k, v);
                }
            } else {
                kept.push((delta.ssid, delta.full, delta.entries));
            }
        }
        folded.retain(|_, v| v.is_some());
        let mut base: Vec<(Value, Option<Value>)> = folded.into_iter().collect();
        base.sort_by(|a, b| a.0.cmp(&b.0));

        let tmp = path.with_extension("wal.tmp");
        let mut out = Vec::new();
        out.extend_from_slice(&frame(&header_body(pid)));
        out.extend_from_slice(&frame(&delta_body(horizon, true, &base)));
        for (ssid, full, entries) in &kept {
            out.extend_from_slice(&frame(&delta_body(*ssid, *full, entries)));
        }
        {
            let mut f = File::create(&tmp)
                .map_err(|e| SqError::Storage(format!("WAL create {tmp:?} failed: {e}")))?;
            f.write_all(&out)
                .map_err(|e| SqError::Storage(format!("WAL write {tmp:?} failed: {e}")))?;
            self.shared.maybe_fsync(&f)?;
        }
        // The kill-mid-compaction window: the replacement exists but the
        // rename has not happened. Recovery must keep using the old file.
        if let Some(action) = self
            .shared
            .injector()
            .and_then(|i| i.on_wal_compact(&self.name, pid))
        {
            if matches!(
                action,
                FaultAction::FreezeWal | FaultAction::TornWrite { .. }
            ) {
                self.shared.freeze();
                return Ok(());
            }
        }
        std::fs::rename(&tmp, &path)
            .map_err(|e| SqError::Storage(format!("WAL rename {tmp:?} failed: {e}")))?;
        // The old handle points at the unlinked inode; reopen lazily.
        seg.file = None;
        seg.len = out.len() as u64;
        seg.sealed_len = seg.len;
        let mut sealed = BTreeSet::new();
        sealed.insert(horizon);
        sealed.extend(kept.iter().map(|(s, _, _)| *s));
        seg.sealed = sealed;
        self.last_compaction_us.store(
            self.shared.started.elapsed().as_micros() as u64,
            Ordering::Relaxed,
        );
        if let Some(m) = self.shared.metrics() {
            m.compactions.inc();
        }
        Ok(())
    }

    /// Rebuild this store's state from disk, keeping only versions in the
    /// sealed-round set `sealed_rounds` (from the manager's commit log).
    /// Torn tails are truncated; corruption inside replayed history is a
    /// hard error.
    fn recover(&self, sealed_rounds: &BTreeSet<u64>) -> SqResult<StoreRecovery> {
        let mut out = StoreRecovery {
            versions: Vec::new(),
            sealed: BTreeSet::new(),
            torn_truncations: 0,
        };
        for pid in 0..self.segs.len() as u32 {
            let path = self.seg_path(pid);
            // A compaction kill can leave a .tmp replacement that was never
            // renamed; it was never the live file, so drop it.
            let tmp = path.with_extension("wal.tmp");
            if tmp.exists() {
                let _ = std::fs::remove_file(&tmp);
            }
            if !path.exists() {
                continue;
            }
            let mut bytes = Vec::new();
            File::open(&path)
                .and_then(|mut f| f.read_to_end(&mut bytes))
                .map_err(|e| SqError::Storage(format!("WAL read {path:?} failed: {e}")))?;
            let replay = replay_segment(&path, &bytes, pid, sealed_rounds)?;
            let mut seg = self.segs[pid as usize].lock();
            if replay.keep_len < bytes.len() as u64 {
                let file = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| SqError::Storage(format!("WAL open {path:?} failed: {e}")))?;
                file.set_len(replay.keep_len)
                    .map_err(|e| SqError::Storage(format!("WAL truncate {path:?} failed: {e}")))?;
                out.torn_truncations += 1;
                self.torn_truncations.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = self.shared.metrics() {
                    m.torn.inc();
                }
            }
            seg.file = None;
            seg.len = replay.keep_len;
            seg.sealed_len = replay.keep_len;
            seg.pending.clear();
            seg.sealed = replay.sealed.clone();
            seg.dirty = false;
            out.sealed.extend(replay.sealed.iter().copied());
            out.versions.extend(
                replay
                    .versions
                    .into_iter()
                    .map(|(ssid, full, entries)| (ssid, pid, full, entries)),
            );
        }
        Ok(out)
    }

    /// Current per-store accounting for `sys_wal`.
    pub fn stats(&self) -> WalStoreStats {
        let mut segments = 0u64;
        let mut bytes = 0u64;
        let mut sealed_min = None;
        let mut sealed_max = None;
        for seg in &self.segs {
            let seg = seg.lock();
            if seg.len == 0 && seg.file.is_none() && seg.sealed.is_empty() {
                continue;
            }
            segments += 1;
            bytes += seg.len;
            if let Some(&lo) = seg.sealed.iter().next() {
                sealed_min = Some(sealed_min.map_or(lo, |m: u64| m.min(lo)));
            }
            if let Some(&hi) = seg.sealed.iter().next_back() {
                sealed_max = Some(sealed_max.map_or(hi, |m: u64| m.max(hi)));
            }
        }
        WalStoreStats {
            store: self.name.clone(),
            segments,
            bytes,
            sealed_min,
            sealed_max,
            last_compaction_us: self.last_compaction_us.load(Ordering::Relaxed),
            torn_truncations: self.torn_truncations.load(Ordering::Relaxed),
        }
    }
}

struct SegmentReplay {
    versions: Vec<(u64, bool, Vec<WalEntry>)>,
    sealed: BTreeSet<u64>,
    /// Length to keep: end of the last delta belonging to a sealed round.
    keep_len: u64,
}

/// Distinguish a torn tail from at-rest corruption: a bad frame followed
/// by *any* later valid frame means sealed history was damaged.
fn corruption_follows(bytes: &[u8], from: usize) -> bool {
    let end = bytes.len().min(from + RESYNC_WINDOW);
    for off in (from + 1)..end.saturating_sub(8) {
        if parse_frame(&bytes[off..]).is_some() {
            return true;
        }
    }
    false
}

fn replay_segment(
    path: &Path,
    bytes: &[u8],
    pid: u32,
    sealed_rounds: &BTreeSet<u64>,
) -> SqResult<SegmentReplay> {
    let mut out = SegmentReplay {
        versions: Vec::new(),
        sealed: BTreeSet::new(),
        keep_len: 0,
    };
    if bytes.is_empty() {
        return Ok(out);
    }
    let mut off = 0usize;
    let mut first = true;
    while off < bytes.len() {
        let Some((body, used)) = parse_frame(&bytes[off..]) else {
            if corruption_follows(bytes, off) {
                return Err(SqError::Storage(format!(
                    "corrupt sealed WAL segment {path:?} at offset {off}: \
                     CRC mismatch with valid records after it"
                )));
            }
            // Torn tail: a kill mid-append. Recovery keeps the sealed
            // prefix and the caller truncates the rest.
            return Ok(out);
        };
        if first {
            if body[0] != REC_HEADER
                || body.len() < 11
                || &body[1..5] != MAGIC
                || u32::from_le_bytes(body[7..11].try_into().unwrap_or([0; 4])) != pid
            {
                return Err(SqError::Storage(format!(
                    "WAL segment {path:?} has a bad header record"
                )));
            }
            first = false;
            off += used;
            out.keep_len = off as u64;
            continue;
        }
        match body[0] {
            REC_DELTA => {
                let delta = decode_delta(&body[1..])?;
                off += used;
                if sealed_rounds.contains(&delta.ssid) {
                    out.sealed.insert(delta.ssid);
                    out.versions.push((delta.ssid, delta.full, delta.entries));
                    out.keep_len = off as u64;
                }
                // An unsealed delta is a discarded round's leftover; keep
                // scanning (later sealed rounds may follow it only if an
                // abort's truncate was lost, which recovery tolerates).
            }
            REC_HEADER | REC_SEAL => {
                off += used; // ignore: seals live in the commit log
            }
            other => {
                return Err(SqError::Storage(format!(
                    "WAL segment {path:?}: unknown record kind {other}"
                )));
            }
        }
    }
    Ok(out)
}

/// The manager-level commit log state.
struct CommitLog {
    file: Option<File>,
    len: u64,
    sealed: BTreeSet<u64>,
}

/// What replaying the manager commit log yields: the sealed ssid set, the
/// per-round `(watermark_us, sealed_at_us)` freshness, and the torn-tail
/// truncation count.
type CommitLogRecovery = (BTreeSet<u64>, BTreeMap<u64, (u64, u64)>, u64);

/// What a full-directory recovery found.
#[derive(Debug)]
pub struct WalRecovery {
    /// Sealed round ids, ascending.
    pub sealed: Vec<u64>,
    /// Per-round freshness from the seal records, ascending by round:
    /// `(ssid, watermark_us, sealed_at_us)`. Zero fields mean the seal
    /// predates freshness stamping (the original 9-byte record format).
    pub freshness: Vec<(u64, u64, u64)>,
    /// Per-store recovered versions, keyed by operator name.
    pub stores: Vec<(String, StoreRecovery)>,
    /// Torn tails truncated across all files (commit log included).
    pub torn_truncations: u64,
    /// Microseconds the replay took.
    pub elapsed_us: u64,
}

/// Owns a WAL directory: per-store segment WALs plus the store-spanning
/// commit log whose single appended seal record *is* the durable commit
/// point of a checkpoint round.
pub struct WalManager {
    shared: Arc<WalShared>,
    commit: ClassedMutex<CommitLog>,
    stores: ClassedMutex<HashMap<String, Arc<StoreWal>>>,
}

impl WalManager {
    /// A manager rooted at `root` (created on first write).
    pub fn new(root: impl Into<PathBuf>, fsync: FsyncMode, retention: usize) -> WalManager {
        WalManager {
            shared: Arc::new(WalShared {
                root: root.into(),
                fsync,
                retention: retention.max(1),
                frozen: AtomicBool::new(false),
                started: Instant::now(),
                injector: OnceLock::new(),
                metrics: OnceLock::new(),
            }),
            commit: ClassedMutex::new(
                LockClass::WalSegment,
                CommitLog {
                    file: None,
                    len: 0,
                    sealed: BTreeSet::new(),
                },
            ),
            stores: ClassedMutex::new(LockClass::GridCatalog, HashMap::new()),
        }
    }

    /// The directory this WAL writes under.
    pub fn root(&self) -> &Path {
        &self.shared.root
    }

    /// Attach the metrics registry feeding the `wal_*` instruments.
    pub fn attach_telemetry(&self, registry: &MetricsRegistry) {
        let _ = self.shared.metrics.set(WalMetrics::new(registry));
    }

    /// Attach the fault injector consulted at the `wal_*` injection
    /// points (first attach wins).
    pub fn attach_fault_injector(&self, injector: Arc<FaultInjector>) {
        let _ = self.shared.injector.set(injector);
    }

    /// Simulate a process kill: all subsequent disk writes silently no-op.
    pub fn freeze(&self) {
        self.shared.freeze();
    }

    /// Whether a durability fault froze the WAL.
    pub fn is_frozen(&self) -> bool {
        self.shared.is_frozen()
    }

    /// The per-store WAL for `operator`, creating it on first use.
    pub fn store_wal(&self, operator: &str, partitions: usize) -> Arc<StoreWal> {
        let mut stores = self.stores.lock();
        Arc::clone(stores.entry(operator.to_string()).or_insert_with(|| {
            Arc::new(StoreWal::new(
                operator,
                partitions,
                Arc::clone(&self.shared),
            ))
        }))
    }

    /// Every store WAL created so far (for `sys_wal`).
    pub fn store_stats(&self) -> Vec<WalStoreStats> {
        let mut stats: Vec<WalStoreStats> =
            self.stores.lock().values().map(|w| w.stats()).collect();
        stats.sort_by(|a, b| a.store.cmp(&b.store));
        stats
    }

    fn open_commit_log(&self, log: &mut CommitLog) -> SqResult<()> {
        if log.file.is_some() {
            return Ok(());
        }
        std::fs::create_dir_all(&self.shared.root).map_err(|e| {
            SqError::Storage(format!("WAL mkdir {:?} failed: {e}", self.shared.root))
        })?;
        let path = self.shared.root.join(COMMIT_LOG);
        let existed = path.exists();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| SqError::Storage(format!("WAL open {path:?} failed: {e}")))?;
        if existed && log.len == 0 {
            log.len = file
                .metadata()
                .map_err(|e| SqError::Storage(format!("WAL stat {path:?} failed: {e}")))?
                .len();
        }
        log.file = Some(file);
        if !existed {
            let rec = frame(&header_body(u32::MAX));
            log.file
                .as_mut()
                .expect("just set")
                .write_all(&rec)
                .map_err(|e| SqError::Storage(format!("WAL write failed: {e}")))?;
            log.len += rec.len() as u64;
            self.shared.count_write(rec.len());
        }
        Ok(())
    }

    /// Phase 2: durably seal round `ssid`. Dirty segments are fsynced
    /// first (under `OnCommit`), then one seal record is appended to the
    /// commit log — the on-disk analogue of the registry's atomic flip.
    /// Consults the `wal_seal` / `wal_sealed` injection points around the
    /// commit record.
    pub fn seal_round(&self, ssid: u64) -> SqResult<()> {
        self.seal_round_with(ssid, 0, 0)
    }

    /// [`seal_round`](Self::seal_round), stamping the commit record with the
    /// round's global low watermark and seal time (µs since the unix epoch,
    /// per the caller's rebasing) so cold-start recovery can rebuild
    /// `sys_freshness` for every surviving snapshot.
    pub fn seal_round_with(&self, ssid: u64, watermark_us: u64, sealed_at_us: u64) -> SqResult<()> {
        if self.shared.is_frozen() {
            return Ok(());
        }
        let torn = match self.shared.injector().and_then(|i| i.on_wal_seal(ssid)) {
            Some(FaultAction::FreezeWal) => {
                // Kill before the commit marker: phase-1 deltas are on
                // disk but the round never seals.
                self.shared.freeze();
                return Ok(());
            }
            Some(FaultAction::TornWrite { keep_bytes }) => Some(keep_bytes as usize),
            _ => None,
        };
        let stores: Vec<Arc<StoreWal>> = { self.stores.lock().values().cloned().collect() };
        if torn.is_none() {
            for store in &stores {
                store.mark_sealed(ssid)?;
            }
        }
        let rec = frame(&seal_body(ssid, watermark_us, sealed_at_us));
        {
            let mut log = self.commit.lock();
            self.open_commit_log(&mut log)?;
            let write = match torn {
                Some(keep) => &rec[..keep.min(rec.len() - 1).max(1)],
                None => &rec[..],
            };
            let file = log.file.as_mut().expect("commit log opened");
            file.write_all(write)
                .map_err(|e| SqError::Storage(format!("WAL commit write failed: {e}")))?;
            log.len += write.len() as u64;
            self.shared.count_write(write.len());
            if torn.is_some() {
                // The torn commit marker means the round is *not* durable;
                // freeze the disk at the kill instant.
                self.shared.freeze();
                return Ok(());
            }
            log.sealed.insert(ssid);
            let file = log.file.as_ref().expect("commit log opened");
            self.shared.maybe_fsync(file)?;
        }
        if let Some(m) = self.shared.metrics() {
            m.seals.inc();
        }
        if let Some(FaultAction::FreezeWal) =
            self.shared.injector().and_then(|i| i.on_wal_sealed(ssid))
        {
            // Kill after the commit marker: the round is durable; only the
            // in-memory side still has to publish it.
            self.shared.freeze();
        }
        Ok(())
    }

    /// Sealed rounds known to the in-memory commit-log state.
    pub fn sealed_rounds(&self) -> Vec<u64> {
        self.commit.lock().sealed.iter().copied().collect()
    }

    fn recover_commit_log(&self) -> SqResult<CommitLogRecovery> {
        let path = self.shared.root.join(COMMIT_LOG);
        let mut sealed = BTreeSet::new();
        let mut freshness: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        let mut torn = 0u64;
        if !path.exists() {
            return Ok((sealed, freshness, torn));
        }
        let mut bytes = Vec::new();
        File::open(&path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| SqError::Storage(format!("WAL read {path:?} failed: {e}")))?;
        let mut off = 0usize;
        let mut keep_len = 0u64;
        let mut first = true;
        while off < bytes.len() {
            let Some((body, used)) = parse_frame(&bytes[off..]) else {
                if corruption_follows(&bytes, off) {
                    return Err(SqError::Storage(format!(
                        "corrupt WAL commit log {path:?} at offset {off}"
                    )));
                }
                break; // torn tail: the last seal never completed
            };
            if first {
                if body[0] != REC_HEADER || body.len() < 11 || &body[1..5] != MAGIC {
                    return Err(SqError::Storage(format!(
                        "WAL commit log {path:?} has a bad header record"
                    )));
                }
                first = false;
            } else if body[0] == REC_SEAL && body.len() >= 9 {
                let ssid = u64::from_le_bytes(body[1..9].try_into().unwrap_or([0; 8]));
                sealed.insert(ssid);
                // 25-byte seals carry freshness; 9-byte legacy seals do not.
                let fresh = if body.len() >= 25 {
                    (
                        u64::from_le_bytes(body[9..17].try_into().unwrap_or([0; 8])),
                        u64::from_le_bytes(body[17..25].try_into().unwrap_or([0; 8])),
                    )
                } else {
                    (0, 0)
                };
                freshness.insert(ssid, fresh);
            }
            off += used;
            keep_len = off as u64;
        }
        if keep_len < bytes.len() as u64 {
            let file = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| SqError::Storage(format!("WAL open {path:?} failed: {e}")))?;
            file.set_len(keep_len)
                .map_err(|e| SqError::Storage(format!("WAL truncate {path:?} failed: {e}")))?;
            torn += 1;
            if let Some(m) = self.shared.metrics() {
                m.torn.inc();
            }
        }
        let mut log = self.commit.lock();
        log.file = None;
        log.len = keep_len;
        log.sealed = sealed.clone();
        Ok((sealed, freshness, torn))
    }

    /// Cold-start recovery: replay the whole directory. Store WALs are
    /// created for every store subdirectory found on disk; the caller
    /// applies the returned versions to its `SnapshotStore`s and seeds the
    /// registry with the sealed rounds.
    pub fn recover(&self, partitions: usize) -> SqResult<WalRecovery> {
        let start = Instant::now();
        let (sealed, freshness, mut torn) = self.recover_commit_log()?;
        let mut stores_out = Vec::new();
        if self.shared.root.exists() {
            let mut names: Vec<String> = std::fs::read_dir(&self.shared.root)
                .map_err(|e| {
                    SqError::Storage(format!("WAL readdir {:?} failed: {e}", self.shared.root))
                })?
                .filter_map(|e| e.ok())
                .filter(|e| e.path().is_dir())
                .filter_map(|e| e.file_name().into_string().ok())
                .collect();
            names.sort();
            for name in names {
                let wal = self.store_wal(&name, partitions);
                let recovery = wal.recover(&sealed)?;
                torn += recovery.torn_truncations;
                stores_out.push((name, recovery));
            }
        }
        let elapsed_us = start.elapsed().as_micros() as u64;
        if let Some(m) = self.shared.metrics() {
            m.recover_us.record(elapsed_us);
        }
        Ok(WalRecovery {
            sealed: sealed.into_iter().collect(),
            freshness: freshness
                .into_iter()
                .map(|(ssid, (wm, at))| (ssid, wm, at))
                .collect(),
            stores: stores_out,
            torn_truncations: torn,
            elapsed_us,
        })
    }
}

/// Hook a store's WAL appends into `SnapshotStore` write paths. Kept here
/// (not in `snapshot.rs`) so the WAL protocol is reviewable in one module.
impl StoreWal {
    /// Apply a recovered version set to `store`, bypassing the WAL (the
    /// records are already on disk).
    pub fn apply_recovery(store: &SnapshotStore, recovery: &StoreRecovery) {
        for (ssid, pid, full, entries) in &recovery.versions {
            store.load_recovered(*ssid, *pid, *full, entries.clone());
        }
        if let Some(&min) = recovery.sealed.iter().next() {
            store.note_recovered_floor(min);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squery_common::fault::{FaultPlan, FaultSpec, FaultTrigger, InjectionPoint};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "squery-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn entries(items: &[(i64, i64)]) -> Vec<(Value, Option<Value>)> {
        items
            .iter()
            .map(|&(k, v)| (Value::Int(k), Some(Value::Int(v))))
            .collect()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 reference values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn frame_roundtrip_and_rejects_flips() {
        let body = delta_body(7, true, &entries(&[(1, 10), (2, 20)]));
        let rec = frame(&body);
        let (parsed, used) = parse_frame(&rec).expect("valid frame parses");
        assert_eq!(parsed, &body[..]);
        assert_eq!(used, rec.len());
        for i in 0..rec.len() {
            let mut bad = rec.clone();
            bad[i] ^= 0x40;
            if let Some((body2, _)) = parse_frame(&bad) {
                panic!("flipped byte {i} still parsed: {body2:?}");
            }
        }
    }

    #[test]
    fn seal_then_recover_roundtrips() {
        let dir = tmpdir("roundtrip");
        let mgr = WalManager::new(&dir, FsyncMode::OnCommit, 4);
        let wal = mgr.store_wal("count", 4);
        wal.append(1, 0, true, &entries(&[(1, 10), (2, 20)]))
            .unwrap();
        wal.append(1, 3, true, &entries(&[(9, 90)])).unwrap();
        mgr.seal_round(1).unwrap();
        wal.append(2, 0, false, &entries(&[(1, 11)])).unwrap();
        mgr.seal_round(2).unwrap();

        let mgr2 = WalManager::new(&dir, FsyncMode::Never, 4);
        let rec = mgr2.recover(4).unwrap();
        assert_eq!(rec.sealed, vec![1, 2]);
        assert_eq!(rec.torn_truncations, 0);
        let (name, store_rec) = &rec.stores[0];
        assert_eq!(name, "count");
        assert_eq!(
            store_rec.sealed.iter().copied().collect::<Vec<_>>(),
            vec![1, 2]
        );
        let v: Vec<_> = store_rec
            .versions
            .iter()
            .map(|(s, p, f, e)| (*s, *p, *f, e.len()))
            .collect();
        assert!(v.contains(&(1, 0, true, 2)));
        assert!(v.contains(&(1, 3, true, 1)));
        assert!(v.contains(&(2, 0, false, 1)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seal_freshness_survives_recovery() {
        let dir = tmpdir("freshness");
        {
            let mgr = WalManager::new(&dir, FsyncMode::Never, 4);
            let wal = mgr.store_wal("count", 1);
            wal.append(1, 0, true, &entries(&[(1, 10)])).unwrap();
            mgr.seal_round_with(1, 111_000, 222_000).unwrap();
            wal.append(2, 0, false, &entries(&[(1, 11)])).unwrap();
            // A plain seal records unknown (zero) freshness.
            mgr.seal_round(2).unwrap();
        }
        let mgr2 = WalManager::new(&dir, FsyncMode::Never, 4);
        let rec = mgr2.recover(1).unwrap();
        assert_eq!(rec.sealed, vec![1, 2]);
        assert_eq!(rec.freshness, vec![(1, 111_000, 222_000), (2, 0, 0)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_nine_byte_seal_records_still_recover() {
        let dir = tmpdir("legacy-seal");
        {
            let mgr = WalManager::new(&dir, FsyncMode::Never, 4);
            let wal = mgr.store_wal("count", 1);
            wal.append(1, 0, true, &entries(&[(1, 10)])).unwrap();
            mgr.seal_round_with(1, 5, 6).unwrap();
        }
        // Append a pre-freshness 9-byte seal for round 7 by hand, exactly
        // as the original format wrote it.
        let mut body = vec![REC_SEAL];
        body.extend_from_slice(&7u64.to_le_bytes());
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(COMMIT_LOG))
            .unwrap();
        f.write_all(&frame(&body)).unwrap();
        drop(f);

        let mgr2 = WalManager::new(&dir, FsyncMode::Never, 4);
        let rec = mgr2.recover(1).unwrap();
        assert_eq!(rec.sealed, vec![1, 7]);
        assert_eq!(rec.freshness, vec![(1, 5, 6), (7, 0, 0)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsealed_tail_is_discarded_and_truncated() {
        let dir = tmpdir("unsealed");
        {
            let mgr = WalManager::new(&dir, FsyncMode::Never, 4);
            let wal = mgr.store_wal("count", 2);
            wal.append(1, 0, true, &entries(&[(1, 10)])).unwrap();
            mgr.seal_round(1).unwrap();
            // Phase-1 deltas of round 2 hit the disk, but the process dies
            // before the commit marker.
            wal.append(2, 0, false, &entries(&[(1, 11)])).unwrap();
            wal.append(2, 1, false, &entries(&[(2, 22)])).unwrap();
        }
        let mgr2 = WalManager::new(&dir, FsyncMode::Never, 4);
        let rec = mgr2.recover(2).unwrap();
        assert_eq!(rec.sealed, vec![1]);
        let (_, store_rec) = &rec.stores[0];
        assert!(store_rec.versions.iter().all(|(s, ..)| *s == 1));
        // The unsealed deltas were physically truncated.
        let mgr3 = WalManager::new(&dir, FsyncMode::Never, 4);
        let rec2 = mgr3.recover(2).unwrap();
        let (_, store_rec2) = &rec2.stores[0];
        assert_eq!(store_rec2.versions.len(), store_rec.versions.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_truncates_to_last_sealed_version() {
        let dir = tmpdir("torn");
        {
            let mgr = WalManager::new(&dir, FsyncMode::Never, 4);
            let wal = mgr.store_wal("count", 1);
            wal.append(1, 0, true, &entries(&[(1, 10)])).unwrap();
            mgr.seal_round(1).unwrap();
        }
        // A kill mid-append: half a record lands at the tail.
        let seg = dir.join("count").join("part-0.wal");
        let torn_rec = frame(&delta_body(2, false, &entries(&[(1, 11)])));
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&torn_rec[..torn_rec.len() / 2]).unwrap();
        drop(f);
        let before = std::fs::metadata(&seg).unwrap().len();

        let mgr2 = WalManager::new(&dir, FsyncMode::Never, 4);
        let rec = mgr2.recover(1).unwrap();
        assert_eq!(rec.sealed, vec![1]);
        assert_eq!(rec.torn_truncations, 1);
        let (_, store_rec) = &rec.stores[0];
        assert_eq!(store_rec.versions.len(), 1);
        assert_eq!(store_rec.versions[0].0, 1);
        let after = std::fs::metadata(&seg).unwrap().len();
        assert!(after < before, "torn tail must be physically truncated");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_flip_in_sealed_region_is_a_hard_error() {
        let dir = tmpdir("flip");
        {
            let mgr = WalManager::new(&dir, FsyncMode::Never, 4);
            let wal = mgr.store_wal("count", 1);
            wal.append(1, 0, true, &entries(&[(1, 10), (2, 20)]))
                .unwrap();
            mgr.seal_round(1).unwrap();
            wal.append(2, 0, false, &entries(&[(1, 11)])).unwrap();
            mgr.seal_round(2).unwrap();
        }
        let seg = dir.join("count").join("part-0.wal");
        let mut bytes = std::fs::read(&seg).unwrap();
        // Flip a byte inside the *first* delta's body: valid records follow,
        // so this is at-rest corruption of committed data, not a torn tail.
        let mid = bytes.len() / 3;
        bytes[mid] ^= 0xFF;
        std::fs::write(&seg, &bytes).unwrap();

        let mgr2 = WalManager::new(&dir, FsyncMode::Never, 4);
        let err = mgr2.recover(1).unwrap_err();
        assert!(
            err.to_string().contains("corrupt"),
            "expected a corruption error, got: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_commit_log_drops_the_last_seal() {
        let dir = tmpdir("commit-torn");
        {
            let mgr = WalManager::new(&dir, FsyncMode::Never, 4);
            let wal = mgr.store_wal("count", 1);
            wal.append(1, 0, true, &entries(&[(1, 10)])).unwrap();
            mgr.seal_round(1).unwrap();
            wal.append(2, 0, false, &entries(&[(1, 11)])).unwrap();
            mgr.seal_round(2).unwrap();
        }
        // Cut the commit log mid-way through the final seal record.
        let commit = dir.join(COMMIT_LOG);
        let len = std::fs::metadata(&commit).unwrap().len();
        let f = OpenOptions::new().write(true).open(&commit).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);

        let mgr2 = WalManager::new(&dir, FsyncMode::Never, 4);
        let rec = mgr2.recover(1).unwrap();
        assert_eq!(rec.sealed, vec![1], "the torn seal must not count");
        assert!(rec.torn_truncations >= 1);
        let (_, store_rec) = &rec.stores[0];
        assert!(store_rec.versions.iter().all(|(s, ..)| *s == 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn discard_truncates_back_to_sealed_watermark() {
        let dir = tmpdir("discard");
        let mgr = WalManager::new(&dir, FsyncMode::Never, 4);
        let wal = mgr.store_wal("count", 1);
        wal.append(1, 0, true, &entries(&[(1, 10)])).unwrap();
        mgr.seal_round(1).unwrap();
        let seg = dir.join("count").join("part-0.wal");
        let sealed_len = std::fs::metadata(&seg).unwrap().len();
        wal.append(2, 0, false, &entries(&[(1, 11), (2, 22)]))
            .unwrap();
        assert!(std::fs::metadata(&seg).unwrap().len() > sealed_len);
        wal.discard(2);
        assert_eq!(std::fs::metadata(&seg).unwrap().len(), sealed_len);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_folds_below_horizon_and_survives_recovery() {
        let dir = tmpdir("compact");
        let mgr = WalManager::new(&dir, FsyncMode::Never, 1);
        let wal = mgr.store_wal("count", 1);
        wal.append(1, 0, true, &entries(&[(1, 10), (2, 20)]))
            .unwrap();
        mgr.seal_round(1).unwrap();
        wal.append(2, 0, false, &entries(&[(1, 11)])).unwrap();
        mgr.seal_round(2).unwrap();
        wal.append(3, 0, false, &entries(&[(2, 23)])).unwrap();
        mgr.seal_round(3).unwrap();
        // Horizon 2: versions 1 and 2 fold into a full base at 2.
        wal.maybe_compact(2).unwrap();

        let mgr2 = WalManager::new(&dir, FsyncMode::Never, 4);
        let rec = mgr2.recover(1).unwrap();
        let (_, store_rec) = &rec.stores[0];
        let ssids: BTreeSet<u64> = store_rec.versions.iter().map(|(s, ..)| *s).collect();
        assert_eq!(ssids.iter().copied().collect::<Vec<_>>(), vec![2, 3]);
        let base = store_rec
            .versions
            .iter()
            .find(|(s, _, full, _)| *s == 2 && *full)
            .expect("folded base at the horizon");
        let mut folded = base.3.clone();
        folded.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(
            folded,
            vec![
                (Value::Int(1), Some(Value::Int(11))),
                (Value::Int(2), Some(Value::Int(20)))
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_mid_compaction_keeps_the_old_segment() {
        let dir = tmpdir("compact-kill");
        let mgr = WalManager::new(&dir, FsyncMode::Never, 1);
        let plan = FaultPlan::new(0).with(FaultSpec {
            point: InjectionPoint::WalCompact,
            action: FaultAction::FreezeWal,
            trigger: FaultTrigger::default(),
            once: true,
        });
        mgr.attach_fault_injector(Arc::new(FaultInjector::new(plan)));
        let wal = mgr.store_wal("count", 1);
        wal.append(1, 0, true, &entries(&[(1, 10)])).unwrap();
        mgr.seal_round(1).unwrap();
        wal.append(2, 0, false, &entries(&[(1, 12)])).unwrap();
        mgr.seal_round(2).unwrap();
        // The kill fires after the .tmp replacement exists, before rename.
        wal.maybe_compact(2).unwrap();
        assert!(mgr.is_frozen());
        assert!(dir.join("count").join("part-0.wal.tmp").exists());

        let mgr2 = WalManager::new(&dir, FsyncMode::Never, 4);
        let rec = mgr2.recover(1).unwrap();
        let (_, store_rec) = &rec.stores[0];
        let ssids: BTreeSet<u64> = store_rec.versions.iter().map(|(s, ..)| *s).collect();
        assert_eq!(
            ssids.iter().copied().collect::<Vec<_>>(),
            vec![1, 2],
            "old segment must still replay both versions"
        );
        assert!(
            !dir.join("count").join("part-0.wal.tmp").exists(),
            "recovery removes the orphaned replacement"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn frozen_wal_absorbs_all_writes() {
        let dir = tmpdir("frozen");
        let mgr = WalManager::new(&dir, FsyncMode::Never, 4);
        let wal = mgr.store_wal("count", 1);
        wal.append(1, 0, true, &entries(&[(1, 10)])).unwrap();
        mgr.seal_round(1).unwrap();
        let seg = dir.join("count").join("part-0.wal");
        let len = std::fs::metadata(&seg).unwrap().len();
        mgr.freeze();
        wal.append(2, 0, false, &entries(&[(1, 11)])).unwrap();
        mgr.seal_round(2).unwrap();
        wal.discard(2);
        wal.maybe_compact(2).unwrap();
        assert_eq!(
            std::fs::metadata(&seg).unwrap().len(),
            len,
            "a frozen WAL must leave the disk byte-identical"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_fault_leaves_a_recoverable_torn_tail() {
        let dir = tmpdir("torn-fault");
        let mgr = WalManager::new(&dir, FsyncMode::Never, 4);
        let plan = FaultPlan::new(0).with(FaultSpec {
            point: InjectionPoint::WalAppend,
            action: FaultAction::TornWrite { keep_bytes: 7 },
            trigger: FaultTrigger {
                at_ssid: Some(2),
                ..FaultTrigger::default()
            },
            once: true,
        });
        mgr.attach_fault_injector(Arc::new(FaultInjector::new(plan)));
        let wal = mgr.store_wal("count", 1);
        wal.append(1, 0, true, &entries(&[(1, 10)])).unwrap();
        mgr.seal_round(1).unwrap();
        wal.append(2, 0, false, &entries(&[(1, 11)])).unwrap();
        assert!(mgr.is_frozen());

        let mgr2 = WalManager::new(&dir, FsyncMode::Never, 4);
        let rec = mgr2.recover(1).unwrap();
        assert_eq!(rec.sealed, vec![1]);
        assert_eq!(rec.torn_truncations, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_report_segments_bytes_and_sealed_range() {
        let dir = tmpdir("stats");
        let mgr = WalManager::new(&dir, FsyncMode::Never, 4);
        let wal = mgr.store_wal("count", 4);
        wal.append(1, 0, true, &entries(&[(1, 10)])).unwrap();
        wal.append(1, 2, true, &entries(&[(5, 50)])).unwrap();
        mgr.seal_round(1).unwrap();
        wal.append(2, 0, false, &entries(&[(1, 11)])).unwrap();
        mgr.seal_round(2).unwrap();
        let stats = mgr.store_stats();
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert_eq!(s.store, "count");
        assert_eq!(s.segments, 2);
        assert!(s.bytes > 0);
        assert_eq!(s.sealed_min, Some(1));
        assert_eq!(s.sealed_max, Some(2));
        assert_eq!(s.torn_truncations, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
