//! Partition-to-node placement.
//!
//! Assigns each of the grid's partitions a primary owner node plus
//! `backup_count` backup nodes. Placement is *contiguous by partition range*:
//! node `i` of `n` owns partitions `[i*P/n, (i+1)*P/n)`. This is deliberate —
//! [`squery_common::Partitioner::instance_of_partition`] splits operator key
//! ranges across instances with the same arithmetic, so when the scheduler
//! puts instance `i` on node `i` the instance's live-state writes are always
//! node-local. That is the co-partitioning contract of the paper's §II
//! ("the system's scheduler enforces that the state and compute of the same
//! partition are colocated").

use parking_lot::RwLock;
use squery_common::{NodeId, PartitionId, SqError, SqResult};

/// Placement of one partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionPlacement {
    /// Primary owner.
    pub primary: NodeId,
    /// Backup owners, in promotion order.
    pub backups: Vec<NodeId>,
}

/// The partition table: placement for every partition, with failover.
pub struct PartitionTable {
    placements: RwLock<Vec<PartitionPlacement>>,
    nodes: u32,
}

impl PartitionTable {
    /// Build the initial contiguous-range assignment.
    pub fn new(partitions: u32, nodes: u32, backup_count: u32) -> SqResult<PartitionTable> {
        if nodes == 0 {
            return Err(SqError::Config("need at least one node".into()));
        }
        if backup_count >= nodes && backup_count > 0 {
            return Err(SqError::Config(format!(
                "backup_count {backup_count} requires more than {nodes} nodes"
            )));
        }
        let placements = (0..partitions)
            .map(|p| {
                let primary = ((u64::from(p) * u64::from(nodes)) / u64::from(partitions)) as u32;
                let backups = (1..=backup_count)
                    .map(|b| NodeId((primary + b) % nodes))
                    .collect();
                PartitionPlacement {
                    primary: NodeId(primary),
                    backups,
                }
            })
            .collect();
        Ok(PartitionTable {
            placements: RwLock::new(placements),
            nodes,
        })
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> u32 {
        self.placements.read().len() as u32
    }

    /// Number of nodes in the cluster.
    pub fn node_count(&self) -> u32 {
        self.nodes
    }

    /// Current primary owner of a partition.
    pub fn primary_of(&self, partition: PartitionId) -> NodeId {
        self.placements.read()[partition.0 as usize].primary
    }

    /// Current backups of a partition.
    pub fn backups_of(&self, partition: PartitionId) -> Vec<NodeId> {
        self.placements.read()[partition.0 as usize].backups.clone()
    }

    /// All partitions whose primary is `node`.
    pub fn partitions_of(&self, node: NodeId) -> Vec<PartitionId> {
        self.placements
            .read()
            .iter()
            .enumerate()
            .filter(|(_, pl)| pl.primary == node)
            .map(|(i, _)| PartitionId(i as u32))
            .collect()
    }

    /// Fail a node: every partition it owned promotes its first backup to
    /// primary (the failed node is dropped from backup lists too).
    ///
    /// Returns the partitions that changed primary. Errors if a partition has
    /// no backup to promote (data loss — the caller decides how to handle it).
    pub fn fail_node(&self, failed: NodeId) -> SqResult<Vec<PartitionId>> {
        let mut placements = self.placements.write();
        let mut promoted = Vec::new();
        for (i, pl) in placements.iter_mut().enumerate() {
            pl.backups.retain(|b| *b != failed);
            if pl.primary == failed {
                if pl.backups.is_empty() {
                    return Err(SqError::Storage(format!(
                        "partition p{i} lost its primary {failed} with no backup"
                    )));
                }
                pl.primary = pl.backups.remove(0);
                promoted.push(PartitionId(i as u32));
            }
        }
        Ok(promoted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_assignment_matches_partitioner_split() {
        use squery_common::Partitioner;
        let table = PartitionTable::new(271, 7, 0).unwrap();
        let p = Partitioner::new(271);
        for part in 0..271u32 {
            let node = table.primary_of(PartitionId(part));
            let instance = p.instance_of_partition(PartitionId(part), 7);
            assert_eq!(
                node.0, instance,
                "co-partitioning broken for partition {part}"
            );
        }
    }

    #[test]
    fn every_node_owns_partitions() {
        let table = PartitionTable::new(271, 7, 1).unwrap();
        for n in 0..7 {
            let parts = table.partitions_of(NodeId(n));
            assert!(!parts.is_empty(), "node {n} owns nothing");
        }
        let total: usize = (0..7).map(|n| table.partitions_of(NodeId(n)).len()).sum();
        assert_eq!(total, 271);
    }

    #[test]
    fn backups_are_distinct_from_primary() {
        let table = PartitionTable::new(32, 4, 2).unwrap();
        for p in 0..32u32 {
            let primary = table.primary_of(PartitionId(p));
            let backups = table.backups_of(PartitionId(p));
            assert_eq!(backups.len(), 2);
            assert!(!backups.contains(&primary));
            assert_ne!(backups[0], backups[1]);
        }
    }

    #[test]
    fn failover_promotes_first_backup() {
        let table = PartitionTable::new(16, 4, 1).unwrap();
        let owned = table.partitions_of(NodeId(0));
        let expected_backup = table.backups_of(owned[0])[0];
        let promoted = table.fail_node(NodeId(0)).unwrap();
        assert_eq!(promoted, owned);
        assert_eq!(table.primary_of(owned[0]), expected_backup);
        assert!(table.partitions_of(NodeId(0)).is_empty());
    }

    #[test]
    fn failover_without_backups_errors() {
        let table = PartitionTable::new(8, 2, 0).unwrap();
        assert!(table.fail_node(NodeId(0)).is_err());
    }

    #[test]
    fn failed_node_removed_from_backup_lists() {
        let table = PartitionTable::new(16, 4, 2).unwrap();
        table.fail_node(NodeId(1)).unwrap();
        for p in 0..16u32 {
            assert_ne!(table.primary_of(PartitionId(p)), NodeId(1));
            assert!(!table.backups_of(PartitionId(p)).contains(&NodeId(1)));
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(PartitionTable::new(8, 0, 0).is_err());
        assert!(PartitionTable::new(8, 2, 2).is_err());
    }
}
