//! The order-monitoring streaming job (paper §VIII).
//!
//! Three event streams feed three stateful operators, each of which
//! "accumulates state for rider locations, order statuses, and order
//! information" — the operators the paper's Queries 1–4 and the Figure 14
//! direct-object experiment read.

use crate::events::{
    order_info_schema, order_state_schema, rider_location_schema, OrderInfoSourceFactory,
    OrderStatusSourceFactory, QCommerceConfig, RiderLocationSourceFactory,
};
use squery_streaming::dag::adapters::{FnStateful, FnStatefulOp, NullSinkFactory};
use squery_streaming::dag::Stateful;
use squery_streaming::state::KeyedState;
use squery_streaming::{EdgeKind, JobSpec, Record};
use std::sync::Arc;

/// Operator (and table) name for order info.
pub const OPERATOR_ORDER_INFO: &str = "orderinfo";
/// Operator (and table) name for order status.
pub const OPERATOR_ORDER_STATE: &str = "orderstate";
/// Operator (and table) name for rider locations.
pub const OPERATOR_RIDER: &str = "riderlocation";

/// A last-value operator: each event replaces the key's state object and is
/// forwarded downstream (so sinks observe end-to-end latency).
fn last_value_factory() -> Arc<FnStateful<impl Fn(u32, u32) -> Box<dyn Stateful> + Send + Sync>> {
    Arc::new(FnStateful(|_, _| {
        Box::new(FnStatefulOp(
            |r: Record, state: &mut dyn KeyedState, out: &mut Vec<Record>| {
                state.put(r.key.clone(), r.value.clone());
                out.push(r);
            },
        )) as Box<dyn Stateful>
    }))
}

/// Build the order-monitoring job.
///
/// `parallelism` applies to the three stateful operators; each source runs
/// with `source_parallelism` instances.
pub fn order_monitoring_job(
    cfg: QCommerceConfig,
    source_parallelism: u32,
    parallelism: u32,
) -> JobSpec {
    let mut b = JobSpec::builder("qcommerce-monitoring");
    let info_src = b.source(
        "orderinfo_events",
        source_parallelism,
        Arc::new(OrderInfoSourceFactory(cfg)),
    );
    let status_src = b.source(
        "orderstatus_events",
        source_parallelism,
        Arc::new(OrderStatusSourceFactory(cfg)),
    );
    let rider_src = b.source(
        "riderlocation_events",
        source_parallelism,
        Arc::new(RiderLocationSourceFactory(cfg)),
    );
    let info_op = b.stateful_with_schema(
        OPERATOR_ORDER_INFO,
        parallelism,
        last_value_factory(),
        order_info_schema(),
    );
    let state_op = b.stateful_with_schema(
        OPERATOR_ORDER_STATE,
        parallelism,
        last_value_factory(),
        order_state_schema(),
    );
    let rider_op = b.stateful_with_schema(
        OPERATOR_RIDER,
        parallelism,
        last_value_factory(),
        rider_location_schema(),
    );
    let sink = b.sink("sink", 1, Arc::new(NullSinkFactory));
    b.edge(info_src, info_op, EdgeKind::Keyed);
    b.edge(status_src, state_op, EdgeKind::Keyed);
    b.edge(rider_src, rider_op, EdgeKind::Keyed);
    b.edge(info_op, sink, EdgeKind::Forward);
    b.edge(state_op, sink, EdgeKind::Forward);
    b.edge(rider_op, sink, EdgeKind::Forward);
    b.build().expect("monitoring spec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{final_state_of_order, ORDER_STATES};
    use squery::{SQuery, SQueryConfig, StateConfig};
    use squery_common::Value;
    use std::time::Duration;

    fn small_cfg() -> QCommerceConfig {
        QCommerceConfig {
            orders: 200,
            riders: 50,
            events_per_instance: 200 * ORDER_STATES.len() as u64,
            rate_per_instance: None,
            prefill_passes: 0,
        }
    }

    #[test]
    fn monitoring_job_populates_all_three_operators() {
        let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
        let system = SQuery::new(config).unwrap();
        let mut job = system
            .submit(order_monitoring_job(small_cfg(), 1, 2))
            .unwrap();
        job.drain_and_checkpoint(Duration::from_secs(30)).unwrap();

        assert_eq!(
            system.grid().get_map(OPERATOR_ORDER_INFO).unwrap().len(),
            200
        );
        assert_eq!(
            system.grid().get_map(OPERATOR_ORDER_STATE).unwrap().len(),
            200
        );
        assert_eq!(system.grid().get_map(OPERATOR_RIDER).unwrap().len(), 50);
        job.stop();
    }

    #[test]
    fn order_state_holds_final_states() {
        let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
        let system = SQuery::new(config).unwrap();
        let mut job = system
            .submit(order_monitoring_job(small_cfg(), 1, 1))
            .unwrap();
        job.drain_and_checkpoint(Duration::from_secs(30)).unwrap();
        let map = system.grid().get_map(OPERATOR_ORDER_STATE).unwrap();
        for o in 0..200u64 {
            let v = map.get(&Value::Int(o as i64)).unwrap();
            let state = v.as_struct().unwrap().field("orderState").cloned();
            assert_eq!(
                state,
                Some(Value::str(final_state_of_order(o))),
                "order {o} ended in the wrong state"
            );
        }
        job.stop();
    }

    #[test]
    fn rider_state_is_two_doubles_and_a_timestamp() {
        let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
        let system = SQuery::new(config).unwrap();
        let mut job = system
            .submit(order_monitoring_job(small_cfg(), 1, 1))
            .unwrap();
        job.drain_and_checkpoint(Duration::from_secs(30)).unwrap();
        let rs = system
            .query("SELECT lat, lon, updated FROM riderlocation WHERE partitionKey = 3")
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert!(rs.rows()[0][0].as_f64().is_some());
        assert!(rs.rows()[0][1].as_f64().is_some());
        assert!(rs.rows()[0][2].as_timestamp().is_some());
        job.stop();
    }
}
