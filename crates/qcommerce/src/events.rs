//! Q-commerce event generation (index-deterministic).

use squery_common::schema::{schema, Schema};
use squery_common::{DataType, Value};
use squery_streaming::dag::SourceFactory;
use squery_streaming::source::{GeneratorSource, Source};
use squery_streaming::Record;
use std::sync::Arc;

/// The order state machine of §VIII (several intermediate states the paper
/// omits "for space savings" are represented by the ones its queries use).
pub const ORDER_STATES: [&str; 8] = [
    "ORDER_RECEIVED",
    "VENDOR_ACCEPTED",
    "NOTIFIED",
    "ACCEPTED",
    "PICKED_UP",
    "LEFT_PICKUP",
    "NEAR_CUSTOMER",
    "DELIVERED",
];

/// Delivery zones orders group by (Queries 1, 3, 4).
pub const ZONES: [&str; 8] = [
    "centrum", "north", "east", "south", "west", "harbor", "airport", "campus",
];

/// Vendor categories deliveries group by (Query 2).
pub const CATEGORIES: [&str; 5] = [
    "restaurant",
    "groceries",
    "pharmacy",
    "convenience",
    "flowers",
];

/// A far-future deadline (µs) for orders that are not late.
pub const FAR_DEADLINE_US: i64 = i64::MAX / 4;

/// Workload shape.
#[derive(Debug, Clone, Copy)]
pub struct QCommerceConfig {
    /// Distinct orders (the paper's experiments use 1 K / 10 K / 100 K).
    pub orders: u64,
    /// Distinct delivery riders.
    pub riders: u64,
    /// Status events per source instance (0 = unbounded cycling).
    pub events_per_instance: u64,
    /// Offered rate per source instance (`None` = full speed).
    pub rate_per_instance: Option<f64>,
    /// Full passes over the key space each source emits at full speed before
    /// pacing starts (state build-up for the snapshot-size experiments).
    pub prefill_passes: u32,
}

impl Default for QCommerceConfig {
    fn default() -> Self {
        QCommerceConfig {
            orders: 10_000,
            riders: 2_000,
            events_per_instance: 0,
            rate_per_instance: None,
            prefill_passes: 0,
        }
    }
}

/// SplitMix64 hash (deterministic per-entity attributes).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

// ---- deterministic per-order attributes (also used by test oracles) -------

/// How many state-machine steps order `o` reaches (1..=8).
pub fn steps_of_order(o: u64) -> usize {
    1 + (mix(o ^ 0x5157_4550) % ORDER_STATES.len() as u64) as usize
}

/// The final (current) state name of order `o` once its events are ingested.
pub fn final_state_of_order(o: u64) -> &'static str {
    ORDER_STATES[steps_of_order(o) - 1]
}

/// Whether order `o` has a deadline in the past ("late", Query 1).
pub fn order_is_late(o: u64) -> bool {
    mix(o ^ 0x4c41_5445).is_multiple_of(4)
}

/// Delivery zone of order `o`.
pub fn zone_of_order(o: u64) -> &'static str {
    ZONES[(mix(o ^ 0x5a4f_4e45) % ZONES.len() as u64) as usize]
}

/// Vendor category of order `o`.
pub fn category_of_order(o: u64) -> &'static str {
    CATEGORIES[(mix(o ^ 0x4341_5445) % CATEGORIES.len() as u64) as usize]
}

// ---- schemas ---------------------------------------------------------------

/// State-object schema of the `orderinfo` operator (the one-time order event).
pub fn order_info_schema() -> Arc<Schema> {
    schema(vec![
        ("deliveryZone", DataType::Str),
        ("vendorCategory", DataType::Str),
        ("customerLat", DataType::Float),
        ("customerLon", DataType::Float),
        ("vendorLat", DataType::Float),
        ("vendorLon", DataType::Float),
    ])
}

/// State-object schema of the `orderstate` operator (latest status).
pub fn order_state_schema() -> Arc<Schema> {
    schema(vec![
        ("orderState", DataType::Str),
        ("lateTimestamp", DataType::Timestamp),
    ])
}

/// State-object schema of the `riderlocation` operator (Figure 14's state:
/// two doubles and the last-update time).
pub fn rider_location_schema() -> Arc<Schema> {
    schema(vec![
        ("lat", DataType::Float),
        ("lon", DataType::Float),
        ("updated", DataType::Timestamp),
    ])
}

fn coord(seed: u64, base: f64) -> f64 {
    base + (mix(seed) % 20_000) as f64 / 100_000.0
}

// ---- event builders ---------------------------------------------------------

/// The order-info event for order `o` (one per order).
pub fn order_info_event(o: u64) -> Record {
    Record::new(
        o as i64,
        Value::record(
            &order_info_schema(),
            vec![
                Value::str(zone_of_order(o)),
                Value::str(category_of_order(o)),
                Value::Float(coord(o ^ 1, 52.0)),
                Value::Float(coord(o ^ 2, 4.3)),
                Value::Float(coord(o ^ 3, 52.0)),
                Value::Float(coord(o ^ 4, 4.3)),
            ],
        ),
    )
}

/// The `k`-th status event of order `o` (clamped to the order's final state).
pub fn order_status_event(o: u64, k: usize) -> Record {
    let step = k.min(steps_of_order(o) - 1);
    let deadline = if order_is_late(o) { 1 } else { FAR_DEADLINE_US };
    Record::new(
        o as i64,
        Value::record(
            &order_state_schema(),
            vec![Value::str(ORDER_STATES[step]), Value::Timestamp(deadline)],
        ),
    )
}

/// A rider-location ping.
pub fn rider_location_event(rider: u64, seq: u64) -> Record {
    Record::new(
        rider as i64,
        Value::record(
            &rider_location_schema(),
            vec![
                Value::Float(coord(rider ^ seq, 52.0)),
                Value::Float(coord(rider ^ seq ^ 7, 4.3)),
                Value::Timestamp(seq as i64),
            ],
        ),
    )
}

// ---- sources ------------------------------------------------------------------

/// Order-info source: one event per order, cycling when unbounded.
pub fn order_info_source(cfg: QCommerceConfig, instance: u32, total: u32) -> GeneratorSource {
    let (instance, total) = (u64::from(instance), u64::from(total.max(1)));
    let mut src = GeneratorSource::new(cfg.events_per_instance, move |i| {
        let o = (i * total + instance) % cfg.orders;
        Some(order_info_event(o))
    });
    if let Some(rate) = cfg.rate_per_instance {
        src = src.with_rate(rate);
    }
    src.with_prefill(u64::from(cfg.prefill_passes) * cfg.orders / total)
}

/// Order-status source: 8 slots per order, emitting the order's progression.
pub fn order_status_source(cfg: QCommerceConfig, instance: u32, total: u32) -> GeneratorSource {
    let (instance, total) = (u64::from(instance), u64::from(total.max(1)));
    let slots = ORDER_STATES.len() as u64;
    let mut src = GeneratorSource::new(cfg.events_per_instance, move |i| {
        let g = i * total + instance;
        let o = (g / slots) % cfg.orders;
        let k = (g % slots) as usize;
        Some(order_status_event(o, k))
    });
    if let Some(rate) = cfg.rate_per_instance {
        src = src.with_rate(rate);
    }
    src.with_prefill(u64::from(cfg.prefill_passes) * cfg.orders * slots / total)
}

/// Rider-location source: round-robin pings over the rider population.
pub fn rider_location_source(cfg: QCommerceConfig, instance: u32, total: u32) -> GeneratorSource {
    let (instance, total) = (u64::from(instance), u64::from(total.max(1)));
    let mut src = GeneratorSource::new(cfg.events_per_instance, move |i| {
        let g = i * total + instance;
        let rider = g % cfg.riders;
        let seq = g / cfg.riders;
        Some(rider_location_event(rider, seq))
    });
    if let Some(rate) = cfg.rate_per_instance {
        src = src.with_rate(rate);
    }
    src.with_prefill(u64::from(cfg.prefill_passes) * cfg.riders / total)
}

/// Factory for [`order_info_source`].
pub struct OrderInfoSourceFactory(pub QCommerceConfig);
impl SourceFactory for OrderInfoSourceFactory {
    fn create(&self, instance: u32, total: u32) -> Box<dyn Source> {
        Box::new(order_info_source(self.0, instance, total))
    }
}

/// Factory for [`order_status_source`].
pub struct OrderStatusSourceFactory(pub QCommerceConfig);
impl SourceFactory for OrderStatusSourceFactory {
    fn create(&self, instance: u32, total: u32) -> Box<dyn Source> {
        Box::new(order_status_source(self.0, instance, total))
    }
}

/// Factory for [`rider_location_source`].
pub struct RiderLocationSourceFactory(pub QCommerceConfig);
impl SourceFactory for RiderLocationSourceFactory {
    fn create(&self, instance: u32, total: u32) -> Box<dyn Source> {
        Box::new(rider_location_source(self.0, instance, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_machine_is_the_papers() {
        assert_eq!(ORDER_STATES[0], "ORDER_RECEIVED");
        assert_eq!(ORDER_STATES[7], "DELIVERED");
        assert!(ORDER_STATES.contains(&"VENDOR_ACCEPTED"));
        assert!(ORDER_STATES.contains(&"PICKED_UP"));
        assert!(ORDER_STATES.contains(&"NEAR_CUSTOMER"));
    }

    #[test]
    fn order_attributes_are_deterministic_and_spread() {
        let mut finals = std::collections::HashMap::new();
        let mut late = 0;
        for o in 0..10_000u64 {
            assert_eq!(steps_of_order(o), steps_of_order(o));
            *finals.entry(final_state_of_order(o)).or_insert(0) += 1;
            if order_is_late(o) {
                late += 1;
            }
        }
        assert_eq!(finals.len(), 8, "every final state occurs");
        assert!((2000..3000).contains(&late), "~25% late: {late}");
    }

    #[test]
    fn status_progression_clamps_at_final_state() {
        let o = (0..1000).find(|&o| steps_of_order(o) == 3).unwrap();
        let e2 = order_status_event(o, 2);
        let e7 = order_status_event(o, 7);
        let s2 = e2.value.as_struct().unwrap().field("orderState").cloned();
        let s7 = e7.value.as_struct().unwrap().field("orderState").cloned();
        assert_eq!(s2, s7, "later slots repeat the final state");
        assert_eq!(s2, Some(Value::str("NOTIFIED")));
    }

    #[test]
    fn late_orders_have_past_deadlines() {
        let late = (0..1000).find(|&o| order_is_late(o)).unwrap();
        let on_time = (0..1000).find(|&o| !order_is_late(o)).unwrap();
        let d_late = order_status_event(late, 0)
            .value
            .as_struct()
            .unwrap()
            .field("lateTimestamp")
            .unwrap()
            .as_timestamp()
            .unwrap();
        let d_ok = order_status_event(on_time, 0)
            .value
            .as_struct()
            .unwrap()
            .field("lateTimestamp")
            .unwrap()
            .as_timestamp()
            .unwrap();
        assert!(d_late < 1_000);
        assert_eq!(d_ok, FAR_DEADLINE_US);
    }

    #[test]
    fn sources_cover_all_orders() {
        let cfg = QCommerceConfig {
            orders: 100,
            riders: 10,
            events_per_instance: 100,
            rate_per_instance: None,
            prefill_passes: 0,
        };
        let mut src = order_info_source(cfg, 0, 1);
        let mut out = Vec::new();
        src.next_batch(200, 0, &mut out);
        let keys: std::collections::HashSet<_> = out.iter().map(|r| r.key.clone()).collect();
        assert_eq!(keys.len(), 100);
    }

    #[test]
    fn status_source_covers_full_progressions() {
        let cfg = QCommerceConfig {
            orders: 10,
            riders: 10,
            events_per_instance: 80, // 10 orders × 8 slots
            rate_per_instance: None,
            prefill_passes: 0,
        };
        let mut src = order_status_source(cfg, 0, 1);
        let mut out = Vec::new();
        src.next_batch(200, 0, &mut out);
        assert_eq!(out.len(), 80);
        // The last event of each order is its final state.
        for o in 0..10u64 {
            let last = out
                .iter()
                .rev()
                .find(|r| r.key == Value::Int(o as i64))
                .unwrap();
            assert_eq!(
                last.value.as_struct().unwrap().field("orderState"),
                Some(&Value::str(final_state_of_order(o)))
            );
        }
    }

    #[test]
    fn rider_pings_update_timestamps() {
        let cfg = QCommerceConfig {
            orders: 10,
            riders: 5,
            events_per_instance: 20,
            rate_per_instance: None,
            prefill_passes: 0,
        };
        let mut src = rider_location_source(cfg, 0, 1);
        let mut out = Vec::new();
        src.next_batch(20, 0, &mut out);
        // Rider 0 pinged at seq 0,1,2,3.
        let pings: Vec<_> = out
            .iter()
            .filter(|r| r.key == Value::Int(0))
            .map(|r| {
                r.value
                    .as_struct()
                    .unwrap()
                    .field("updated")
                    .unwrap()
                    .as_timestamp()
                    .unwrap()
            })
            .collect();
        assert_eq!(pings, vec![0, 1, 2, 3]);
    }

    #[test]
    fn multi_instance_sources_partition_the_stream() {
        let cfg = QCommerceConfig {
            orders: 100,
            riders: 10,
            events_per_instance: 50,
            rate_per_instance: None,
            prefill_passes: 0,
        };
        let mut a = order_info_source(cfg, 0, 2);
        let mut b = order_info_source(cfg, 1, 2);
        let (mut oa, mut ob) = (Vec::new(), Vec::new());
        a.next_batch(50, 0, &mut oa);
        b.next_batch(50, 0, &mut ob);
        let ka: std::collections::HashSet<_> = oa.iter().map(|r| r.key.clone()).collect();
        let kb: std::collections::HashSet<_> = ob.iter().map(|r| r.key.clone()).collect();
        assert!(ka.is_disjoint(&kb), "instances emit disjoint orders");
    }
}
