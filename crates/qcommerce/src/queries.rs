//! The paper's Queries 1–4, verbatim.
//!
//! Each captures "the need for a real-time ad-hoc view on the state of
//! orders in the system that can guide on-the-spot business decisions"
//! (§VIII). The SQL text is exactly the paper's listings (joins over the
//! snapshot tables on `partitionKey`); the oracle functions compute the
//! expected answers in closed form from the deterministic generator, which
//! is what makes the integration tests able to verify them end to end.

use crate::events::{category_of_order, final_state_of_order, order_is_late, zone_of_order};
use std::collections::BTreeMap;

/// Query 1: *How many orders are late (in preparation by the vendor for too
/// long) per area?*
pub const QUERY_1: &str = r#"SELECT COUNT(*), deliveryZone FROM "snapshot_orderinfo"
JOIN "snapshot_orderstate" USING(partitionKey)
WHERE (orderState='VENDOR_ACCEPTED' AND lateTimestamp<LOCALTIMESTAMP)
GROUP BY deliveryZone;"#;

/// Query 2: *How many deliveries are ready for pickup per shop category?*
pub const QUERY_2: &str = r#"SELECT COUNT(*), vendorCategory FROM "snapshot_orderinfo"
JOIN "snapshot_orderstate" USING(partitionKey)
WHERE (orderState='NOTIFIED' OR orderState='ACCEPTED')
GROUP BY vendorCategory;"#;

/// Query 3: *How many deliveries are being prepared per area?*
pub const QUERY_3: &str = r#"SELECT COUNT(*), deliveryZone FROM "snapshot_orderinfo"
JOIN "snapshot_orderstate" USING(partitionKey)
WHERE (orderState='VENDOR_ACCEPTED')
GROUP BY deliveryZone;"#;

/// Query 4: *How many deliveries are in transit per area?*
pub const QUERY_4: &str = r#"SELECT COUNT(*), deliveryZone FROM "snapshot_orderinfo"
JOIN "snapshot_orderstate" USING(partitionKey)
WHERE orderState='PICKED_UP' OR orderState='LEFT_PICKUP' OR
orderState='NEAR_CUSTOMER' GROUP BY deliveryZone;"#;

/// All four queries with their numbers.
pub fn all_queries() -> Vec<(u8, &'static str)> {
    vec![(1, QUERY_1), (2, QUERY_2), (3, QUERY_3), (4, QUERY_4)]
}

/// Closed-form oracle for Query 1 over orders `0..orders` whose full
/// progressions were ingested: late orders whose final state is
/// VENDOR_ACCEPTED, grouped by zone.
pub fn expected_query1(orders: u64) -> BTreeMap<&'static str, i64> {
    let mut out = BTreeMap::new();
    for o in 0..orders {
        if final_state_of_order(o) == "VENDOR_ACCEPTED" && order_is_late(o) {
            *out.entry(zone_of_order(o)).or_insert(0) += 1;
        }
    }
    out
}

/// Oracle for Query 2: orders whose final state is NOTIFIED or ACCEPTED,
/// grouped by vendor category.
pub fn expected_query2(orders: u64) -> BTreeMap<&'static str, i64> {
    let mut out = BTreeMap::new();
    for o in 0..orders {
        let s = final_state_of_order(o);
        if s == "NOTIFIED" || s == "ACCEPTED" {
            *out.entry(category_of_order(o)).or_insert(0) += 1;
        }
    }
    out
}

/// Oracle for Query 3: orders whose final state is VENDOR_ACCEPTED, by zone.
pub fn expected_query3(orders: u64) -> BTreeMap<&'static str, i64> {
    let mut out = BTreeMap::new();
    for o in 0..orders {
        if final_state_of_order(o) == "VENDOR_ACCEPTED" {
            *out.entry(zone_of_order(o)).or_insert(0) += 1;
        }
    }
    out
}

/// Oracle for Query 4: orders in transit, by zone.
pub fn expected_query4(orders: u64) -> BTreeMap<&'static str, i64> {
    let mut out = BTreeMap::new();
    for o in 0..orders {
        let s = final_state_of_order(o);
        if s == "PICKED_UP" || s == "LEFT_PICKUP" || s == "NEAR_CUSTOMER" {
            *out.entry(zone_of_order(o)).or_insert(0) += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::QCommerceConfig;
    use crate::pipeline::order_monitoring_job;
    use crate::ORDER_STATES;
    use squery::{ResultSet, SQuery, SQueryConfig, StateConfig};
    use std::time::Duration;

    const ORDERS: u64 = 400;

    fn run_monitoring() -> (SQuery, squery::JobHandle) {
        let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
        let system = SQuery::new(config).unwrap();
        let cfg = QCommerceConfig {
            orders: ORDERS,
            riders: 50,
            events_per_instance: ORDERS * ORDER_STATES.len() as u64,
            rate_per_instance: None,
            prefill_passes: 0,
        };
        let mut job = system.submit(order_monitoring_job(cfg, 1, 2)).unwrap();
        job.drain_and_checkpoint(Duration::from_secs(60)).unwrap();
        (system, job)
    }

    fn as_map(rs: &ResultSet, group_col: &str) -> BTreeMap<String, i64> {
        let counts = rs.column("COUNT(*)").unwrap();
        let groups = rs.column(group_col).unwrap();
        groups
            .iter()
            .zip(counts)
            .map(|(g, c)| (g.as_str().unwrap().to_string(), c.as_int().unwrap()))
            .collect()
    }

    fn to_owned(m: BTreeMap<&'static str, i64>) -> BTreeMap<String, i64> {
        m.into_iter().map(|(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn queries_1_through_4_match_their_oracles() {
        let (system, job) = run_monitoring();
        let q1 = system.query(QUERY_1).unwrap();
        assert_eq!(
            as_map(&q1, "deliveryZone"),
            to_owned(expected_query1(ORDERS))
        );
        let q2 = system.query(QUERY_2).unwrap();
        assert_eq!(
            as_map(&q2, "vendorCategory"),
            to_owned(expected_query2(ORDERS))
        );
        let q3 = system.query(QUERY_3).unwrap();
        assert_eq!(
            as_map(&q3, "deliveryZone"),
            to_owned(expected_query3(ORDERS))
        );
        let q4 = system.query(QUERY_4).unwrap();
        assert_eq!(
            as_map(&q4, "deliveryZone"),
            to_owned(expected_query4(ORDERS))
        );
        job.stop();
    }

    #[test]
    fn query1_is_a_subset_of_query3() {
        // Late VENDOR_ACCEPTED orders are a subset of all VENDOR_ACCEPTED.
        let q1 = expected_query1(ORDERS);
        let q3 = expected_query3(ORDERS);
        for (zone, late) in &q1 {
            assert!(late <= q3.get(zone).unwrap_or(&0));
        }
        let total1: i64 = q1.values().sum();
        let total3: i64 = q3.values().sum();
        assert!(total1 > 0 && total1 < total3);
    }

    #[test]
    fn oracles_cover_a_sane_fraction_of_orders() {
        let totals: Vec<i64> = [
            expected_query1(10_000),
            expected_query2(10_000),
            expected_query3(10_000),
            expected_query4(10_000),
        ]
        .into_iter()
        .map(|m| m.values().sum())
        .collect();
        // 8 equally likely final states: q3 ≈ 1/8, q2 ≈ 2/8, q4 ≈ 3/8,
        // q1 ≈ 1/32 of all orders.
        assert!((200..500).contains(&totals[0]), "q1: {}", totals[0]);
        assert!((2000..3000).contains(&totals[1]), "q2: {}", totals[1]);
        assert!((1000..1600).contains(&totals[2]), "q3: {}", totals[2]);
        assert!((3200..4300).contains(&totals[3]), "q4: {}", totals[3]);
    }

    #[test]
    fn all_queries_lists_four() {
        assert_eq!(all_queries().len(), 4);
    }
}
