//! # squery-qcommerce
//!
//! The Delivery Hero q-commerce workload of the paper's §VIII/§IX: a stream
//! of order-delivery events ingested by a streaming job that accumulates
//! state for **rider locations**, **order statuses**, and **order info** in
//! three stateful operators — plus the four real monitoring queries
//! (Queries 1–4) the paper runs against that state.
//!
//! The paper's data are real, anonymized order events "enriched with data
//! generated based on the real data". We generate the synthetic equivalent:
//! an index-deterministic event stream over the same schema — order state
//! machine `ORDER_RECEIVED → VENDOR_ACCEPTED → NOTIFIED → ACCEPTED →
//! PICKED_UP → LEFT_PICKUP → NEAR_CUSTOMER → DELIVERED`, per-order deadlines
//! (some deterministically late), delivery zones, vendor categories, and
//! rider coordinates with last-update timestamps (the "two doubles and a
//! timestamp" state of the Figure 14 experiment).
//!
//! Determinism in the event index keeps exactly-once replay intact *and*
//! lets tests compute expected query answers in closed form.

pub mod events;
pub mod pipeline;
pub mod queries;

pub use events::{QCommerceConfig, ORDER_STATES};
pub use pipeline::{
    order_monitoring_job, OPERATOR_ORDER_INFO, OPERATOR_ORDER_STATE, OPERATOR_RIDER,
};
pub use queries::{QUERY_1, QUERY_2, QUERY_3, QUERY_4};
