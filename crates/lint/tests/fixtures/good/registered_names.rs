// Clean fixture: every telemetry name is registered in
// crates/common/src/names.rs.

pub fn report(reg: &Registry) {
    reg.counter("map_reads_total", 1);
    reg.gauge("map_bytes", 7);
    reg.histogram("query_exec_us", 42);
    let _span = reg.spans().start("query");
}
