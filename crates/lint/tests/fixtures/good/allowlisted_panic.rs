// Clean fixture: panic sites covered by the allowlist comment, plus proper
// error handling.

pub fn drain(rx: &Receiver<u64>) -> u64 {
    rx.recv().unwrap() // lint:allow(panic_on_poison)
}

pub fn forward(tx: &Sender<u64>, v: u64) {
    if tx.send(v).is_err() {
        // peer gone; drop the sample
    }
}
