// Clean fixture: `unsafe` justified by a `// SAFETY:` comment.

pub fn read_raw(p: *const u8) -> u8 {
    // SAFETY: callers pass a pointer derived from a live &u8.
    unsafe { *p }
}
