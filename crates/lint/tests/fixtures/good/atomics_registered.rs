// Clean fixture: atomics use registered names; flag-class handoffs use
// Acquire/Release (or SeqCst), counters may be Relaxed.

pub struct Shared {
    poison: AtomicBool,
    dropped: AtomicU64,
}

pub fn crash(shared: &Shared) {
    shared.poison.store(true, Ordering::SeqCst);
}

pub fn poisoned(shared: &Shared) -> bool {
    shared.dropped.fetch_add(1, Ordering::Relaxed);
    shared.poison.load(Ordering::Acquire)
}
