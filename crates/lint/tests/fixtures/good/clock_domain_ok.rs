// Clean fixture: instant readings are rebased through `to_epoch_micros`
// before hitting epoch-domain sinks, and sibling struct fields may carry
// different domains (process-relative began_at_us next to the persisted
// epoch sealed_at_us).

impl Coordinator {
    pub fn seal(&mut self, ssid: u64, low_wm: u64) {
        let watermark_us = self.clock.to_epoch_micros(low_wm);
        let sealed_at_us = self.clock.epoch_micros();
        let _ = self.grid.wal_seal_with(ssid, watermark_us, sealed_at_us);
    }

    pub fn record(&self) -> CheckpointRecord {
        let t0 = self.clock.now_micros();
        let t1 = self.clock.now_micros();
        let sealed_at_us = self.clock.epoch_micros();
        CheckpointRecord {
            began_at_us: t0,
            phase1_us: t1 - t0,
            sealed_at_us,
        }
    }
}
