// Clean fixture: consistent lock nesting (in_progress before committed on
// every path), block-scoped guards, and early `drop()` release.

pub struct Registry {
    in_progress: Mutex<Option<u64>>,
    committed: Mutex<Vec<u64>>,
}

impl Registry {
    pub fn commit_path(&self) {
        let guard = self.in_progress.lock();
        self.note_commit();
        drop(guard);
    }

    fn note_commit(&self) {
        let mut committed = self.committed.lock();
        committed.push(1);
    }

    pub fn prune_path(&self) {
        // The committed guard dies with this block before in_progress is
        // taken below, so there is no committed -> in_progress edge.
        {
            let committed = self.committed.lock();
            let _ = committed.len();
        }
        self.check_in_progress();
    }

    fn check_in_progress(&self) {
        let guard = self.in_progress.lock();
        let _ = guard.is_some();
    }
}
