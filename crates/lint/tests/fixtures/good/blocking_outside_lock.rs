// Clean fixture: blocking ops happen after guard release, `join(", ")`
// is string joining rather than thread join, and an annotated wait under
// lock is allowed.

impl Coordinator {
    pub fn drain(&self) {
        let guard = self.in_progress.lock();
        let pending = guard.len();
        drop(guard);
        let _ = self.ack_rx.recv();
        let _ = pending;
    }

    pub fn labels(&self) -> String {
        let committed = self.committed.lock();
        committed.names.join(", ")
    }

    pub fn flush(&self) {
        let guard = self.in_progress.lock();
        let _ = self.ack_rx.recv(); // lint:allow(blocking_under_lock)
        drop(guard);
    }
}
