// SQ005 fixture: blocking operations while a named lock guard is live,
// both directly and through a resolved callee.

pub struct Coordinator {
    in_progress: Mutex<Option<u64>>,
    committed: Mutex<Vec<u64>>,
    ack_rx: Receiver<u64>,
}

impl Coordinator {
    pub fn commit(&self) {
        let guard = self.in_progress.lock();
        let _ = self.ack_rx.recv();
        drop(guard);
    }

    pub fn rotate(&self) {
        let committed = self.committed.lock();
        self.wait_for_acks();
        let _ = committed.len();
    }

    fn wait_for_acks(&self) {
        let _ = self.ack_rx.recv_timeout(ACK_TIMEOUT);
    }
}
