// SQ003 fixture: telemetry names that are not in crates/common/src/names.rs.

pub fn report(reg: &Registry) {
    reg.counter("totally_made_up_total", 1);
    reg.gauge("map_bytes", 7); // registered -- no finding
    let _span = reg.spans().start("unregistered_span_kind");
}
