// SQ006 fixture: the PR 9 freshness bug, minimized. The seal stamp comes
// from the process-relative Instant clock but is persisted through the
// epoch-domain WAL seal sink, and a staleness check compares across
// domains.

impl Coordinator {
    pub fn seal(&mut self, ssid: u64, low_wm: u64) {
        let watermark_us = self.clock.to_epoch_micros(low_wm);
        let sealed_at_us = self.clock.now_micros();
        let _ = self.grid.wal_seal_with(ssid, watermark_us, sealed_at_us);
    }

    pub fn stale_secs(&self) -> u64 {
        let sealed = self.clock.now_micros();
        let now = self.clock.epoch_micros();
        now.saturating_sub(sealed) / 1_000_000
    }
}
