// SQ007 fixture: an undeclared cross-thread atomic, plus a Relaxed load
// on a flag-class atomic that needs Acquire to pair with its publisher.

pub struct Shared {
    mystery_bit: AtomicBool,
}

pub fn poisoned(shared: &Shared) -> bool {
    shared.poison.load(Ordering::Relaxed)
}
