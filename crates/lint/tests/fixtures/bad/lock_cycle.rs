// SQ001 fixture: a two-path inter-procedural lock-order cycle between
// RegistryInProgress (`in_progress`) and RegistryCommitted (`committed`).
// `commit_path` nests committed inside in_progress via `note_commit`;
// `prune_path` nests in_progress inside committed via `check_in_progress`.

pub struct Registry {
    in_progress: Mutex<Option<u64>>,
    committed: Mutex<Vec<u64>>,
}

impl Registry {
    pub fn commit_path(&self) {
        let guard = self.in_progress.lock();
        self.note_commit();
        drop(guard);
    }

    fn note_commit(&self) {
        let mut committed = self.committed.lock();
        committed.push(1);
    }

    pub fn prune_path(&self) {
        let committed = self.committed.lock();
        self.check_in_progress();
        drop(committed);
    }

    fn check_in_progress(&self) {
        let guard = self.in_progress.lock();
        let _ = guard.is_some();
    }
}
