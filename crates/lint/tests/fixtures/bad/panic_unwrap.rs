// SQ002 fixture: `.unwrap()`/`.expect()` on lock/channel results with no
// `// lint:allow(panic_on_poison)` annotation.

pub fn drain(rx: &Receiver<u64>) -> u64 {
    rx.recv().unwrap()
}

pub fn forward(tx: &Sender<u64>, v: u64) {
    tx.send(v).expect("peer hung up");
}

pub fn collect(handle: JoinHandle<u64>) -> u64 {
    handle.join().unwrap()
}
