//! Fixture tests: `fixtures/good/*.rs` must produce zero findings;
//! `fixtures/bad/*.rs` must match their `.golden` files line-for-line.
//!
//! Regenerate goldens with `UPDATE_GOLDEN=1 cargo test -p squery-lint`.

use std::fs;
use std::path::{Path, PathBuf};

fn fixture_dir(kind: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(kind)
}

fn fixture_sources(kind: &str) -> Vec<(PathBuf, String)> {
    let dir = fixture_dir(kind);
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let src = fs::read_to_string(&p).unwrap();
            // Diagnostics carry `bad/<name>.rs`-style paths so goldens are
            // machine-independent.
            let rel = PathBuf::from(kind).join(p.file_name().unwrap());
            (rel, src)
        })
        .collect()
}

#[test]
fn good_fixtures_are_clean() {
    for (path, src) in fixture_sources("good") {
        let diags = squery_lint::lint_sources(&[(path.clone(), src)]);
        assert!(
            diags.is_empty(),
            "{} should be clean, got:\n{}",
            path.display(),
            diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn bad_fixtures_match_golden() {
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    for (path, src) in fixture_sources("bad") {
        let diags = squery_lint::lint_sources(&[(path.clone(), src)]);
        assert!(
            !diags.is_empty(),
            "{} should produce findings",
            path.display()
        );
        let mut rendered = diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        rendered.push('\n');
        let golden_path = fixture_dir("bad").join(
            path.file_name()
                .unwrap()
                .to_string_lossy()
                .replace(".rs", ".golden"),
        );
        if update {
            fs::write(&golden_path, &rendered).unwrap();
            continue;
        }
        let want = fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "missing golden {} ({e}); run UPDATE_GOLDEN=1 cargo test -p squery-lint",
                golden_path.display()
            )
        });
        assert_eq!(
            rendered,
            want,
            "{} diverged from its golden; run UPDATE_GOLDEN=1 to regenerate",
            path.display()
        );
    }
}

#[test]
fn cycle_fixture_reports_both_paths() {
    let sources = fixture_sources("bad");
    let cycle = sources
        .iter()
        .find(|(p, _)| p.ends_with("lock_cycle.rs"))
        .expect("lock_cycle.rs fixture");
    let diags = squery_lint::lint_sources(std::slice::from_ref(cycle));
    let sq001: Vec<_> = diags
        .iter()
        .filter(|d| d.code == squery_lint::Code::Sq001)
        .collect();
    assert_eq!(sq001.len(), 1, "want exactly one cycle: {diags:?}");
    let msg = &sq001[0].message;
    assert!(msg.contains("RegistryInProgress"), "msg: {msg}");
    assert!(msg.contains("RegistryCommitted"), "msg: {msg}");
    // Both directions' evidence is present: the in_progress-first path and
    // the committed-first path.
    assert!(msg.contains("note_commit"), "msg: {msg}");
    assert!(msg.contains("check_in_progress"), "msg: {msg}");
}

#[test]
fn json_report_is_well_formed() {
    let sources = fixture_sources("bad");
    let diags = squery_lint::lint_sources(&sources);
    let json = squery_lint::render_json(&diags, sources.len());
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"files_scanned\": 7"));
    for code in [
        "SQ001", "SQ002", "SQ003", "SQ004", "SQ005", "SQ006", "SQ007",
    ] {
        assert!(json.contains(code), "missing {code} in {json}");
    }
    assert!(
        json.contains("\"passes\""),
        "missing per-pass counts: {json}"
    );
}

#[test]
fn seal_fixture_reproduces_the_pr9_freshness_bug() {
    // Before SQ006 existed, the Instant-domain seal stamp flowed into the
    // epoch-domain WAL seal record unnoticed and shipped. The pass must
    // catch the minimized repro.
    let sources = fixture_sources("bad");
    let seal = sources
        .iter()
        .find(|(p, _)| p.ends_with("clock_domain_seal.rs"))
        .expect("clock_domain_seal.rs fixture");
    let diags = squery_lint::lint_sources(std::slice::from_ref(seal));
    let sq006: Vec<_> = diags
        .iter()
        .filter(|d| d.code == squery_lint::Code::Sq006)
        .collect();
    assert!(
        sq006
            .iter()
            .any(|d| d.message.contains("wal_seal_with") && d.message.contains("sealed_at_us")),
        "SQ006 must flag the seal sink: {diags:?}"
    );
    assert!(
        diags.iter().all(|d| d.code == squery_lint::Code::Sq006),
        "only SQ006 should fire on this fixture: {diags:?}"
    );
}
