//! Hand-rolled Rust token scanner.
//!
//! Same spirit as the SQL lexer in `squery-sql`: a character-level pass with
//! no external parser dependencies. It produces the small token vocabulary
//! the lint checks need — identifiers, string literals, punctuation — with
//! line numbers, while correctly skipping comments (line, nested block),
//! string/char literals, raw strings, and lifetimes. It is *not* a full Rust
//! lexer: tokens the checks never look at (numbers, most operators) come out
//! as `Punct` noise, which is fine because every check matches on identifier
//! and bracket structure only.
//!
//! The scanner also returns the per-line comment text, because two checks
//! read comments: `// SAFETY:` justifications (SQ004) and
//! `// lint:allow(...)` suppressions (SQ002).

use std::collections::HashMap;

/// One scanned token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `let`, `unsafe`, names, …).
    Ident(String),
    /// String literal (contents, escapes left unresolved).
    Str(String),
    /// A single punctuation / operator character the checks care about.
    Punct(char),
    /// A numeric or char literal (value unused by any check).
    Literal,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

impl Token {
    /// The identifier text, if this is an identifier token.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(i) if i == s)
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(&self.kind, TokenKind::Punct(p) if *p == c)
    }

    /// The string-literal contents, if this is a string token.
    pub fn str_lit(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Scanner output: the token stream plus every comment, keyed by line.
#[derive(Debug, Default)]
pub struct Scanned {
    pub tokens: Vec<Token>,
    /// Comment text per 1-based line (concatenated if a line holds several).
    pub comments: HashMap<u32, String>,
}

/// Tokenize `source`, recording comments on the side.
pub fn scan(source: &str) -> Scanned {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = Scanned::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    let push_comment = |line: u32, text: &str, comments: &mut HashMap<u32, String>| {
        let entry = comments.entry(line).or_default();
        if !entry.is_empty() {
            entry.push(' ');
        }
        entry.push_str(text.trim());
    };

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                // Line comment (including doc comments).
                let start = i;
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                push_comment(line, &text, &mut out.comments);
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                // Block comment, nested per Rust rules.
                let start_line = line;
                let start = i;
                i += 2;
                let mut depth = 1;
                while i < n && depth > 0 {
                    if bytes[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text: String = bytes[start..i.min(n)].iter().collect();
                push_comment(start_line, &text, &mut out.comments);
            }
            '"' => {
                let (lit, consumed, newlines) = scan_string(&bytes[i..]);
                out.tokens.push(Token {
                    kind: TokenKind::Str(lit),
                    line,
                });
                line += newlines;
                i += consumed;
            }
            'r' | 'b' if starts_raw_or_byte_string(&bytes[i..]) => {
                let (lit, consumed, newlines, is_str) = scan_raw_or_byte(&bytes[i..]);
                out.tokens.push(Token {
                    kind: if is_str {
                        TokenKind::Str(lit)
                    } else {
                        TokenKind::Literal
                    },
                    line,
                });
                line += newlines;
                i += consumed;
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                if is_lifetime(&bytes[i..]) {
                    i += 1;
                    while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                        i += 1;
                    }
                    // Lifetimes are noise to every check; no token emitted.
                } else {
                    let consumed = scan_char_literal(&bytes[i..]);
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        line,
                    });
                    i += consumed;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let ident: String = bytes[start..i].iter().collect();
                out.tokens.push(Token {
                    kind: TokenKind::Ident(ident),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_' || bytes[i] == '.') {
                    // Greedy number scan; `1.0e-3` minus the sign is enough —
                    // a trailing `.` method call like `1.max(2)` ends the
                    // number at the alphabetic char, which this loop eats.
                    // That inaccuracy is harmless: checks never look inside
                    // numeric context, and `.` after digits never starts a
                    // lock-method chain.
                    if bytes[i] == '.'
                        && i + 1 < n
                        && (bytes[i + 1].is_alphabetic() || bytes[i + 1] == '_')
                    {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
            }
            other => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct(other),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Scan a `"…"` string starting at `s[0] == '"'`.
/// Returns (contents, chars consumed, newlines crossed).
fn scan_string(s: &[char]) -> (String, usize, u32) {
    let mut i = 1;
    let mut newlines = 0;
    let mut out = String::new();
    while i < s.len() {
        match s[i] {
            '\\' if i + 1 < s.len() => {
                out.push(s[i]);
                out.push(s[i + 1]);
                if s[i + 1] == '\n' {
                    newlines += 1;
                }
                i += 2;
            }
            '"' => return (out, i + 1, newlines),
            '\n' => {
                newlines += 1;
                out.push('\n');
                i += 1;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    (out, i, newlines)
}

/// Does the slice start a raw string (`r"`, `r#"`), byte string (`b"`), or
/// raw byte string (`br"`, `br#"`)?
fn starts_raw_or_byte_string(s: &[char]) -> bool {
    let mut i = 0;
    if s[i] == 'b' {
        i += 1;
        if i < s.len() && s[i] == '\'' {
            return true; // byte char literal b'x'
        }
    }
    if i < s.len() && s[i] == 'r' {
        i += 1;
    }
    while i < s.len() && s[i] == '#' {
        i += 1;
    }
    i < s.len() && s[i] == '"' && (s[0] == 'r' || s[0] == 'b')
}

/// Scan a raw/byte string or byte-char literal. Returns
/// (contents, consumed, newlines, was_string).
fn scan_raw_or_byte(s: &[char]) -> (String, usize, u32, bool) {
    let mut i = 0;
    if s[i] == 'b' {
        i += 1;
        if i < s.len() && s[i] == '\'' {
            let consumed = scan_char_literal(&s[i..]);
            return (String::new(), i + consumed, 0, false);
        }
    }
    let raw = i < s.len() && s[i] == 'r';
    if raw {
        i += 1;
    }
    let mut hashes = 0;
    while i < s.len() && s[i] == '#' {
        hashes += 1;
        i += 1;
    }
    debug_assert!(i < s.len() && s[i] == '"');
    i += 1; // opening quote
    let start = i;
    let mut newlines = 0;
    while i < s.len() {
        if s[i] == '\n' {
            newlines += 1;
            i += 1;
            continue;
        }
        if !raw && s[i] == '\\' && i + 1 < s.len() {
            i += 2;
            continue;
        }
        if s[i] == '"' {
            // Need `hashes` trailing '#'s to close a raw string.
            let mut j = i + 1;
            let mut seen = 0;
            while j < s.len() && s[j] == '#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                let contents: String = s[start..i].iter().collect();
                return (contents, j, newlines, true);
            }
        }
        i += 1;
    }
    (s[start..].iter().collect(), s.len(), newlines, true)
}

/// Distinguish `'a` / `'static` (lifetime) from `'a'` / `'\n'` (char).
fn is_lifetime(s: &[char]) -> bool {
    // 'x' => char. '\…' => char. 'ident (no closing quote right after one
    // ident char run) => lifetime.
    if s.len() < 2 {
        return false;
    }
    if s[1] == '\\' {
        return false;
    }
    if !(s[1].is_alphabetic() || s[1] == '_') {
        return false; // e.g. '1' is a char literal
    }
    // Find the end of the ident run; a closing quote right after makes it a
    // char literal ('a'), anything else a lifetime ('a, 'static>).
    let mut i = 2;
    while i < s.len() && (s[i].is_alphanumeric() || s[i] == '_') {
        i += 1;
    }
    !(i < s.len() && s[i] == '\'' && i == 2)
}

/// Consume a char literal starting at `'`; returns chars consumed.
fn scan_char_literal(s: &[char]) -> usize {
    let mut i = 1;
    if i < s.len() && s[i] == '\\' {
        i += 2;
    } else {
        i += 1;
    }
    while i < s.len() && s[i] != '\'' {
        i += 1; // tolerate things like '\u{1F600}'
    }
    i + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let s = scan("let x = 1; // lint:allow(panic_on_poison)\n/* block */ fn f() {}");
        assert!(s.comments[&1].contains("lint:allow(panic_on_poison)"));
        assert!(s.comments[&2].contains("block"));
        assert!(s.tokens.iter().all(|t| t.ident() != Some("block")));
    }

    #[test]
    fn strings_and_chars_do_not_leak_tokens() {
        let s = scan(r#"let a = "fn bogus() { .lock() }"; let c = 'x'; let l: &'static str = b;"#);
        let ids =
            idents(r#"let a = "fn bogus() { .lock() }"; let c = 'x'; let l: &'static str = b;"#);
        assert!(!ids.contains(&"bogus".to_string()));
        assert!(!ids.contains(&"static".to_string()), "{ids:?}");
        assert_eq!(s.tokens.iter().filter_map(|t| t.str_lit()).count(), 1);
    }

    #[test]
    fn raw_strings_scan() {
        let s = scan(r##"let a = r#"has "quotes" inside"#; let b = 2;"##);
        let lit = s.tokens.iter().find_map(|t| t.str_lit()).unwrap();
        assert_eq!(lit, r#"has "quotes" inside"#);
        assert!(s.tokens.iter().any(|t| t.is_ident("b")));
    }

    #[test]
    fn nested_block_comments() {
        let ids = idents("/* outer /* inner */ still comment */ fn real() {}");
        assert_eq!(ids, vec!["fn", "real"]);
    }

    #[test]
    fn line_numbers_advance_through_multiline_strings() {
        let s = scan("let a = \"one\ntwo\";\nfn f() {}");
        let f = s.tokens.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 3);
    }

    #[test]
    fn lifetime_vs_char() {
        let ids = idents("fn f<'a>(x: &'a str) { let c = 'a'; }");
        // 'a lifetime swallowed, 'a' char literal swallowed; no stray ident.
        assert_eq!(ids, vec!["fn", "f", "x", "str", "let", "c"]);
    }
}
