//! SQ007: atomics handoff audit.
//!
//! Every cross-thread atomic in the workspace must be declared in
//! `crates/common/src/names.rs::ATOMIC_REGISTRY` with an intended ordering
//! discipline (`counter` / `flag` / `gate` / `seqlock`). The registry makes
//! the handoff protocol reviewable: PR 3 and PR 9 both closed coordinator
//! races that entered through an undeclared atomic whose ordering nobody
//! had thought about.
//!
//! Two rules:
//!
//! * **Undeclared atomic**: an `AtomicBool`/`AtomicU64`/… declaration
//!   (struct field, static, or `let` binding) in non-test code whose name
//!   has no registry entry.
//! * **Relaxed on a flag**: a `Relaxed` memory ordering in an atomic access
//!   whose receiver is registered as `flag`-class (publication/poison/stop
//!   flags gate control flow on other threads: stores must be `Release`+,
//!   loads `Acquire`+), or whose receiver is not registered at all — an
//!   alias (`let stop2 = flag.clone()`) would otherwise dodge the audit.
//!
//! Counter- and gate-class atomics may use `Relaxed` freely; that is what
//! the discipline declares.

use crate::checks::LintedFile;
use crate::diag::{Code, Diagnostic};
use crate::extract::{in_test_region, receiver_ident};
use crate::scanner::Token;
use squery_common::names::atomic_discipline;
use std::collections::BTreeSet;

const ALLOW_ATOMICS: &str = "lint:allow(atomics_handoff)";

/// The atomic types the audit tracks.
const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicI8",
    "AtomicIsize",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicU8",
    "AtomicUsize",
];

/// Methods that take a memory-ordering argument.
const ATOMIC_METHODS: &[&str] = &[
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_and",
    "fetch_max",
    "fetch_min",
    "fetch_or",
    "fetch_sub",
    "fetch_update",
    "fetch_xor",
    "load",
    "store",
    "swap",
];

const ORDERINGS: &[&str] = &["AcqRel", "Acquire", "Relaxed", "Release", "SeqCst"];

pub fn check_atomics(files: &[LintedFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in files {
        let basename = f
            .path
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let suppressed = |line: u32| {
            f.scanned
                .comments
                .get(&line)
                .is_some_and(|c| c.contains(ALLOW_ATOMICS))
        };
        let toks = &f.scanned.tokens;

        // Rule 1: undeclared atomic declarations. One report per name.
        let mut reported: BTreeSet<String> = BTreeSet::new();
        for (i, t) in toks.iter().enumerate() {
            let Some(id) = t.ident() else { continue };
            if !ATOMIC_TYPES.contains(&id)
                || in_test_region(&f.test_ranges, t.line)
                || suppressed(t.line)
            {
                continue;
            }
            let Some(name) = decl_name(toks, i) else {
                continue;
            };
            if atomic_discipline(&basename, name).is_none() && reported.insert(name.to_string()) {
                diags.push(Diagnostic {
                    code: Code::Sq007,
                    file: f.path.clone(),
                    line: t.line,
                    message: format!(
                        "atomic `{name}` ({id}) is not declared in \
                         crates/common/src/names.rs::ATOMIC_REGISTRY; register it with \
                         its ordering discipline (counter/flag/gate/seqlock) or \
                         annotate with `// {ALLOW_ATOMICS}`"
                    ),
                });
            }
        }

        // Rule 2: Relaxed orderings in accesses on flag-class (or
        // unregistered) receivers.
        for (i, t) in toks.iter().enumerate() {
            let Some(m) = t.ident() else { continue };
            if !ATOMIC_METHODS.contains(&m)
                || !toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                || i == 0
                || !toks[i - 1].is_punct('.')
                || in_test_region(&f.test_ranges, t.line)
                || suppressed(t.line)
            {
                continue;
            }
            // Scan the argument list for ordering idents; a call that names
            // no ordering is not an atomic op (just a method sharing the
            // name, e.g. a custom `load`).
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut orders: Vec<&str> = Vec::new();
            while j < toks.len() {
                if toks[j].is_punct('(') {
                    depth += 1;
                } else if toks[j].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if let Some(o) = toks[j].ident() {
                    if ORDERINGS.contains(&o) {
                        orders.push(o);
                    }
                }
                j += 1;
            }
            if !orders.contains(&"Relaxed") {
                continue;
            }
            let receiver = receiver_ident(toks, i - 1);
            match receiver.and_then(|r| atomic_discipline(&basename, r)) {
                Some("flag") => {
                    diags.push(Diagnostic {
                        code: Code::Sq007,
                        file: f.path.clone(),
                        line: t.line,
                        message: format!(
                            "Relaxed ordering in .{m}() on flag-class atomic `{}`: \
                             publication flags gate control flow on other threads — \
                             stores need Release (or stronger), loads Acquire",
                            receiver.unwrap_or("?")
                        ),
                    });
                }
                Some(_) => {}
                None => {
                    diags.push(Diagnostic {
                        code: Code::Sq007,
                        file: f.path.clone(),
                        line: t.line,
                        message: format!(
                            "Relaxed atomic access through `{}`, which is not in \
                             crates/common/src/names.rs::ATOMIC_REGISTRY; register the \
                             name (aliases of registered atomics should reuse the \
                             registered name) or annotate with `// {}`",
                            receiver.unwrap_or("<expr>"),
                            ALLOW_ATOMICS
                        ),
                    });
                }
            }
        }
    }
    diags
}

/// Resolve the declared name for an atomic-type token at `toks[i]`: walks
/// left over path segments (`sync::atomic::AtomicU64`), generic wrappers
/// (`Arc<AtomicBool`), constructor calls (`Arc::new(AtomicBool`), and `&`,
/// then accepts `name: …` (field, static, struct-literal init) or
/// `name = …` (`let` binding). Returns `None` for imports, return types,
/// and the constructor repetition in `static X: AtomicU8 = AtomicU8::new(…)`.
fn decl_name(toks: &[Token], i: usize) -> Option<&str> {
    let mut j = i;
    loop {
        if j >= 3
            && toks[j - 1].is_punct(':')
            && toks[j - 2].is_punct(':')
            && toks[j - 3].ident().is_some()
        {
            j -= 3; // path segment `seg::`
        } else if j >= 2
            && (toks[j - 1].is_punct('<') || toks[j - 1].is_punct('('))
            && toks[j - 2].ident().is_some()
        {
            j -= 2; // wrapper `Arc<` or `Arc::new(`
        } else if j >= 1 && toks[j - 1].is_punct('&') {
            j -= 1;
        } else {
            break;
        }
    }
    if j < 2 {
        return None;
    }
    let name = toks[j - 2].ident()?;
    if ATOMIC_TYPES.contains(&name) || name == "Ordering" {
        return None;
    }
    let colon_decl = toks[j - 1].is_punct(':') && !(j >= 3 && toks[j - 3].is_punct(':'));
    let eq_decl = toks[j - 1].is_punct('=');
    if colon_decl || eq_decl {
        Some(name)
    } else {
        None
    }
}
