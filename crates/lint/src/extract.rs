//! Structural extraction over the token stream: function boundaries,
//! `#[cfg(test)]` regions, lock-acquisition events with approximate guard
//! lifetimes, direct calls, and the raw sites the per-file checks consume.
//!
//! The guard-lifetime model is deliberately simple but block-scoped, because
//! the codebase relies on block scoping for its lock discipline (e.g. the
//! supervisor's monitor loop takes the job lock inside `{ … }` *before*
//! touching the status lock — a flat "held to end of function" model would
//! report a false SupervisorJob→SupervisorStatus edge and a false deadlock
//! cycle):
//!
//! * a `let`-bound guard (`let g = x.lock();`, including `let _g = …` and
//!   tuple bindings like `let (_k, wait) = locks.lock_timed(..)`) is held
//!   until the block containing the `let` closes;
//! * a statement temporary (`x.lock().push(..);`) is held until the first
//!   `;` at or below its brace depth;
//! * `drop(g)` releases `g`'s guard at that point.
//!
//! Closure bodies are treated as inline code of the enclosing function —
//! conservative for edges out of the enclosing holds, and accurate enough
//! in practice because this codebase's closures run either inline or on
//! fresh threads with no enclosing holds.

use crate::scanner::{Scanned, Token, TokenKind};
use squery_common::lockorder::LockClass;

/// Methods whose call on a mapped receiver field constitutes acquiring that
/// receiver's lock class.
pub const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write", "try_lock", "lock_timed"];

/// Result-returning methods whose value must not be `.unwrap()`/`.expect()`ed
/// in non-test code (SQ002): lock and channel operations plus thread joins,
/// where a stray panic would bypass the `catch_unwind` recovery funnels.
pub const PANIC_SOURCE_METHODS: &[&str] = &[
    "lock",
    "read",
    "write",
    "try_lock",
    "send",
    "recv",
    "try_recv",
    "recv_timeout",
    "join",
];

/// Methods whose call can block the current thread indefinitely (or for an
/// externally-controlled time): channel receives, `Condvar` waits, thread
/// joins, file syncs (the WAL fsync path), and channel sends — the vendored
/// channel's bounded `send` blocks when the buffer is full. `join` counts
/// only with no arguments (`Vec::join(sep)` / `Path::join(p)` take one).
pub const BLOCKING_METHODS: &[&str] = &[
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "join",
    "send",
    "sync_data",
    "sync_all",
];

/// One lock acquisition while another class was held: a lock-order edge.
#[derive(Debug, Clone)]
pub struct HeldEdge {
    pub held: LockClass,
    pub held_line: u32,
    pub acquired: LockClass,
    pub acquired_line: u32,
}

/// A direct call made while a lock class was held.
#[derive(Debug, Clone)]
pub struct HeldCall {
    pub held: LockClass,
    pub held_line: u32,
    pub callee: String,
    pub call_line: u32,
}

/// A blocking operation executed while a lock class was held (SQ005 site).
#[derive(Debug, Clone)]
pub struct HeldBlock {
    pub held: LockClass,
    pub held_line: u32,
    /// The blocking method (`recv`, `join`, `wait`, `sync_data`, …).
    pub op: String,
    pub op_line: u32,
}

/// Everything extracted from one function body.
#[derive(Debug, Clone)]
pub struct FunctionInfo {
    pub name: String,
    pub line: u32,
    /// Lock classes acquired directly anywhere in the body, with a site.
    pub acquires: Vec<(LockClass, u32)>,
    /// Names of functions/methods called anywhere in the body.
    pub calls: Vec<(String, u32)>,
    /// Ordered pairs observed inside this body (A held while B acquired).
    pub edges: Vec<HeldEdge>,
    /// Calls made while a class was held (inter-procedural edge seeds).
    pub held_calls: Vec<HeldCall>,
    /// Blocking operations anywhere in the body (SQ005 may-block seeds).
    pub blocking: Vec<(String, u32)>,
    /// Blocking operations executed while a class was held (SQ005 sites).
    pub held_blocking: Vec<HeldBlock>,
    /// Token-index range of the body (`tokens[open..end]`), for passes that
    /// re-walk the body (SQ006's taint scan).
    pub body: (usize, usize),
}

/// An `.unwrap()`/`.expect(` on a lock/channel/join result (SQ002 site).
#[derive(Debug, Clone)]
pub struct PanicSite {
    pub line: u32,
    /// The Result/Option-producing method (`lock`, `recv`, `join`, …).
    pub source_method: String,
    /// `unwrap` or `expect`.
    pub sink_method: String,
}

/// A telemetry-name call site (SQ003).
#[derive(Debug, Clone)]
pub struct NameSite {
    pub line: u32,
    /// The registering function (`counter`, `start`, `span_under_round`, …).
    pub function: String,
    /// First string-literal argument, i.e. the name being registered.
    pub name: String,
}

/// An `unsafe` keyword occurrence (SQ004 site).
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub line: u32,
}

/// Extraction result for one file.
#[derive(Debug, Default)]
pub struct FileInfo {
    pub functions: Vec<FunctionInfo>,
    pub panic_sites: Vec<PanicSite>,
    pub name_sites: Vec<NameSite>,
    pub unsafe_sites: Vec<UnsafeSite>,
}

/// Map a lock receiver field identifier to its class.
///
/// Entries are either file-qualified (basename, ident) — for identifiers
/// whose meaning differs between files — or unqualified. Unknown receivers
/// (locals in tests, query-scratch mutexes, foreign types) map to `None`
/// and are ignored by SQ001: the check covers the engine's *named* lock
/// fields, which is where cross-subsystem ordering matters.
pub fn lock_class_of(file_basename: &str, receiver: &str) -> Option<LockClass> {
    // File-qualified entries first: same ident, different meaning.
    let qualified: &[(&str, &str, LockClass)] = &[
        ("metrics.rs", "inner", LockClass::Histogram),
        ("grid.rs", "faults", LockClass::GridCatalog),
        ("replication.rs", "faults", LockClass::Replication),
        ("replication.rs", "worker_faults", LockClass::Replication),
        ("trace.rs", "shard", LockClass::SpanShard),
        ("trace.rs", "shards", LockClass::SpanShard),
        ("imap.rs", "telemetry", LockClass::MapMeta),
        ("snapshot.rs", "telemetry", LockClass::MapMeta),
        ("imap.rs", "recent_keys", LockClass::StatsRing),
        ("snapshot.rs", "exec_cache", LockClass::ExecCache),
        ("stats.rs", "sketches", LockClass::SketchState),
        // wal.rs: per-partition segment files and the manager commit log
        // share one class; "stores" keeps its unqualified GridCatalog
        // meaning (the manager's store-WAL map mirrors the grid catalog).
        ("wal.rs", "segs", LockClass::WalSegment),
        ("wal.rs", "commit", LockClass::WalSegment),
    ];
    for (f, r, c) in qualified {
        if *f == file_basename && *r == receiver {
            return Some(*c);
        }
    }
    let unqualified: &[(&str, LockClass)] = &[
        ("status", LockClass::SupervisorStatus),
        ("monitor_status", LockClass::SupervisorStatus),
        ("job", LockClass::SupervisorJob),
        ("monitor_job", LockClass::SupervisorJob),
        ("jobs", LockClass::CoreJobs),
        ("in_progress", LockClass::RegistryInProgress),
        ("committed", LockClass::RegistryCommitted),
        ("maps", LockClass::GridCatalog),
        ("snapshots", LockClass::GridCatalog),
        ("stores", LockClass::GridCatalog),
        ("placements", LockClass::PartitionTable),
        ("backups", LockClass::Replication),
        ("worker_backups", LockClass::Replication),
        ("parts", LockClass::SnapshotPartition),
        ("part", LockClass::SnapshotPartition),
        ("locks", LockClass::KeyStripe),
        ("stripes", LockClass::KeyStripe),
        ("stripe", LockClass::KeyStripe),
        ("map", LockClass::PartitionMap),
        ("value_schema", LockClass::MapMeta),
        ("write_listener", LockClass::MapMeta),
        ("records", LockClass::CheckpointStats),
        ("aborted", LockClass::CheckpointStats),
        ("counters", LockClass::Telemetry),
        ("gauges", LockClass::Telemetry),
        ("histograms", LockClass::Telemetry),
        ("ring", LockClass::EventRing),
        ("log", LockClass::FaultState),
        ("armed", LockClass::FaultState),
    ];
    unqualified
        .iter()
        .find(|(r, _)| *r == receiver)
        .map(|(_, c)| *c)
}

/// Registering functions whose first string argument is a metric name.
pub const METRIC_NAME_FNS: &[&str] = &[
    "counter",
    "gauge",
    "histogram",
    "counter_value",
    "gauge_value",
];

/// Registering functions whose first string argument is a span kind.
pub const SPAN_NAME_FNS: &[&str] = &["start", "forced", "child", "span_under_round", "start_node"];

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "let", "fn", "pub", "impl", "struct",
    "enum", "trait", "mod", "use", "const", "static", "mut", "ref", "move", "as", "in", "where",
    "unsafe", "dyn", "break", "continue", "crate", "self", "Self", "super", "type", "async",
    "await", "box",
];

/// Compute which lines sit inside `#[cfg(test)]` items or `#[test]` fns.
///
/// Strategy: whenever a `#[cfg(test)]` or `#[test]` attribute is seen, the
/// next brace-balanced block (the annotated item's body) is marked as a test
/// region. Attributes between the marker and the block (e.g. `#[test]` then
/// `fn name()`) are naturally skipped because only `{ … }` balancing counts.
pub fn test_line_ranges(scanned: &Scanned) -> Vec<(u32, u32)> {
    let toks = &scanned.tokens;
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if is_test_attribute(toks, i) {
            // Find the opening brace of the annotated item.
            let mut j = i;
            while j < toks.len() && !toks[j].is_punct('{') {
                j += 1;
            }
            if j < toks.len() {
                let start_line = toks[i].line;
                let mut depth = 0i32;
                let mut k = j;
                while k < toks.len() {
                    if toks[k].is_punct('{') {
                        depth += 1;
                    } else if toks[k].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                let end_line = toks.get(k).map_or(u32::MAX, |t| t.line);
                ranges.push((start_line, end_line));
                i = k;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

/// Does `#` at index `i` start `#[cfg(test)]` or `#[test]`?
fn is_test_attribute(toks: &[Token], i: usize) -> bool {
    if !toks[i].is_punct('#') || i + 2 >= toks.len() || !toks[i + 1].is_punct('[') {
        return false;
    }
    if toks[i + 2].is_ident("test") {
        return true;
    }
    toks[i + 2].is_ident("cfg")
        && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
        && toks.get(i + 4).is_some_and(|t| t.is_ident("test"))
}

/// True if `line` falls in any of `ranges`.
pub fn in_test_region(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(s, e)| line >= s && line <= e)
}

/// Extract all checked structures from one scanned file.
pub fn extract(file_basename: &str, scanned: &Scanned) -> FileInfo {
    let toks = &scanned.tokens;
    let mut info = FileInfo::default();
    let mut i = 0;
    while i < toks.len() {
        // unsafe audit sites (everywhere, including tests).
        if toks[i].is_ident("unsafe") {
            info.unsafe_sites.push(UnsafeSite { line: toks[i].line });
        }
        // Function bodies.
        if toks[i].is_ident("fn") && i + 1 < toks.len() {
            if let Some(name) = toks[i + 1].ident() {
                let fn_line = toks[i + 1].line;
                // Find the body's opening brace; a `;` first means a trait
                // method declaration or extern fn — no body.
                let mut j = i + 2;
                let mut opened = None;
                let mut angle = 0i32;
                while j < toks.len() {
                    match &toks[j].kind {
                        TokenKind::Punct('<') => angle += 1,
                        TokenKind::Punct('>') => angle -= 1,
                        TokenKind::Punct(';') if angle <= 0 => break,
                        TokenKind::Punct('{') => {
                            opened = Some(j);
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(open) = opened {
                    let (mut func, end) =
                        extract_function(file_basename, toks, name.to_string(), fn_line, open);
                    func.body = (open, end.min(toks.len()));
                    collect_flat_sites(&toks[open..end.min(toks.len())], &mut info);
                    info.functions.push(func);
                    i = end;
                    continue;
                }
            }
        }
        i += 1;
    }
    // Sites outside any fn body (consts, statics) still need SQ003 scanning;
    // in practice name registrations only occur inside fns, so the per-body
    // collection above is complete for this codebase.
    info
}

/// A currently-held guard during the body walk.
struct Hold {
    class: LockClass,
    line: u32,
    depth: i32,
    let_bound: bool,
    binding: Option<String>,
}

/// Walk one function body starting at `toks[open] == '{'`; returns the
/// extracted info and the index just past the closing brace.
fn extract_function(
    file_basename: &str,
    toks: &[Token],
    name: String,
    fn_line: u32,
    open: usize,
) -> (FunctionInfo, usize) {
    let mut func = FunctionInfo {
        name,
        line: fn_line,
        acquires: Vec::new(),
        calls: Vec::new(),
        edges: Vec::new(),
        held_calls: Vec::new(),
        blocking: Vec::new(),
        held_blocking: Vec::new(),
        body: (open, open),
    };
    let mut holds: Vec<Hold> = Vec::new();
    let mut depth = 0i32;
    // Pending `let` binding name for the current statement, if any.
    let mut stmt_let_binding: Option<String> = None;
    let mut stmt_is_let = false;
    let mut stmt_depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        match &t.kind {
            TokenKind::Punct('{') => {
                depth += 1;
                i += 1;
            }
            TokenKind::Punct('}') => {
                depth -= 1;
                // Block closed: let-bound guards from inside it die, and so
                // do temporaries from unterminated tail expressions.
                holds.retain(|h| h.depth <= depth);
                if depth <= 0 {
                    return (func, i + 1);
                }
                i += 1;
            }
            TokenKind::Punct(';') => {
                // Statement end: temporaries acquired at or above this depth
                // release; a `let` statement's guard survives.
                holds.retain(|h| h.let_bound || h.depth < depth);
                stmt_let_binding = None;
                stmt_is_let = false;
                i += 1;
            }
            TokenKind::Ident(id) if id == "let" => {
                stmt_is_let = true;
                stmt_depth = depth;
                // Binding name: next ident that isn't `mut`/`ref` (tuple
                // patterns record the first name; good enough for drop()).
                let mut j = i + 1;
                stmt_let_binding = None;
                while j < toks.len() && !toks[j].is_punct('=') && !toks[j].is_punct(';') {
                    if let Some(b) = toks[j].ident() {
                        if b != "mut" && b != "ref" && b != "_" {
                            stmt_let_binding = Some(b.to_string());
                            break;
                        }
                    }
                    j += 1;
                }
                i += 1;
            }
            TokenKind::Ident(id) if id == "drop" => {
                // drop(binding) — early release.
                if toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                    if let Some(b) = toks.get(i + 2).and_then(|t| t.ident()) {
                        if toks.get(i + 3).is_some_and(|t| t.is_punct(')')) {
                            holds.retain(|h| h.binding.as_deref() != Some(b));
                            i += 4;
                            continue;
                        }
                    }
                }
                i += 1;
            }
            TokenKind::Ident(id) => {
                let is_call = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
                let is_method = i > 0 && toks[i - 1].is_punct('.');
                if is_call && is_method && ACQUIRE_METHODS.contains(&id.as_str()) {
                    if let Some(recv) = receiver_ident(toks, i - 1) {
                        if let Some(class) = lock_class_of(file_basename, recv) {
                            for h in &holds {
                                if h.class != class {
                                    func.edges.push(HeldEdge {
                                        held: h.class,
                                        held_line: h.line,
                                        acquired: class,
                                        acquired_line: t.line,
                                    });
                                }
                            }
                            func.acquires.push((class, t.line));
                            let let_bound = stmt_is_let && depth == stmt_depth;
                            holds.push(Hold {
                                class,
                                line: t.line,
                                depth,
                                let_bound,
                                binding: if let_bound {
                                    stmt_let_binding.clone()
                                } else {
                                    None
                                },
                            });
                        }
                    }
                    i += 1;
                    continue;
                }
                if is_call && is_method && BLOCKING_METHODS.contains(&id.as_str()) {
                    // `join` blocks only as a thread join — no arguments.
                    // (`Vec::join(sep)`, `Path::join(p)` take one and don't.)
                    let is_blocking =
                        id != "join" || toks.get(i + 2).is_some_and(|t| t.is_punct(')'));
                    if is_blocking {
                        func.blocking.push((id.clone(), t.line));
                        for h in &holds {
                            func.held_blocking.push(HeldBlock {
                                held: h.class,
                                held_line: h.line,
                                op: id.clone(),
                                op_line: t.line,
                            });
                        }
                    }
                    i += 1;
                    continue;
                }
                if is_call && !KEYWORDS.contains(&id.as_str()) {
                    // Only calls whose target is resolvable by name alone
                    // propagate: `self.method()`, `Path::func()`, and bare
                    // `func()`. A method call on any other receiver (e.g.
                    // `opt.map(..)`, `ENABLED.load(..)`) may be a std method
                    // that merely shares a name with a workspace fn; without
                    // type information, following it manufactures false
                    // lock-order cycles.
                    let resolvable = if is_method {
                        i >= 2 && toks[i - 2].is_ident("self")
                    } else {
                        true
                    };
                    if resolvable {
                        func.calls.push((id.clone(), t.line));
                        for h in &holds {
                            func.held_calls.push(HeldCall {
                                held: h.class,
                                held_line: h.line,
                                callee: id.clone(),
                                call_line: t.line,
                            });
                        }
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    (func, toks.len())
}

/// Given the index of the `.` before an acquire method, find the receiver's
/// field identifier, walking back over one `[…]` index expression
/// (`stripes[i].lock()` → `stripes`, `self.parts[p].read()` → `parts`).
pub(crate) fn receiver_ident(toks: &[Token], dot: usize) -> Option<&str> {
    if dot == 0 {
        return None;
    }
    let mut i = dot - 1;
    if toks[i].is_punct(']') {
        // Walk back to the matching '['.
        let mut depth = 1;
        while i > 0 {
            i -= 1;
            if toks[i].is_punct(']') {
                depth += 1;
            } else if toks[i].is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
        if i == 0 {
            return None;
        }
        i -= 1;
    }
    toks[i].ident()
}

/// Collect flat (non-ordering) sites from a body slice: panic sites and
/// telemetry-name sites.
fn collect_flat_sites(body: &[Token], info: &mut FileInfo) {
    let mut i = 0;
    while i < body.len() {
        let t = &body[i];
        if t.is_ident("unsafe") {
            info.unsafe_sites.push(UnsafeSite { line: t.line });
        }
        if let TokenKind::Ident(id) = &t.kind {
            let is_call = body.get(i + 1).is_some_and(|t| t.is_punct('('));
            let is_method = i > 0 && body[i - 1].is_punct('.');
            // SQ002: `.X(..).unwrap()` / `.X(..).expect(..)`.
            if is_call && is_method && (id == "unwrap" || id == "expect") {
                if let Some(src) = result_source_method(body, i - 1) {
                    info.panic_sites.push(PanicSite {
                        line: t.line,
                        source_method: src.to_string(),
                        sink_method: id.clone(),
                    });
                }
            }
            // SQ003: name-registering calls with a literal first argument.
            if is_call
                && (METRIC_NAME_FNS.contains(&id.as_str()) || SPAN_NAME_FNS.contains(&id.as_str()))
            {
                if let Some(name) = first_string_arg(body, i + 1) {
                    info.name_sites.push(NameSite {
                        line: t.line,
                        function: id.clone(),
                        name,
                    });
                }
            }
        }
        i += 1;
    }
}

/// For `.unwrap` at `body[dot] == '.'`, determine whether the value it
/// consumes came from a panic-source method: the preceding tokens must be
/// `… .METHOD ( … )` with balanced parens.
fn result_source_method(body: &[Token], dot: usize) -> Option<&str> {
    if dot == 0 || !body[dot - 1].is_punct(')') {
        return None;
    }
    let mut depth = 1;
    let mut i = dot - 1;
    while i > 0 {
        i -= 1;
        if body[i].is_punct(')') {
            depth += 1;
        } else if body[i].is_punct('(') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
    }
    if i == 0 {
        return None;
    }
    let m = body[i - 1].ident()?;
    if PANIC_SOURCE_METHODS.contains(&m) && i >= 2 && body[i - 2].is_punct('.') {
        Some(m)
    } else {
        None
    }
}

/// First string literal inside the call whose `(` is at `body[open]`,
/// scanning to the matching `)`.
fn first_string_arg(body: &[Token], open: usize) -> Option<String> {
    // Only direct arguments count: a string nested in another call or in a
    // closure body (`QueryLoad::start(n, move || { q("…") })`) is not the
    // name being registered.
    let mut depth = 0;
    let mut braces = 0;
    let mut i = open;
    while i < body.len() {
        if body[i].is_punct('(') {
            depth += 1;
        } else if body[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return None;
            }
        } else if body[i].is_punct('{') {
            braces += 1;
        } else if body[i].is_punct('}') {
            braces -= 1;
        } else if depth == 1 && braces == 0 {
            if let Some(s) = body[i].str_lit() {
                return Some(s.to_string());
            }
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    fn extract_src(src: &str) -> FileInfo {
        extract("test.rs", &scan(src))
    }

    #[test]
    fn let_bound_guard_spans_block_temporary_spans_statement() {
        let src = r#"
fn f(&self) {
    let g = self.in_progress.lock();
    self.committed.lock().push(1);
    self.committed.lock().push(2);
}
"#;
        let info = extract_src(src);
        let f = &info.functions[0];
        // in_progress held across both committed acquisitions; the first
        // committed temporary must NOT be held at the second.
        let pairs: Vec<_> = f.edges.iter().map(|e| (e.held, e.acquired)).collect();
        assert_eq!(
            pairs,
            vec![
                (LockClass::RegistryInProgress, LockClass::RegistryCommitted),
                (LockClass::RegistryInProgress, LockClass::RegistryCommitted),
            ]
        );
    }

    #[test]
    fn block_scoped_guard_released_at_brace() {
        let src = r#"
fn monitor(&self) {
    {
        let j = self.job.lock();
        j.check();
    }
    let s = self.status.lock();
}
"#;
        let info = extract_src(src);
        assert!(
            info.functions[0].edges.is_empty(),
            "job guard died at block close: {:?}",
            info.functions[0].edges
        );
    }

    #[test]
    fn statement_temporaries_overlap_within_one_statement() {
        let src = r#"
fn health(&self) -> bool {
    !self.status.lock().gave_up && !self.job.lock().needs_recovery()
}
"#;
        let info = extract_src(src);
        let e = &info.functions[0].edges;
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].held, LockClass::SupervisorStatus);
        assert_eq!(e[0].acquired, LockClass::SupervisorJob);
    }

    #[test]
    fn drop_releases_early() {
        let src = r#"
fn f(&self) {
    let g = self.in_progress.lock();
    drop(g);
    self.committed.lock().push(1);
}
"#;
        let info = extract_src(src);
        assert!(info.functions[0].edges.is_empty());
    }

    #[test]
    fn indexed_receiver_resolves() {
        let src = r#"
fn f(&self, i: usize) {
    let g = self.stripes[i & 7].lock();
    self.map.write().insert(1, 2);
}
"#;
        let info = extract_src(src);
        let e = &info.functions[0].edges;
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].held, LockClass::KeyStripe);
        assert_eq!(e[0].acquired, LockClass::PartitionMap);
    }

    #[test]
    fn held_calls_recorded() {
        let src = r#"
fn f(&self) {
    let g = self.in_progress.lock();
    self.publish_commit();
}
"#;
        let info = extract_src(src);
        let hc = &info.functions[0].held_calls;
        assert!(hc
            .iter()
            .any(|c| c.callee == "publish_commit" && c.held == LockClass::RegistryInProgress));
    }

    #[test]
    fn panic_sites_found_with_source_method() {
        let src = r#"
fn f(&self) {
    let v = self.rx.recv().unwrap();
    let w = handle.join().expect("worker");
    let ok = some_result().unwrap();
}
"#;
        let info = extract_src(src);
        let sites: Vec<_> = info
            .panic_sites
            .iter()
            .map(|p| (p.source_method.as_str(), p.sink_method.as_str()))
            .collect();
        assert_eq!(sites, vec![("recv", "unwrap"), ("join", "expect")]);
    }

    #[test]
    fn name_sites_capture_first_string() {
        let src = r#"
fn f(reg: &MetricsRegistry) {
    reg.counter("map_reads_total", &[("map", name)]).inc();
    let span = collector.start("query");
    start_node(ctx, "scan", format!("scan{i}"));
}
"#;
        let info = extract_src(src);
        let names: Vec<_> = info
            .name_sites
            .iter()
            .map(|n| (n.function.as_str(), n.name.as_str()))
            .collect();
        assert!(names.contains(&("counter", "map_reads_total")));
        assert!(names.contains(&("start", "query")));
        assert!(names.contains(&("start_node", "scan")));
    }

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let src = r#"
fn prod() {}
#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn t() { x.lock().unwrap(); }
}
"#;
        let scanned = scan(src);
        let ranges = test_line_ranges(&scanned);
        assert!(in_test_region(&ranges, 7));
        assert!(!in_test_region(&ranges, 2));
    }
}
