//! SQ006: clock-domain taint.
//!
//! The engine stamps time in two incompatible domains (`common::time`):
//! *Instant-domain* micros are process-relative (`Clock::now_micros`) and
//! *epoch-domain* micros are µs since the unix epoch (`Clock::epoch_micros`).
//! PR 9 shipped an Instant-domain seal stamp into the epoch-domain WAL SEAL
//! record; every recovered snapshot then read ~0 staleness against a
//! restarted clock. The registries in `crates/common/src/names.rs` declare
//! which producers, fields, conversions, and persistence sinks belong to
//! which domain; this pass propagates those tags through let-bindings,
//! local reassignments, and field reads within each function body and flags:
//!
//! * Instant- and epoch-domain values mixed in one comparison or arithmetic
//!   expression;
//! * an Instant-domain value reaching an epoch persistence sink (the PR 9
//!   shape);
//! * an already-epoch value passed through `to_epoch_micros` (double
//!   rebase — the anchor is added twice);
//! * a store of one domain into a struct field registered as the other.
//!
//! The analysis is function-local and statement-segmented: bodies are split
//! at `;`/`{`/`}`, each segment is scanned for domain-tagged atoms, and a
//! `to_epoch_micros(..)` call consumes the atoms of its argument (its job is
//! to cross the domains). Values of unknown domain never conflict with
//! anything, so the pass under-approximates and stays zero-false-positive —
//! the SQ001 house rule.

use crate::checks::LintedFile;
use crate::diag::{Code, Diagnostic};
use crate::scanner::Token;
use squery_common::names::{
    domain_of_field, domain_of_producer, is_epoch_conversion, is_epoch_sink, ClockDomain,
};
use std::collections::{BTreeSet, HashMap};

const ALLOW_CLOCK: &str = "lint:allow(clock_domain)";

/// Methods that combine two time values (beyond the `+ - < > == !=` operator
/// tokens): mixing domains through any of these is flagged.
const MIXING_METHODS: &[&str] = &[
    "abs_diff",
    "checked_sub",
    "cmp",
    "max",
    "min",
    "saturating_add",
    "saturating_sub",
    "wrapping_sub",
];

/// A domain-tagged value occurrence inside one statement segment.
#[derive(Debug, Clone)]
struct Atom {
    pos: usize,
    line: u32,
    domain: ClockDomain,
    desc: String,
}

pub fn check_clock_domains(files: &[LintedFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in files {
        let suppressed = |line: u32| {
            f.scanned
                .comments
                .get(&line)
                .is_some_and(|c| c.contains(ALLOW_CLOCK))
        };
        let mut seen: BTreeSet<(u32, String)> = BTreeSet::new();
        for func in &f.info.functions {
            if crate::extract::in_test_region(&f.test_ranges, func.line) {
                continue;
            }
            let toks = &f.scanned.tokens;
            let (open, end) = func.body;
            let end = end.min(toks.len());
            // Domains of let-bound locals, accumulated across segments.
            let mut vars: HashMap<String, ClockDomain> = HashMap::new();
            let mut seg_start = open;
            let mut i = open;
            while i <= end {
                let boundary = i == end
                    || toks[i].is_punct(';')
                    || toks[i].is_punct('{')
                    || toks[i].is_punct('}');
                if boundary {
                    check_segment(toks, seg_start, i, &mut vars, &mut |line, msg| {
                        if !suppressed(line) && seen.insert((line, msg.clone())) {
                            diags.push(Diagnostic {
                                code: Code::Sq006,
                                file: f.path.clone(),
                                line,
                                message: msg,
                            });
                        }
                    });
                    seg_start = i + 1;
                }
                i += 1;
            }
        }
    }
    diags
}

/// Analyze one statement segment `toks[s..e)`.
///
/// Top-level commas (struct-literal field inits, closure params) split the
/// segment further: sibling struct fields may legitimately hold different
/// domains (`CheckpointRecord` carries a process-relative `began_at_us`
/// next to a persisted epoch `sealed_at_us`), and no comparison or
/// arithmetic can span a comma. Commas nested in parens/brackets stay
/// inside their expression, so `a.max(b)` is still one unit.
fn check_segment(
    toks: &[Token],
    s: usize,
    e: usize,
    vars: &mut HashMap<String, ClockDomain>,
    report: &mut impl FnMut(u32, String),
) {
    if s >= e {
        return;
    }
    let mut depth = 0i32;
    let mut sub_start = s;
    for j in s..e {
        if toks[j].is_punct('(') || toks[j].is_punct('[') {
            depth += 1;
        } else if toks[j].is_punct(')') || toks[j].is_punct(']') {
            depth -= 1;
        } else if toks[j].is_punct(',') && depth <= 0 {
            check_unit(toks, sub_start, j, vars, report);
            sub_start = j + 1;
        }
    }
    if sub_start > s {
        check_unit(toks, sub_start, e, vars, report);
        return;
    }
    check_unit(toks, s, e, vars, report);
}

/// Analyze one comma-free expression unit `toks[s..e)`.
fn check_unit(
    toks: &[Token],
    s: usize,
    e: usize,
    vars: &mut HashMap<String, ClockDomain>,
    report: &mut impl FnMut(u32, String),
) {
    if s >= e {
        return;
    }
    let mut atoms = collect_atoms(toks, s, e, vars);

    // `to_epoch_micros(..)` consumes its argument's atoms: an Instant atom
    // inside is the blessed rebase; an epoch atom inside is a double rebase.
    for (call, args_s, args_e) in call_spans(toks, s, e, is_epoch_conversion) {
        for a in atoms.iter().filter(|a| a.pos >= args_s && a.pos < args_e) {
            if a.domain == ClockDomain::Epoch {
                report(
                    a.line,
                    format!(
                        "{} ({}) passed to to_epoch_micros(): the value is already \
                         epoch-domain, rebasing adds the clock anchor twice",
                        a.desc,
                        a.domain.name()
                    ),
                );
            }
        }
        atoms.retain(|a| !(a.pos >= args_s && a.pos < args_e));
        atoms.push(Atom {
            pos: call,
            line: toks[call].line,
            domain: ClockDomain::Epoch,
            desc: "to_epoch_micros(..)".into(),
        });
    }

    // Epoch persistence sinks must not see Instant-domain values: this is
    // the exact PR 9 bug (Instant seal stamp into the epoch WAL record).
    for (_call, args_s, args_e) in call_spans(toks, s, e, is_epoch_sink) {
        for a in atoms.iter().filter(|a| a.pos >= args_s && a.pos < args_e) {
            if a.domain == ClockDomain::Instant {
                report(
                    a.line,
                    format!(
                        "{} (Instant-domain, process-relative) passed to epoch-domain \
                         sink {}(): persisted stamps must be rebased with \
                         to_epoch_micros() first",
                        a.desc,
                        toks[_call].ident().unwrap_or("?")
                    ),
                );
            }
        }
        atoms.retain(|a| !(a.pos >= args_s && a.pos < args_e));
    }

    // Field stores: `.field = expr` where the field is domain-registered.
    for k in s..e {
        let Some(field) = toks[k].ident() else {
            continue;
        };
        let Some(fdom) = domain_of_field(field) else {
            continue;
        };
        if k == 0 || !toks[k - 1].is_punct('.') {
            continue;
        }
        let is_store = toks.get(k + 1).is_some_and(|t| t.is_punct('='))
            && !toks.get(k + 2).is_some_and(|t| t.is_punct('='));
        if !is_store {
            continue;
        }
        for a in atoms.iter().filter(|a| a.pos > k + 1 && a.domain != fdom) {
            report(
                a.line,
                format!(
                    "{} ({}) stored into {} field .{}",
                    a.desc,
                    a.domain.name(),
                    fdom.name(),
                    field
                ),
            );
        }
    }

    // Struct-literal field inits: `field: expr,` for registered fields.
    for k in s..e {
        let Some(field) = toks[k].ident() else {
            continue;
        };
        let Some(fdom) = domain_of_field(field) else {
            continue;
        };
        let colon = toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
            && (k == 0 || !(toks[k - 1].is_punct(':') || toks[k - 1].is_punct('.')));
        if !colon {
            continue;
        }
        // Expression runs to the next top-level `,` (or segment end).
        let mut depth = 0i32;
        let mut stop = e;
        for (j, t) in toks.iter().enumerate().take(e).skip(k + 2) {
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct(',') && depth <= 0 {
                stop = j;
                break;
            }
        }
        for a in atoms
            .iter()
            .filter(|a| a.pos > k + 1 && a.pos < stop && a.domain != fdom)
        {
            report(
                a.line,
                format!(
                    "{} ({}) used to initialize {} field {}:",
                    a.desc,
                    a.domain.name(),
                    fdom.name(),
                    field
                ),
            );
        }
    }

    // Cross-domain mixing: both domains present in one segment that also
    // compares or combines values.
    let instant = atoms.iter().find(|a| a.domain == ClockDomain::Instant);
    let epoch = atoms.iter().find(|a| a.domain == ClockDomain::Epoch);
    if let (Some(ia), Some(ea)) = (instant, epoch) {
        if has_mixing_op(toks, s, e) {
            let line = ia.line.max(ea.line);
            report(
                line,
                format!(
                    "Instant-domain {} mixed with epoch-domain {} in one expression: \
                     the domains differ by the clock's epoch anchor, comparing or \
                     combining them is meaningless; rebase with to_epoch_micros()",
                    ia.desc, ea.desc
                ),
            );
        }
    }

    // Taint propagation: `let name = expr;` and `name = expr;` bind the
    // name to the expression's domain (or clear it when indeterminate).
    let binding = let_binding(toks, s, e).or_else(|| plain_assign(toks, s, e));
    if let Some((name, rhs_from)) = binding {
        let rhs: Vec<&Atom> = atoms.iter().filter(|a| a.pos >= rhs_from).collect();
        let dom = match rhs.split_first() {
            Some((first, rest)) if rest.iter().all(|a| a.domain == first.domain) => {
                Some(first.domain)
            }
            _ => None,
        };
        match dom {
            Some(d) => {
                vars.insert(name, d);
            }
            None => {
                vars.remove(&name);
            }
        }
    }
}

/// Collect the domain-tagged atoms of `toks[s..e)`.
fn collect_atoms(
    toks: &[Token],
    s: usize,
    e: usize,
    vars: &HashMap<String, ClockDomain>,
) -> Vec<Atom> {
    let mut atoms = Vec::new();
    for i in s..e {
        let Some(id) = toks[i].ident() else { continue };
        let called = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        let dotted = i > 0 && toks[i - 1].is_punct('.');
        if called {
            if let Some(d) = domain_of_producer(id) {
                atoms.push(Atom {
                    pos: i,
                    line: toks[i].line,
                    domain: d,
                    desc: format!("{id}()"),
                });
            }
        } else if dotted {
            if let Some(d) = domain_of_field(id) {
                atoms.push(Atom {
                    pos: i,
                    line: toks[i].line,
                    domain: d,
                    desc: format!(".{id}"),
                });
            }
        } else if !(toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            || (i > 0 && toks[i - 1].is_punct(':')))
        {
            // Bare local read (not a struct-field label, not a path segment).
            if let Some(d) = vars.get(id) {
                atoms.push(Atom {
                    pos: i,
                    line: toks[i].line,
                    domain: *d,
                    desc: format!("`{id}`"),
                });
            }
        }
    }
    atoms
}

/// Spans of calls `f(args)` in `toks[s..e)` where `pred(f)`; returns
/// `(call_pos, args_start, args_end)` with args exclusive of the parens.
fn call_spans(
    toks: &[Token],
    s: usize,
    e: usize,
    pred: impl Fn(&str) -> bool,
) -> Vec<(usize, usize, usize)> {
    let mut spans = Vec::new();
    for i in s..e {
        let Some(id) = toks[i].ident() else { continue };
        if !pred(id) || !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let mut depth = 0i32;
        let mut close = e;
        for (j, t) in toks.iter().enumerate().take(e).skip(i + 1) {
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    close = j;
                    break;
                }
            }
        }
        spans.push((i, i + 2, close));
    }
    spans
}

/// Does the segment compare or arithmetically combine values? (`+ - < > %`,
/// `==`/`!=`, or a combining method like `saturating_sub`/`min`.)
fn has_mixing_op(toks: &[Token], s: usize, e: usize) -> bool {
    for i in s..e {
        if toks[i].is_punct('+') || toks[i].is_punct('-') || toks[i].is_punct('%') {
            return true;
        }
        if (toks[i].is_punct('<') || toks[i].is_punct('>'))
            && !toks
                .get(i + 1)
                .is_some_and(|t| t.is_punct('<') || t.is_punct('>'))
        {
            // Best-effort: single < or > (shift/generic brackets come in
            // type positions, which carry no domain atoms anyway).
            return true;
        }
        if toks[i].is_punct('=') && toks.get(i + 1).is_some_and(|t| t.is_punct('=')) {
            return true;
        }
        if toks[i].is_punct('!') && toks.get(i + 1).is_some_and(|t| t.is_punct('=')) {
            return true;
        }
        if let Some(id) = toks[i].ident() {
            if MIXING_METHODS.contains(&id) && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                return true;
            }
        }
    }
    false
}

/// `let NAME = …` in this segment: the binding name and the token index the
/// RHS starts at.
fn let_binding(toks: &[Token], s: usize, e: usize) -> Option<(String, usize)> {
    if s >= e || !toks[s].is_ident("let") {
        return None;
    }
    let mut name = None;
    for (j, t) in toks.iter().enumerate().take(e).skip(s + 1) {
        if t.is_punct('=') {
            return name.map(|n| (n, j + 1));
        }
        if let Some(b) = t.ident() {
            if name.is_none() && b != "mut" && b != "ref" && b != "_" {
                name = Some(b.to_string());
            }
        }
    }
    None
}

/// `name = …` local reassignment (not `==`, not a field store).
fn plain_assign(toks: &[Token], s: usize, e: usize) -> Option<(String, usize)> {
    if s + 2 >= e {
        return None;
    }
    let name = toks[s].ident()?;
    if toks[s + 1].is_punct('=') && !toks[s + 2].is_punct('=') {
        Some((name.to_string(), s + 2))
    } else {
        None
    }
}
