//! The four analysis passes (SQ001–SQ004) over extracted file info.

use crate::diag::{Code, Diagnostic};
use crate::extract::{in_test_region, FileInfo, FunctionInfo, METRIC_NAME_FNS};
use crate::scanner::Scanned;
use squery_common::lockorder::LockClass;
use squery_common::names;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::{Path, PathBuf};

/// One file, fully scanned and extracted, ready for the checks.
pub struct LintedFile {
    pub path: PathBuf,
    pub scanned: Scanned,
    pub info: FileInfo,
    pub test_ranges: Vec<(u32, u32)>,
}

impl LintedFile {
    fn in_tests(&self, line: u32) -> bool {
        in_test_region(&self.test_ranges, line)
    }
}

/// Run every check over the file set.
pub fn run_all(files: &[LintedFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    diags.extend(check_lock_order(files));
    diags.extend(check_panic_hygiene(files));
    diags.extend(check_telemetry_names(files));
    diags.extend(check_unsafe_audit(files));
    diags.extend(check_blocking_under_lock(files));
    diags.extend(crate::domains::check_clock_domains(files));
    diags.extend(crate::atomics::check_atomics(files));
    diags.sort_by(|a, b| {
        (a.code, &a.file, a.line, &a.message).cmp(&(b.code, &b.file, b.line, &b.message))
    });
    diags
}

// ---------------------------------------------------------------------------
// SQ001: inter-procedural lock-order analysis
// ---------------------------------------------------------------------------

/// How a function comes to hold a lock class (for evidence paths).
#[derive(Debug, Clone)]
enum Reach {
    Direct {
        file: PathBuf,
        line: u32,
    },
    Via {
        callee: String,
        line: u32,
        file: PathBuf,
    },
}

/// Evidence for one lock-order edge A→B.
#[derive(Debug, Clone)]
struct EdgeEvidence {
    file: PathBuf,
    function: String,
    held_line: u32,
    /// Steps from the held site to the acquisition of the target class.
    path: String,
}

pub fn check_lock_order(files: &[LintedFile]) -> Vec<Diagnostic> {
    // Non-test functions only: the lint's own tests (and the lock-order
    // tracker's) deliberately interleave acquisitions.
    let funcs: Vec<(&LintedFile, &FunctionInfo)> = files
        .iter()
        .flat_map(|f| {
            f.info
                .functions
                .iter()
                .filter(move |func| !f.in_tests(func.line))
                .map(move |func| (f, func))
        })
        .collect();

    // Function-name resolution: only unambiguous names propagate. Ubiquitous
    // names (`new`, `snapshot`, `record`, …) are defined many times over the
    // workspace; following all candidates would manufacture false cycles, so
    // the analysis under-approximates to stay zero-false-positive.
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (idx, (_, func)) in funcs.iter().enumerate() {
        by_name.entry(func.name.as_str()).or_default().push(idx);
    }
    let resolve = |name: &str| -> Option<usize> {
        match by_name.get(name) {
            Some(v) if v.len() == 1 => Some(v[0]),
            _ => None,
        }
    };

    // Fixpoint: classes each function may acquire, directly or transitively.
    let mut reach: Vec<BTreeMap<LockClass, Reach>> = funcs
        .iter()
        .map(|(file, func)| {
            let mut m = BTreeMap::new();
            for (class, line) in &func.acquires {
                m.entry(*class).or_insert(Reach::Direct {
                    file: file.path.clone(),
                    line: *line,
                });
            }
            m
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..funcs.len() {
            let (file, func) = &funcs[i];
            for (callee, line) in &func.calls {
                if let Some(j) = resolve(callee) {
                    if i == j {
                        continue;
                    }
                    let classes: Vec<LockClass> = reach[j].keys().copied().collect();
                    for c in classes {
                        if let std::collections::btree_map::Entry::Vacant(slot) = reach[i].entry(c)
                        {
                            slot.insert(Reach::Via {
                                callee: callee.clone(),
                                line: *line,
                                file: file.path.clone(),
                            });
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Render the step chain by which function `idx` reaches `class`.
    let describe = |idx: usize, class: LockClass| -> String {
        let mut out = String::new();
        let mut cur = idx;
        let mut guard = 0;
        loop {
            guard += 1;
            if guard > 32 {
                out.push_str(" …");
                break;
            }
            match reach[cur].get(&class) {
                Some(Reach::Direct { file, line }) => {
                    out.push_str(&format!(
                        "acquires {} at {}:{}",
                        class_name(class),
                        file.display(),
                        line
                    ));
                    break;
                }
                Some(Reach::Via { callee, line, file }) => {
                    out.push_str(&format!(
                        "calls {}() at {}:{} which ",
                        callee,
                        file.display(),
                        line
                    ));
                    match resolve(callee) {
                        Some(next) => cur = next,
                        None => {
                            out.push_str("(unresolved)");
                            break;
                        }
                    }
                }
                None => {
                    out.push_str("(no path)");
                    break;
                }
            }
        }
        out
    };

    // Edge set over classes, keeping the first evidence per ordered pair.
    let mut edges: BTreeMap<(LockClass, LockClass), EdgeEvidence> = BTreeMap::new();
    for (i, (file, func)) in funcs.iter().enumerate() {
        for e in &func.edges {
            edges
                .entry((e.held, e.acquired))
                .or_insert_with(|| EdgeEvidence {
                    file: file.path.clone(),
                    function: func.name.clone(),
                    held_line: e.held_line,
                    path: format!(
                        "acquires {} at {}:{}",
                        class_name(e.acquired),
                        file.path.display(),
                        e.acquired_line
                    ),
                });
        }
        for hc in &func.held_calls {
            if let Some(j) = resolve(&hc.callee) {
                if j == i {
                    continue;
                }
                let classes: Vec<LockClass> = reach[j].keys().copied().collect();
                for c in classes {
                    if c == hc.held {
                        continue;
                    }
                    edges.entry((hc.held, c)).or_insert_with(|| EdgeEvidence {
                        file: file.path.clone(),
                        function: func.name.clone(),
                        held_line: hc.held_line,
                        path: format!(
                            "calls {}() at {}:{} which {}",
                            hc.callee,
                            file.path.display(),
                            hc.call_line,
                            describe(j, c)
                        ),
                    });
                }
            }
        }
    }

    // Cycle detection over the class graph; every cycle is a potential
    // deadlock. Report each distinct cycle (by class set) once, with the
    // evidence path for every edge on it.
    let mut adj: BTreeMap<LockClass, Vec<LockClass>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(*a).or_default().push(*b);
    }
    let mut reported: BTreeSet<Vec<LockClass>> = BTreeSet::new();
    let mut diags = Vec::new();
    let nodes: Vec<LockClass> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut stack = vec![start];
        let mut path = Vec::new();
        find_cycles(start, &adj, &mut stack, &mut path, &mut |cycle| {
            let mut key: Vec<LockClass> = cycle.to_vec();
            key.sort();
            key.dedup();
            if !reported.insert(key) {
                return;
            }
            let mut msg = format!(
                "lock-order cycle ({}): potential deadlock",
                cycle
                    .iter()
                    .map(|c| class_name(*c))
                    .collect::<Vec<_>>()
                    .join(" -> ")
            );
            let mut first_site: Option<(PathBuf, u32)> = None;
            for w in cycle.windows(2) {
                let ev = &edges[&(w[0], w[1])];
                msg.push_str(&format!(
                    "; path: fn {} ({}:{}) holds {} and {}",
                    ev.function,
                    ev.file.display(),
                    ev.held_line,
                    class_name(w[0]),
                    ev.path
                ));
                if first_site.is_none() {
                    first_site = Some((ev.file.clone(), ev.held_line));
                }
            }
            let (file, line) = first_site.unwrap_or((PathBuf::from("<workspace>"), 0));
            diags.push(Diagnostic {
                code: Code::Sq001,
                file,
                line,
                message: msg,
            });
        });
        let _ = path;
    }
    diags
}

/// DFS cycle enumeration: explores simple paths from `stack[0]` and invokes
/// `on_cycle` with `[a, …, a]` whenever the path returns to its origin.
fn find_cycles(
    node: LockClass,
    adj: &BTreeMap<LockClass, Vec<LockClass>>,
    stack: &mut Vec<LockClass>,
    _path: &mut Vec<LockClass>,
    on_cycle: &mut impl FnMut(&[LockClass]),
) {
    if let Some(nexts) = adj.get(&node) {
        for &next in nexts {
            if next == stack[0] {
                let mut cycle = stack.clone();
                cycle.push(next);
                on_cycle(&cycle);
            } else if !stack.contains(&next) {
                stack.push(next);
                find_cycles(next, adj, stack, _path, on_cycle);
                stack.pop();
            }
        }
    }
}

fn class_name(c: LockClass) -> &'static str {
    c.name()
}

// ---------------------------------------------------------------------------
// SQ005: blocking operations under a named lock guard
// ---------------------------------------------------------------------------

const ALLOW_BLOCKING: &str = "lint:allow(blocking_under_lock)";

/// How a function comes to block (for SQ005 evidence paths).
#[derive(Debug, Clone)]
enum BlockReach {
    Direct {
        op: String,
        file: PathBuf,
        line: u32,
    },
    Via {
        callee: String,
        line: u32,
        file: PathBuf,
    },
}

/// A blocking op (channel recv/send, `Condvar` wait, thread join, fsync)
/// while a named lock guard is live starves every thread queued on that
/// lock for as long as the op takes — and a bounded-channel send under the
/// checkpoint or registry locks is one slow consumer away from deadlock.
/// Reuses SQ001's guard-lifetime model for "is a guard live" and its
/// call-resolution rule (unambiguous names only) to follow blocking calls
/// inter-procedurally.
pub fn check_blocking_under_lock(files: &[LintedFile]) -> Vec<Diagnostic> {
    let funcs: Vec<(&LintedFile, &FunctionInfo)> = files
        .iter()
        .flat_map(|f| {
            f.info
                .functions
                .iter()
                .filter(move |func| !f.in_tests(func.line))
                .map(move |func| (f, func))
        })
        .collect();

    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (idx, (_, func)) in funcs.iter().enumerate() {
        by_name.entry(func.name.as_str()).or_default().push(idx);
    }
    let resolve = |name: &str| -> Option<usize> {
        match by_name.get(name) {
            Some(v) if v.len() == 1 => Some(v[0]),
            _ => None,
        }
    };

    // Fixpoint: which functions may block, directly or transitively. A
    // suppressed op site does not seed may-block: the author vouched for it.
    let suppressed = |f: &LintedFile, line: u32| {
        f.scanned
            .comments
            .get(&line)
            .is_some_and(|c| c.contains(ALLOW_BLOCKING))
    };
    let mut may_block: Vec<Option<BlockReach>> = funcs
        .iter()
        .map(|(file, func)| {
            func.blocking
                .iter()
                .find(|(_, line)| !suppressed(file, *line))
                .map(|(op, line)| BlockReach::Direct {
                    op: op.clone(),
                    file: file.path.clone(),
                    line: *line,
                })
        })
        .collect();
    loop {
        let mut changed = false;
        for i in 0..funcs.len() {
            if may_block[i].is_some() {
                continue;
            }
            let (file, func) = &funcs[i];
            for (callee, line) in &func.calls {
                if let Some(j) = resolve(callee) {
                    if j != i && may_block[j].is_some() && !suppressed(file, *line) {
                        may_block[i] = Some(BlockReach::Via {
                            callee: callee.clone(),
                            line: *line,
                            file: file.path.clone(),
                        });
                        changed = true;
                        break;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Evidence chain from function `idx` to a concrete blocking op.
    let describe = |idx: usize| -> String {
        let mut out = String::new();
        let mut cur = idx;
        let mut guard = 0;
        loop {
            guard += 1;
            if guard > 32 {
                out.push_str(" …");
                break;
            }
            match &may_block[cur] {
                Some(BlockReach::Direct { op, file, line }) => {
                    out.push_str(&format!(
                        "blocks in .{}() at {}:{}",
                        op,
                        file.display(),
                        line
                    ));
                    break;
                }
                Some(BlockReach::Via { callee, line, file }) => {
                    out.push_str(&format!(
                        "calls {}() at {}:{} which ",
                        callee,
                        file.display(),
                        line
                    ));
                    match resolve(callee) {
                        Some(next) => cur = next,
                        None => {
                            out.push_str("(unresolved)");
                            break;
                        }
                    }
                }
                None => {
                    out.push_str("(no path)");
                    break;
                }
            }
        }
        out
    };

    let mut diags = Vec::new();
    for (i, (file, func)) in funcs.iter().enumerate() {
        // Direct: a blocking op at a site where a guard is live.
        for hb in &func.held_blocking {
            if suppressed(file, hb.op_line) {
                continue;
            }
            diags.push(Diagnostic {
                code: Code::Sq005,
                file: file.path.clone(),
                line: hb.op_line,
                message: format!(
                    "blocking .{}() while holding {} (acquired at {}:{}): the lock is \
                     pinned for the full wait; move the blocking op outside the guard \
                     or annotate with `// {}`",
                    hb.op,
                    class_name(hb.held),
                    file.path.display(),
                    hb.held_line,
                    ALLOW_BLOCKING
                ),
            });
        }
        // Inter-procedural: a call under a guard into a may-block function.
        for hc in &func.held_calls {
            if suppressed(file, hc.call_line) {
                continue;
            }
            if let Some(j) = resolve(&hc.callee) {
                if j == i || may_block[j].is_none() {
                    continue;
                }
                diags.push(Diagnostic {
                    code: Code::Sq005,
                    file: file.path.clone(),
                    line: hc.call_line,
                    message: format!(
                        "call to {}() while holding {} (acquired at {}:{}) may block: \
                         {}() {}; move the call outside the guard or annotate with \
                         `// {}`",
                        hc.callee,
                        class_name(hc.held),
                        file.path.display(),
                        hc.held_line,
                        hc.callee,
                        describe(j),
                        ALLOW_BLOCKING
                    ),
                });
            }
        }
    }
    diags
}

// ---------------------------------------------------------------------------
// SQ002: panic-path hygiene
// ---------------------------------------------------------------------------

const ALLOW_PANIC: &str = "lint:allow(panic_on_poison)";

pub fn check_panic_hygiene(files: &[LintedFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in files {
        for site in &f.info.panic_sites {
            if f.in_tests(site.line) {
                continue;
            }
            if f.scanned
                .comments
                .get(&site.line)
                .is_some_and(|c| c.contains(ALLOW_PANIC))
            {
                continue;
            }
            diags.push(Diagnostic {
                code: Code::Sq002,
                file: f.path.clone(),
                line: site.line,
                message: format!(
                    ".{}() on a .{}() result: a panic here originates outside the \
                     catch_unwind recovery funnel; handle the error or annotate the \
                     line with `// {}`",
                    site.sink_method, site.source_method, ALLOW_PANIC
                ),
            });
        }
    }
    diags
}

// ---------------------------------------------------------------------------
// SQ003: telemetry-name registry
// ---------------------------------------------------------------------------

pub fn check_telemetry_names(files: &[LintedFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in files {
        for site in &f.info.name_sites {
            if f.in_tests(site.line) {
                continue;
            }
            let (ok, table) = if METRIC_NAME_FNS.contains(&site.function.as_str()) {
                (names::is_metric(&site.name), "METRIC_NAMES")
            } else {
                (names::is_span_kind(&site.name), "SPAN_KINDS")
            };
            if !ok {
                diags.push(Diagnostic {
                    code: Code::Sq003,
                    file: f.path.clone(),
                    line: site.line,
                    message: format!(
                        "{} name \"{}\" (passed to {}()) is not registered in \
                         crates/common/src/names.rs::{}",
                        if table == "METRIC_NAMES" {
                            "metric"
                        } else {
                            "span"
                        },
                        site.name,
                        site.function,
                        table
                    ),
                });
            }
        }
    }
    diags
}

// ---------------------------------------------------------------------------
// SQ004: unsafe audit
// ---------------------------------------------------------------------------

pub fn check_unsafe_audit(files: &[LintedFile]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in files {
        for site in &f.info.unsafe_sites {
            let justified = (site.line.saturating_sub(3)..=site.line).any(|l| {
                f.scanned
                    .comments
                    .get(&l)
                    .is_some_and(|c| c.contains("SAFETY:"))
            });
            if !justified {
                diags.push(Diagnostic {
                    code: Code::Sq004,
                    file: f.path.clone(),
                    line: site.line,
                    message: "`unsafe` without a `// SAFETY:` comment within the three \
                              preceding lines"
                        .into(),
                });
            }
        }
    }
    diags
}

/// Relative path of `p` under `root`, for stable diagnostics.
pub fn rel_path(root: &Path, p: &Path) -> PathBuf {
    p.strip_prefix(root)
        .map(Path::to_path_buf)
        .unwrap_or_else(|_| p.to_path_buf())
}
