//! `squery-lint`: from-scratch static analysis for the S-QUERY workspace.
//!
//! No external parser — a hand-rolled token scanner ([`scanner`]) feeds a
//! per-file extraction pass ([`extract`]) that models guard lifetimes, and
//! the checks ([`checks`]) run over the merged file set:
//!
//! - **SQ001** inter-procedural lock-order cycles (potential deadlocks)
//! - **SQ002** `.unwrap()`/`.expect()` on lock/channel results outside the
//!   `// lint:allow(panic_on_poison)` allowlist
//! - **SQ003** telemetry names missing from `crates/common/src/names.rs`
//! - **SQ004** `unsafe` without a `// SAFETY:` justification
//! - **SQ005** blocking ops (channel recv/send, `Condvar` waits, thread
//!   joins, fsync) while a named lock guard is live, inter-procedural
//!   through the SQ001 call-resolution rule ([`checks`])
//! - **SQ006** clock-domain taint: Instant-domain vs epoch-domain micros
//!   mixed in one expression or leaked into an epoch persistence sink
//!   ([`domains`])
//! - **SQ007** atomics handoff audit: undeclared cross-thread atomics and
//!   `Relaxed` accesses on flag-class atomics ([`atomics`])

pub mod atomics;
pub mod checks;
pub mod diag;
pub mod domains;
pub mod extract;
pub mod scanner;

pub use checks::LintedFile;
pub use diag::{pass_counts, render_json, Code, Diagnostic};

use std::path::{Path, PathBuf};

/// Scan + extract one source file. `path` is the path used in diagnostics
/// (keep it workspace-relative for stable output).
pub fn analyze_source(path: PathBuf, source: &str) -> LintedFile {
    let basename = path
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    let scanned = scanner::scan(source);
    let test_ranges = extract::test_line_ranges(&scanned);
    let info = extract::extract(&basename, &scanned);
    LintedFile {
        path,
        scanned,
        info,
        test_ranges,
    }
}

/// Lint an in-memory set of (path, source) pairs. Used by the fixture tests.
pub fn lint_sources(sources: &[(PathBuf, String)]) -> Vec<Diagnostic> {
    let files: Vec<LintedFile> = sources
        .iter()
        .map(|(p, s)| analyze_source(p.clone(), s))
        .collect();
    checks::run_all(&files)
}

/// Collect the workspace's own Rust sources under `root`: `src/` and every
/// `crates/*/src/`. Vendored `third_party/` code and build output are
/// deliberately out of scope.
pub fn collect_rust_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let top = root.join("src");
    if top.is_dir() {
        walk(&top, &mut out)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                walk(&src, &mut out)?;
            }
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            let name = p.file_name().map(|s| s.to_string_lossy().into_owned());
            if matches!(name.as_deref(), Some("target") | Some("third_party")) {
                continue;
            }
            walk(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root`. Returns the findings and the
/// number of files scanned.
pub fn run_lint(root: &Path) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let paths = collect_rust_sources(root)?;
    let mut files = Vec::with_capacity(paths.len());
    for p in &paths {
        let source = std::fs::read_to_string(p)?;
        files.push(analyze_source(checks::rel_path(root, p), &source));
    }
    Ok((checks::run_all(&files), files.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_source_has_no_findings() {
        let src = r#"
            pub fn get(&self) -> u32 {
                let _lo = lockorder::acquired(LockClass::PartitionMap);
                let g = self.map.read();
                g.len() as u32
            }
        "#;
        let diags = lint_sources(&[(PathBuf::from("imap.rs"), src.to_string())]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn unwrap_on_lock_is_flagged_and_allowlist_suppresses() {
        let src = "pub fn f(rx: &Receiver<u32>) -> u32 { rx.recv().unwrap() }\n";
        let diags = lint_sources(&[(PathBuf::from("a.rs"), src.to_string())]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::Sq002);
        assert_eq!(diags[0].line, 1);

        let ok = "pub fn f(rx: &Receiver<u32>) -> u32 { rx.recv().unwrap() } // lint:allow(panic_on_poison)\n";
        let diags = lint_sources(&[(PathBuf::from("a.rs"), ok.to_string())]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn intra_function_ab_ba_cycle_is_reported_once() {
        let a = r#"
            fn alpha(&self) {
                let g1 = self.in_progress.lock();
                let g2 = self.committed.lock();
                drop(g2);
                drop(g1);
            }
            fn beta(&self) {
                let g2 = self.committed.lock();
                let g1 = self.in_progress.lock();
                drop(g1);
                drop(g2);
            }
        "#;
        let diags = lint_sources(&[(PathBuf::from("registry.rs"), a.to_string())]);
        let cycles: Vec<_> = diags.iter().filter(|d| d.code == Code::Sq001).collect();
        assert_eq!(cycles.len(), 1, "want one cycle: {diags:?}");
        assert!(cycles[0].message.contains("RegistryInProgress"));
        assert!(cycles[0].message.contains("RegistryCommitted"));
        // Both directions' evidence appears in the single report.
        assert!(cycles[0].message.contains("fn alpha") || cycles[0].message.contains("fn beta"));
    }

    #[test]
    fn interprocedural_cycle_is_reported() {
        let a = r#"
            fn commit_path(&self) {
                let g = self.in_progress.lock();
                self.note_commit();
                drop(g);
            }
            fn note_commit(&self) {
                let c = self.committed.lock();
                c.push(1);
            }
            fn prune_path(&self) {
                let c = self.committed.lock();
                self.check_in_progress();
                drop(c);
            }
            fn check_in_progress(&self) {
                let g = self.in_progress.lock();
                g.is_some();
            }
        "#;
        let diags = lint_sources(&[(PathBuf::from("registry.rs"), a.to_string())]);
        let cycles: Vec<_> = diags.iter().filter(|d| d.code == Code::Sq001).collect();
        assert_eq!(cycles.len(), 1, "want one cycle: {diags:?}");
        assert!(cycles[0].message.contains("note_commit"));
        assert!(cycles[0].message.contains("check_in_progress"));
    }

    #[test]
    fn unregistered_metric_name_is_flagged() {
        let src = r#"
            fn f(reg: &Registry) {
                reg.counter("definitely_not_registered", 1);
                reg.counter("map_reads_total", 1);
            }
        "#;
        let diags = lint_sources(&[(PathBuf::from("a.rs"), src.to_string())]);
        assert_eq!(diags.len(), 1, "unexpected: {diags:?}");
        assert_eq!(diags[0].code, Code::Sq003);
        assert!(diags[0].message.contains("definitely_not_registered"));
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let diags = lint_sources(&[(PathBuf::from("a.rs"), bad.to_string())]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::Sq004);

        let good = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        let diags = lint_sources(&[(PathBuf::from("a.rs"), good.to_string())]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn blocking_under_lock_direct_and_suppressed() {
        let bad = r#"
            fn drain(&self) {
                let g = self.in_progress.lock();
                let _ = self.rx.recv();
            }
        "#;
        let diags = lint_sources(&[(PathBuf::from("a.rs"), bad.to_string())]);
        assert_eq!(diags.len(), 1, "unexpected: {diags:?}");
        assert_eq!(diags[0].code, Code::Sq005);
        assert!(diags[0].message.contains("recv"));
        assert!(diags[0].message.contains("RegistryInProgress"));

        let ok = r#"
            fn drain(&self) {
                let g = self.in_progress.lock();
                let _ = self.rx.recv(); // lint:allow(blocking_under_lock)
            }
        "#;
        let diags = lint_sources(&[(PathBuf::from("a.rs"), ok.to_string())]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn blocking_after_guard_release_is_clean() {
        let src = r#"
            fn drain(&self) {
                let g = self.in_progress.lock();
                drop(g);
                let _ = self.rx.recv();
            }
            fn labels(&self) -> String {
                let g = self.committed.lock();
                g.names.join(", ")
            }
        "#;
        let diags = lint_sources(&[(PathBuf::from("a.rs"), src.to_string())]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn blocking_under_lock_interprocedural() {
        let src = r#"
            fn commit(&self) {
                let g = self.in_progress.lock();
                self.wait_for_acks();
            }
            fn wait_for_acks(&self) {
                let _ = self.ack_rx.recv_timeout(t);
            }
        "#;
        let diags = lint_sources(&[(PathBuf::from("a.rs"), src.to_string())]);
        assert_eq!(diags.len(), 1, "unexpected: {diags:?}");
        assert_eq!(diags[0].code, Code::Sq005);
        assert!(diags[0].message.contains("wait_for_acks"));
        assert!(diags[0].message.contains("recv_timeout"));
    }

    #[test]
    fn instant_value_into_epoch_sink_is_flagged() {
        // The minimized PR 9 freshness bug: a process-relative seal stamp
        // persisted into the epoch-domain WAL seal record.
        let bad = r#"
            fn seal(&self, ssid: u64, low_wm: u64) {
                let sealed_at_us = self.clock.now_micros();
                let _ = self.wal_seal_with(ssid, low_wm, sealed_at_us);
            }
        "#;
        let diags = lint_sources(&[(PathBuf::from("a.rs"), bad.to_string())]);
        assert_eq!(diags.len(), 1, "unexpected: {diags:?}");
        assert_eq!(diags[0].code, Code::Sq006);
        assert!(diags[0].message.contains("wal_seal_with"));

        let ok = r#"
            fn seal(&self, ssid: u64, low_wm: u64) {
                let watermark_us = self.clock.to_epoch_micros(low_wm);
                let sealed_at_us = self.clock.epoch_micros();
                let _ = self.wal_seal_with(ssid, watermark_us, sealed_at_us);
            }
        "#;
        let diags = lint_sources(&[(PathBuf::from("a.rs"), ok.to_string())]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn cross_domain_compare_and_double_rebase_are_flagged() {
        let src = r#"
            fn stale(&self) -> bool {
                let sealed = self.clock.now_micros();
                let now = self.clock.epoch_micros();
                now.saturating_sub(sealed) > 1000
            }
        "#;
        let diags = lint_sources(&[(PathBuf::from("a.rs"), src.to_string())]);
        assert!(
            diags.iter().any(|d| d.code == Code::Sq006),
            "unexpected: {diags:?}"
        );

        let rebase = r#"
            fn anchor(&self) -> u64 {
                let e = self.clock.epoch_micros();
                self.clock.to_epoch_micros(e)
            }
        "#;
        let diags = lint_sources(&[(PathBuf::from("a.rs"), rebase.to_string())]);
        assert_eq!(diags.len(), 1, "unexpected: {diags:?}");
        assert!(diags[0].message.contains("twice"), "{}", diags[0].message);
    }

    #[test]
    fn sibling_struct_fields_of_different_domains_are_clean() {
        // CheckpointRecord carries a process-relative began_at_us next to a
        // persisted epoch sealed_at_us; field inits are independent units.
        let src = r#"
            fn record(&self) -> CheckpointRecord {
                let t0 = self.clock.now_micros();
                let t1 = self.clock.now_micros();
                let sealed_at_us = self.clock.epoch_micros();
                CheckpointRecord {
                    began_at_us: t0,
                    phase1_us: t1 - t0,
                    sealed_at_us,
                }
            }
        "#;
        let diags = lint_sources(&[(PathBuf::from("a.rs"), src.to_string())]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn wrong_domain_field_store_is_flagged() {
        let src = r#"
            fn stamp(&mut self) {
                self.sealed_at_us = self.clock.now_micros();
            }
        "#;
        let diags = lint_sources(&[(PathBuf::from("a.rs"), src.to_string())]);
        assert_eq!(diags.len(), 1, "unexpected: {diags:?}");
        assert_eq!(diags[0].code, Code::Sq006);
        assert!(diags[0].message.contains("sealed_at_us"));
    }

    #[test]
    fn undeclared_atomic_is_flagged_once() {
        let src = r#"
            struct S {
                mystery_bit: AtomicBool,
            }
            fn mk() -> S {
                S { mystery_bit: AtomicBool::new(false) }
            }
        "#;
        let diags = lint_sources(&[(PathBuf::from("a.rs"), src.to_string())]);
        assert_eq!(diags.len(), 1, "unexpected: {diags:?}");
        assert_eq!(diags[0].code, Code::Sq007);
        assert!(diags[0].message.contains("mystery_bit"));
    }

    #[test]
    fn relaxed_on_flag_class_is_flagged_counters_are_not() {
        let bad = r#"
            fn poisoned(&self) -> bool {
                self.poison.load(Ordering::Relaxed)
            }
        "#;
        let diags = lint_sources(&[(PathBuf::from("a.rs"), bad.to_string())]);
        assert_eq!(diags.len(), 1, "unexpected: {diags:?}");
        assert_eq!(diags[0].code, Code::Sq007);
        assert!(diags[0].message.contains("flag-class"));

        let ok = r#"
            fn poisoned(&self) -> bool {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                self.poison.load(Ordering::Acquire)
            }
        "#;
        let diags = lint_sources(&[(PathBuf::from("a.rs"), ok.to_string())]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn relaxed_through_unregistered_alias_is_flagged() {
        let src = r#"
            fn spin(stop2: &AtomicBool) {
                while !stop2.load(Ordering::Relaxed) {}
            }
        "#;
        let diags = lint_sources(&[(PathBuf::from("a.rs"), src.to_string())]);
        // Both the undeclared parameter name and the Relaxed access through
        // it are findings: aliases must reuse the registered name.
        assert!(
            diags.iter().all(|d| d.code == Code::Sq007) && !diags.is_empty(),
            "unexpected: {diags:?}"
        );
        assert!(diags.iter().any(|d| d.message.contains("stop2")));
    }

    #[test]
    fn test_regions_are_exempt_from_new_passes() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    let g = self.in_progress.lock();
                    let _ = rx.recv();
                    let bogus = AtomicBool::new(false);
                    bogus.store(true, Ordering::Relaxed);
                    let a = clock.now_micros();
                    let b = clock.epoch_micros();
                    assert!(b > a);
                }
            }
        "#;
        let diags = lint_sources(&[(PathBuf::from("a.rs"), src.to_string())]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn test_regions_are_exempt_from_sq002_and_sq003() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    let (tx, rx) = channel();
                    tx.send(1).unwrap();
                    reg.counter("not_a_real_metric", 1);
                    let _ = rx.recv().unwrap();
                }
            }
        "#;
        let diags = lint_sources(&[(PathBuf::from("a.rs"), src.to_string())]);
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }
}
