//! `squery-lint` binary: scan the workspace's own Rust sources and report
//! SQ001–SQ007 findings. Exit code 1 when anything is found, 2 on usage or
//! I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: squery-lint [--root <dir>] [--json]\n\
         \n\
         Static analysis over the S-QUERY workspace sources (src/ and\n\
         crates/*/src/; third_party/ and target/ are skipped):\n\
         \n\
           SQ001  lock-order cycles (potential deadlocks)\n\
           SQ002  .unwrap()/.expect() on lock/channel results outside\n\
                  the // lint:allow(panic_on_poison) allowlist\n\
           SQ003  telemetry names missing from crates/common/src/names.rs\n\
           SQ004  unsafe without a // SAFETY: comment\n\
           SQ005  blocking ops (recv/send/wait/join/fsync) under a named\n\
                  lock guard, outside // lint:allow(blocking_under_lock)\n\
           SQ006  Instant-domain vs epoch-domain micros mixed or leaked\n\
                  into an epoch persistence sink\n\
           SQ007  cross-thread atomics missing from the names.rs atomics\n\
                  registry, or Relaxed accesses on flag-class atomics\n\
         \n\
           --root <dir>  workspace root to scan (default: .)\n\
           --json        machine-readable report on stdout"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => usage(),
            },
            "--json" => json = true,
            "-h" | "--help" => usage(),
            other => {
                eprintln!("squery-lint: unknown argument `{other}`");
                usage();
            }
        }
    }

    let (diags, files_scanned) = match squery_lint::run_lint(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("squery-lint: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", squery_lint::render_json(&diags, files_scanned));
    } else {
        for d in &diags {
            println!("{d}");
        }
        for (code, n) in squery_lint::pass_counts(&diags) {
            eprintln!("squery-lint: {code} {:<24} {n} finding(s)", code.summary());
        }
        eprintln!(
            "squery-lint: {} file(s) scanned, {} finding(s)",
            files_scanned,
            diags.len()
        );
    }

    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
