//! Diagnostics: stable codes, `file:line` rendering, and the `--json` form.

use std::fmt;
use std::path::PathBuf;

/// Stable diagnostic codes. Never renumber — scripts and suppression
/// comments reference these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// Lock-order cycle (potential deadlock).
    Sq001,
    /// `.unwrap()`/`.expect()` on a lock/channel/join result outside the
    /// `// lint:allow(panic_on_poison)` allowlist.
    Sq002,
    /// Telemetry name not registered in `crates/common/src/names.rs`.
    Sq003,
    /// `unsafe` block without a `// SAFETY:` comment.
    Sq004,
}

impl Code {
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Sq001 => "SQ001",
            Code::Sq002 => "SQ002",
            Code::Sq003 => "SQ003",
            Code::Sq004 => "SQ004",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub code: Code,
    pub file: PathBuf,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}",
            self.code,
            self.file.display(),
            self.line,
            self.message
        )
    }
}

/// Render findings as a JSON report (hand-rolled, like the telemetry JSON
/// export — no serde in the workspace).
pub fn render_json(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::from("{\n  \"files_scanned\": ");
    out.push_str(&files_scanned.to_string());
    out.push_str(",\n  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"code\": ");
        out.push_str(&json_str(d.code.as_str()));
        out.push_str(", \"file\": ");
        out.push_str(&json_str(&d.file.display().to_string()));
        out.push_str(", \"line\": ");
        out.push_str(&d.line.to_string());
        out.push_str(", \"message\": ");
        out.push_str(&json_str(&d.message));
        out.push('}');
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_code_file_line_message() {
        let d = Diagnostic {
            code: Code::Sq002,
            file: PathBuf::from("crates/x/src/a.rs"),
            line: 7,
            message: "bad".into(),
        };
        assert_eq!(d.to_string(), "SQ002: crates/x/src/a.rs:7: bad");
    }

    #[test]
    fn json_escapes() {
        let d = Diagnostic {
            code: Code::Sq003,
            file: PathBuf::from("a.rs"),
            line: 1,
            message: "name \"x\"\nnot registered".into(),
        };
        let j = render_json(&[d], 3);
        assert!(j.contains("\\\"x\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\"files_scanned\": 3"));
    }
}
