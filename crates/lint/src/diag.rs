//! Diagnostics: stable codes, `file:line` rendering, and the `--json` form.

use std::fmt;
use std::path::PathBuf;

/// Stable diagnostic codes. Never renumber — scripts and suppression
/// comments reference these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// Lock-order cycle (potential deadlock).
    Sq001,
    /// `.unwrap()`/`.expect()` on a lock/channel/join result outside the
    /// `// lint:allow(panic_on_poison)` allowlist.
    Sq002,
    /// Telemetry name not registered in `crates/common/src/names.rs`.
    Sq003,
    /// `unsafe` block without a `// SAFETY:` comment.
    Sq004,
    /// Blocking operation (`recv`, `join`, `Condvar::wait`, fsync, bounded
    /// `send`) while a named lock guard is live, outside the
    /// `// lint:allow(blocking_under_lock)` allowlist.
    Sq005,
    /// Clock-domain confusion: Instant-domain and epoch-domain micros mixed
    /// in one expression, or an Instant-domain value reaching an epoch
    /// persistence sink (the PR 9 freshness bug class).
    Sq006,
    /// Atomics handoff audit: cross-thread atomic not declared in the
    /// `names.rs` atomics registry, or a `Relaxed` access on a flag-class
    /// atomic (the PR 3 / PR 9 coordinator-race shape).
    Sq007,
}

impl Code {
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Sq001 => "SQ001",
            Code::Sq002 => "SQ002",
            Code::Sq003 => "SQ003",
            Code::Sq004 => "SQ004",
            Code::Sq005 => "SQ005",
            Code::Sq006 => "SQ006",
            Code::Sq007 => "SQ007",
        }
    }

    /// Every pass, in report order (per-pass counts enumerate all of these,
    /// including zero-count passes, so report consumers see each pass ran).
    pub const ALL: &'static [Code] = &[
        Code::Sq001,
        Code::Sq002,
        Code::Sq003,
        Code::Sq004,
        Code::Sq005,
        Code::Sq006,
        Code::Sq007,
    ];

    /// One-line pass description for summaries.
    pub fn summary(self) -> &'static str {
        match self {
            Code::Sq001 => "lock-order cycles",
            Code::Sq002 => "panic hygiene",
            Code::Sq003 => "telemetry-name registry",
            Code::Sq004 => "unsafe audit",
            Code::Sq005 => "blocking under lock",
            Code::Sq006 => "clock-domain taint",
            Code::Sq007 => "atomics handoff audit",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub code: Code,
    pub file: PathBuf,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}",
            self.code,
            self.file.display(),
            self.line,
            self.message
        )
    }
}

/// Finding count per pass, covering every pass (zero-count passes included).
pub fn pass_counts(diags: &[Diagnostic]) -> Vec<(Code, usize)> {
    Code::ALL
        .iter()
        .map(|&c| (c, diags.iter().filter(|d| d.code == c).count()))
        .collect()
}

/// Render findings as a JSON report (hand-rolled, like the telemetry JSON
/// export — no serde in the workspace).
pub fn render_json(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::from("{\n  \"files_scanned\": ");
    out.push_str(&files_scanned.to_string());
    out.push_str(",\n  \"passes\": {");
    for (i, (code, n)) in pass_counts(diags).into_iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_str(code.as_str()));
        out.push_str(": ");
        out.push_str(&n.to_string());
    }
    out.push_str("},\n  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"code\": ");
        out.push_str(&json_str(d.code.as_str()));
        out.push_str(", \"file\": ");
        out.push_str(&json_str(&d.file.display().to_string()));
        out.push_str(", \"line\": ");
        out.push_str(&d.line.to_string());
        out.push_str(", \"message\": ");
        out.push_str(&json_str(&d.message));
        out.push('}');
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_code_file_line_message() {
        let d = Diagnostic {
            code: Code::Sq002,
            file: PathBuf::from("crates/x/src/a.rs"),
            line: 7,
            message: "bad".into(),
        };
        assert_eq!(d.to_string(), "SQ002: crates/x/src/a.rs:7: bad");
    }

    #[test]
    fn json_escapes() {
        let d = Diagnostic {
            code: Code::Sq003,
            file: PathBuf::from("a.rs"),
            line: 1,
            message: "name \"x\"\nnot registered".into(),
        };
        let j = render_json(&[d], 3);
        assert!(j.contains("\\\"x\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\"files_scanned\": 3"));
    }

    #[test]
    fn pass_counts_cover_every_pass() {
        let d = Diagnostic {
            code: Code::Sq006,
            file: PathBuf::from("a.rs"),
            line: 1,
            message: "mixed domains".into(),
        };
        let counts = pass_counts(&[d.clone(), d]);
        assert_eq!(counts.len(), Code::ALL.len());
        for (code, n) in &counts {
            let want = if *code == Code::Sq006 { 2 } else { 0 };
            assert_eq!(*n, want, "{code}");
        }
        let j = render_json(&[], 0);
        for code in Code::ALL {
            assert!(j.contains(code.as_str()), "missing {code} in {j}");
        }
        assert!(j.contains("\"SQ006\": 0"));
    }
}
