//! # squery-sql
//!
//! The SQL engine over S-QUERY state tables.
//!
//! Hazelcast IMDG ships a SQL interface over its distributed maps; the paper
//! extends it with joins (§VI-A: "S-QUERY extends the SQL interface exposed by
//! Hazelcast IMDG with join operations"). This crate is that queryable layer,
//! built from scratch: a lexer, a recursive-descent parser, a binder/planner,
//! and a pull-based executor, covering the dialect the paper's evaluation
//! exercises:
//!
//! * `SELECT` projections with expressions and aliases,
//! * `WHERE` with `AND`/`OR`/`NOT`, comparisons, arithmetic, `IS [NOT] NULL`,
//! * `JOIN … USING(col)` and `JOIN … ON a = b` (hash joins),
//! * `GROUP BY` with `COUNT(*)`, `COUNT`, `SUM`, `AVG`, `MIN`, `MAX`, `HAVING`,
//! * `ORDER BY … [ASC|DESC]`, `LIMIT`,
//! * `LOCALTIMESTAMP` (the paper's Query 1 compares deadlines against it),
//! * double-quoted table identifiers (`FROM "snapshot_orderinfo"`).
//!
//! Tables come from a [`catalog::Catalog`]. [`tables::GridCatalog`] adapts a
//! `squery-storage` grid: every live map is a table named after its operator
//! (key exposed as the `partitionKey` column), every snapshot store is a
//! `snapshot_<operator>` table with an additional `ssid` column. Snapshot
//! scans default to the latest committed snapshot id, resolved **once per
//! query** so a multi-table join reads one consistent snapshot — the
//! serializable-isolation path of the paper's §VII-B.
//!
//! `EXPLAIN <select>` renders the physical plan tree ([`explain`]);
//! `EXPLAIN ANALYZE <select>` executes the query under a forced trace and
//! annotates each node with measured rows, wall time, and claimed slices.

pub mod ast;
pub mod batch;
pub mod catalog;
pub mod display;
pub mod engine;
pub mod exec;
pub mod explain;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod systables;
pub mod tables;
pub mod vectorized;

pub use batch::{ColumnarBatch, BATCH_ROWS};
pub use catalog::{
    Catalog, ExecContext, ExecTrace, NodeStat, ScanHints, ScanSlices, SsidMode, Table, TableSlices,
};
pub use engine::{QueryLog, QueryLogEntry, ResultSet, SqlEngine};
pub use squery_common::config::Parallelism;
pub use systables::{SysRowProvider, SysTable};
pub use tables::GridCatalog;
