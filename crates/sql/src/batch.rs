//! Columnar batches: the vectorized executor's unit of work.
//!
//! A [`ColumnarBatch`] holds up to [`BATCH_ROWS`] rows as fixed-width typed
//! column vectors plus per-column validity (null) bitmaps. Batches are built
//! at the scan boundary — either converted from row slices or, for
//! partitioned grid tables, filled directly from storage — and flow through
//! the type-specialized filter / aggregate / join-probe kernels in
//! `vectorized.rs` without per-row `Value` boxing.
//!
//! Column typing is inferred per batch from the data itself: the first
//! non-null value fixes the column's type, and any later value of a
//! different type degrades the column to [`Column::Any`] (boxed `Value`s),
//! which the kernels treat as "not kernelizable — fall back to the row
//! engine for this batch". Reconstructing rows via [`ColumnarBatch::row_at`]
//! always yields exactly the `Value`s that went in, so the row fallback and
//! the kernels see identical data.

use squery_common::Value;
use std::sync::Arc;

/// Target rows per batch (~cache-friendly: 1024 × 8 B = 8 KiB per column).
pub const BATCH_ROWS: usize = 1024;

/// Three-valued logic for predicate masks (SQL `WHERE` semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// Definitely false.
    False,
    /// Definitely true (the row is selected).
    True,
    /// NULL (not selected, but distinct from false under NOT / OR).
    Null,
}

/// A per-row predicate result for one batch (Kleene three-valued logic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mask(pub Vec<Tri>);

impl Mask {
    /// Kleene AND, in place.
    pub fn and(&mut self, other: &Mask) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = match (*a, *b) {
                (Tri::False, _) | (_, Tri::False) => Tri::False,
                (Tri::True, Tri::True) => Tri::True,
                _ => Tri::Null,
            };
        }
    }

    /// Kleene OR, in place.
    pub fn or(&mut self, other: &Mask) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = match (*a, *b) {
                (Tri::True, _) | (_, Tri::True) => Tri::True,
                (Tri::False, Tri::False) => Tri::False,
                _ => Tri::Null,
            };
        }
    }

    /// Kleene NOT, in place.
    pub fn not(&mut self) {
        for a in self.0.iter_mut() {
            *a = match *a {
                Tri::True => Tri::False,
                Tri::False => Tri::True,
                Tri::Null => Tri::Null,
            };
        }
    }

    /// Indices of selected (`True`) rows, ascending.
    pub fn selected(&self) -> Vec<u32> {
        self.0
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == Tri::True)
            .map(|(i, _)| i as u32)
            .collect()
    }
}

/// One column of a batch. The `Vec<bool>` alongside each typed vector is the
/// validity bitmap: `true` = the value is present, `false` = SQL NULL (the
/// typed slot holds an arbitrary default and must not be read).
#[derive(Debug, Clone)]
pub enum Column {
    /// 64-bit integers.
    Int(Vec<i64>, Vec<bool>),
    /// 64-bit floats.
    Float(Vec<f64>, Vec<bool>),
    /// Microsecond timestamps.
    Timestamp(Vec<i64>, Vec<bool>),
    /// Booleans.
    Bool(Vec<bool>, Vec<bool>),
    /// Strings (shared, so gathers are refcount bumps).
    Str(Vec<Option<Arc<str>>>),
    /// Mixed / unsupported types: boxed values, kernels fall back.
    Any(Vec<Value>),
}

impl Column {
    /// Rows in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v, _) | Column::Timestamp(v, _) => v.len(),
            Column::Float(v, _) => v.len(),
            Column::Bool(v, _) => v.len(),
            Column::Str(v) => v.len(),
            Column::Any(v) => v.len(),
        }
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `row`, reconstructed exactly as it was pushed.
    pub fn value_at(&self, row: usize) -> Value {
        match self {
            Column::Int(v, ok) => {
                if ok[row] {
                    Value::Int(v[row])
                } else {
                    Value::Null
                }
            }
            Column::Float(v, ok) => {
                if ok[row] {
                    Value::Float(v[row])
                } else {
                    Value::Null
                }
            }
            Column::Timestamp(v, ok) => {
                if ok[row] {
                    Value::Timestamp(v[row])
                } else {
                    Value::Null
                }
            }
            Column::Bool(v, ok) => {
                if ok[row] {
                    Value::Bool(v[row])
                } else {
                    Value::Null
                }
            }
            Column::Str(v) => v[row]
                .as_ref()
                .map_or(Value::Null, |s| Value::Str(Arc::clone(s))),
            Column::Any(v) => v[row].clone(),
        }
    }

    /// A new column holding `rows[i] = self[idx[i]]`.
    pub fn gather(&self, idx: &[u32]) -> Column {
        match self {
            Column::Int(v, ok) => Column::Int(
                idx.iter().map(|&i| v[i as usize]).collect(),
                idx.iter().map(|&i| ok[i as usize]).collect(),
            ),
            Column::Float(v, ok) => Column::Float(
                idx.iter().map(|&i| v[i as usize]).collect(),
                idx.iter().map(|&i| ok[i as usize]).collect(),
            ),
            Column::Timestamp(v, ok) => Column::Timestamp(
                idx.iter().map(|&i| v[i as usize]).collect(),
                idx.iter().map(|&i| ok[i as usize]).collect(),
            ),
            Column::Bool(v, ok) => Column::Bool(
                idx.iter().map(|&i| v[i as usize]).collect(),
                idx.iter().map(|&i| ok[i as usize]).collect(),
            ),
            Column::Str(v) => Column::Str(idx.iter().map(|&i| v[i as usize].clone()).collect()),
            Column::Any(v) => Column::Any(idx.iter().map(|&i| v[i as usize].clone()).collect()),
        }
    }
}

/// Builds one column value-by-value, inferring the type from the first
/// non-null value and degrading to [`Column::Any`] on the first mismatch.
#[derive(Debug)]
pub struct ColumnBuilder {
    state: BuilderState,
}

#[derive(Debug)]
enum BuilderState {
    /// Only nulls so far (`n` of them) — type still undecided.
    Empty(usize),
    Int(Vec<i64>, Vec<bool>),
    Float(Vec<f64>, Vec<bool>),
    Timestamp(Vec<i64>, Vec<bool>),
    Bool(Vec<bool>, Vec<bool>),
    Str(Vec<Option<Arc<str>>>),
    Any(Vec<Value>),
}

impl Default for ColumnBuilder {
    fn default() -> Self {
        ColumnBuilder::new()
    }
}

impl ColumnBuilder {
    /// An empty builder.
    pub fn new() -> ColumnBuilder {
        ColumnBuilder {
            state: BuilderState::Empty(0),
        }
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        match &self.state {
            BuilderState::Empty(n) => *n,
            BuilderState::Int(v, _) | BuilderState::Timestamp(v, _) => v.len(),
            BuilderState::Float(v, _) => v.len(),
            BuilderState::Bool(v, _) => v.len(),
            BuilderState::Str(v) => v.len(),
            BuilderState::Any(v) => v.len(),
        }
    }

    /// True if nothing was pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one value.
    pub fn push(&mut self, value: &Value) {
        // Fast paths: the value matches the column's current type.
        match (&mut self.state, value) {
            (BuilderState::Empty(n), Value::Null) => {
                *n += 1;
                return;
            }
            (BuilderState::Int(v, ok), Value::Int(x)) => {
                v.push(*x);
                ok.push(true);
                return;
            }
            (BuilderState::Int(v, ok), Value::Null) => {
                v.push(0);
                ok.push(false);
                return;
            }
            (BuilderState::Float(v, ok), Value::Float(x)) => {
                v.push(*x);
                ok.push(true);
                return;
            }
            (BuilderState::Float(v, ok), Value::Null) => {
                v.push(0.0);
                ok.push(false);
                return;
            }
            (BuilderState::Timestamp(v, ok), Value::Timestamp(x)) => {
                v.push(*x);
                ok.push(true);
                return;
            }
            (BuilderState::Timestamp(v, ok), Value::Null) => {
                v.push(0);
                ok.push(false);
                return;
            }
            (BuilderState::Bool(v, ok), Value::Bool(x)) => {
                v.push(*x);
                ok.push(true);
                return;
            }
            (BuilderState::Bool(v, ok), Value::Null) => {
                v.push(false);
                ok.push(false);
                return;
            }
            (BuilderState::Str(v), Value::Str(s)) => {
                v.push(Some(Arc::clone(s)));
                return;
            }
            (BuilderState::Str(v), Value::Null) => {
                v.push(None);
                return;
            }
            (BuilderState::Any(v), _) => {
                v.push(value.clone());
                return;
            }
            _ => {}
        }
        // Type decision: first non-null value in an untyped column.
        if let BuilderState::Empty(n) = self.state {
            self.state = match value {
                Value::Int(x) => {
                    let mut v = vec![0i64; n];
                    v.push(*x);
                    let mut ok = vec![false; n];
                    ok.push(true);
                    BuilderState::Int(v, ok)
                }
                Value::Float(x) => {
                    let mut v = vec![0f64; n];
                    v.push(*x);
                    let mut ok = vec![false; n];
                    ok.push(true);
                    BuilderState::Float(v, ok)
                }
                Value::Timestamp(x) => {
                    let mut v = vec![0i64; n];
                    v.push(*x);
                    let mut ok = vec![false; n];
                    ok.push(true);
                    BuilderState::Timestamp(v, ok)
                }
                Value::Bool(x) => {
                    let mut v = vec![false; n];
                    v.push(*x);
                    let mut ok = vec![false; n];
                    ok.push(true);
                    BuilderState::Bool(v, ok)
                }
                Value::Str(s) => {
                    let mut v: Vec<Option<Arc<str>>> = vec![None; n];
                    v.push(Some(Arc::clone(s)));
                    BuilderState::Str(v)
                }
                _ => {
                    let mut v = vec![Value::Null; n];
                    v.push(value.clone());
                    BuilderState::Any(v)
                }
            };
            return;
        }
        // Type mismatch: degrade the whole column to boxed values.
        let len = self.len();
        let mut any: Vec<Value> = Vec::with_capacity(len + 1);
        for i in 0..len {
            any.push(self.finished_value_at(i));
        }
        any.push(value.clone());
        self.state = BuilderState::Any(any);
    }

    fn finished_value_at(&self, row: usize) -> Value {
        match &self.state {
            BuilderState::Empty(_) => Value::Null,
            BuilderState::Int(v, ok) => {
                if ok[row] {
                    Value::Int(v[row])
                } else {
                    Value::Null
                }
            }
            BuilderState::Float(v, ok) => {
                if ok[row] {
                    Value::Float(v[row])
                } else {
                    Value::Null
                }
            }
            BuilderState::Timestamp(v, ok) => {
                if ok[row] {
                    Value::Timestamp(v[row])
                } else {
                    Value::Null
                }
            }
            BuilderState::Bool(v, ok) => {
                if ok[row] {
                    Value::Bool(v[row])
                } else {
                    Value::Null
                }
            }
            BuilderState::Str(v) => v[row]
                .as_ref()
                .map_or(Value::Null, |s| Value::Str(Arc::clone(s))),
            BuilderState::Any(v) => v[row].clone(),
        }
    }

    /// Consume the builder into a column.
    pub fn finish(self) -> Column {
        match self.state {
            // All-null columns carry no type information; keep them boxed
            // so kernels fall back rather than guess a type.
            BuilderState::Empty(n) => Column::Any(vec![Value::Null; n]),
            BuilderState::Int(v, ok) => Column::Int(v, ok),
            BuilderState::Float(v, ok) => Column::Float(v, ok),
            BuilderState::Timestamp(v, ok) => Column::Timestamp(v, ok),
            BuilderState::Bool(v, ok) => Column::Bool(v, ok),
            BuilderState::Str(v) => Column::Str(v),
            BuilderState::Any(v) => Column::Any(v),
        }
    }
}

/// A batch of rows in columnar layout. All columns have length `len`.
#[derive(Debug, Clone)]
pub struct ColumnarBatch {
    cols: Vec<Column>,
    len: usize,
}

impl ColumnarBatch {
    /// Build from columns; panics if lengths disagree (programming error).
    pub fn new(cols: Vec<Column>) -> ColumnarBatch {
        let len = cols.first().map_or(0, Column::len);
        for c in &cols {
            assert_eq!(c.len(), len, "batch columns must have equal length");
        }
        ColumnarBatch { cols, len }
    }

    /// Convert a row slice into one batch (all rows, no chunking).
    pub fn from_rows(rows: &[Vec<Value>]) -> ColumnarBatch {
        let width = rows.first().map_or(0, Vec::len);
        let mut builders: Vec<ColumnBuilder> = (0..width).map(|_| ColumnBuilder::new()).collect();
        for row in rows {
            for (b, v) in builders.iter_mut().zip(row) {
                b.push(v);
            }
        }
        ColumnarBatch {
            cols: builders.into_iter().map(ColumnBuilder::finish).collect(),
            len: rows.len(),
        }
    }

    /// Convert a row slice into batches of at most [`BATCH_ROWS`] rows.
    /// Concatenating the batches reproduces `rows` exactly, in order.
    pub fn from_rows_chunked(rows: &[Vec<Value>]) -> Vec<ColumnarBatch> {
        rows.chunks(BATCH_ROWS)
            .map(ColumnarBatch::from_rows)
            .collect()
    }

    /// Like [`ColumnarBatch::from_rows`], but materializing only the listed
    /// columns, in `cols` order (the scan-boundary column pruning).
    pub fn from_rows_cols(rows: &[Vec<Value>], cols: &[usize]) -> ColumnarBatch {
        let mut builders: Vec<ColumnBuilder> =
            (0..cols.len()).map(|_| ColumnBuilder::new()).collect();
        for row in rows {
            for (b, &c) in builders.iter_mut().zip(cols) {
                b.push(&row[c]);
            }
        }
        ColumnarBatch {
            cols: builders.into_iter().map(ColumnBuilder::finish).collect(),
            len: rows.len(),
        }
    }

    /// Column-pruned [`ColumnarBatch::from_rows_chunked`]: batch `i`'s rows
    /// are the corresponding input rows projected to `cols`.
    pub fn from_rows_chunked_cols(rows: &[Vec<Value>], cols: &[usize]) -> Vec<ColumnarBatch> {
        rows.chunks(BATCH_ROWS)
            .map(|c| ColumnarBatch::from_rows_cols(c, cols))
            .collect()
    }

    /// Rows in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The batch's columns.
    pub fn columns(&self) -> &[Column] {
        &self.cols
    }

    /// One column.
    pub fn column(&self, i: usize) -> &Column {
        &self.cols[i]
    }

    /// The value at (`row`, `col`).
    pub fn value_at(&self, row: usize, col: usize) -> Value {
        self.cols[col].value_at(row)
    }

    /// Reconstruct one row, exactly as it was pushed.
    pub fn row_at(&self, row: usize) -> Vec<Value> {
        self.cols.iter().map(|c| c.value_at(row)).collect()
    }

    /// Materialize every row (the boundary into the row engine).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.len).map(|i| self.row_at(i)).collect()
    }

    /// A new batch holding the given rows of this batch, in `idx` order.
    pub fn gather(&self, idx: &[u32]) -> ColumnarBatch {
        ColumnarBatch {
            cols: self.cols.iter().map(|c| c.gather(idx)).collect(),
            len: idx.len(),
        }
    }

    /// Consume the batch into its columns (for rebuilding wider batches,
    /// e.g. the join probe's `[left…, kept right…]` output).
    pub fn into_columns(self) -> Vec<Column> {
        self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: &str) -> Value {
        Value::Str(Arc::from(x))
    }

    #[test]
    fn round_trips_typed_rows() {
        let rows = vec![
            vec![Value::Int(1), Value::Float(1.5), s("a"), Value::Bool(true)],
            vec![Value::Null, Value::Null, Value::Null, Value::Null],
            vec![Value::Int(3), Value::Float(2.5), s("b"), Value::Bool(false)],
        ];
        let b = ColumnarBatch::from_rows(&rows);
        assert_eq!(b.len(), 3);
        assert!(matches!(b.column(0), Column::Int(_, _)));
        assert!(matches!(b.column(1), Column::Float(_, _)));
        assert!(matches!(b.column(2), Column::Str(_)));
        assert!(matches!(b.column(3), Column::Bool(_, _)));
        assert_eq!(b.to_rows(), rows);
    }

    #[test]
    fn leading_nulls_backfill_when_type_appears() {
        let rows = vec![
            vec![Value::Null],
            vec![Value::Null],
            vec![Value::Timestamp(42)],
        ];
        let b = ColumnarBatch::from_rows(&rows);
        assert!(matches!(b.column(0), Column::Timestamp(_, _)));
        assert_eq!(b.to_rows(), rows);
    }

    #[test]
    fn mixed_types_degrade_to_any_and_round_trip() {
        let rows = vec![
            vec![Value::Int(1)],
            vec![Value::Float(2.5)],
            vec![Value::Int(3)],
        ];
        let b = ColumnarBatch::from_rows(&rows);
        assert!(matches!(b.column(0), Column::Any(_)));
        assert_eq!(b.to_rows(), rows);
    }

    #[test]
    fn all_null_column_stays_untyped() {
        let rows = vec![vec![Value::Null], vec![Value::Null]];
        let b = ColumnarBatch::from_rows(&rows);
        assert!(matches!(b.column(0), Column::Any(_)));
        assert_eq!(b.to_rows(), rows);
    }

    #[test]
    fn chunking_concatenates_to_the_input() {
        let rows: Vec<Vec<Value>> = (0..(BATCH_ROWS as i64 * 2 + 7))
            .map(|i| vec![Value::Int(i)])
            .collect();
        let batches = ColumnarBatch::from_rows_chunked(&rows);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), BATCH_ROWS);
        assert_eq!(batches[2].len(), 7);
        let glued: Vec<Vec<Value>> = batches.iter().flat_map(|b| b.to_rows()).collect();
        assert_eq!(glued, rows);
    }

    #[test]
    fn gather_reorders_and_clones() {
        let rows = vec![
            vec![Value::Int(10), s("x")],
            vec![Value::Int(20), s("y")],
            vec![Value::Null, Value::Null],
        ];
        let b = ColumnarBatch::from_rows(&rows);
        let g = b.gather(&[2, 0, 0]);
        assert_eq!(
            g.to_rows(),
            vec![
                vec![Value::Null, Value::Null],
                vec![Value::Int(10), s("x")],
                vec![Value::Int(10), s("x")],
            ]
        );
    }

    #[test]
    fn kleene_mask_ops() {
        use Tri::*;
        let mut a = Mask(vec![True, True, True, False, False, Null, Null]);
        let b = Mask(vec![True, False, Null, False, Null, False, Null]);
        let mut and = a.clone();
        and.and(&b);
        assert_eq!(and.0, vec![True, False, Null, False, False, False, Null]);
        a.or(&b);
        assert_eq!(a.0, vec![True, True, True, False, Null, Null, Null]);
        let mut n = b.clone();
        n.not();
        assert_eq!(n.0, vec![False, True, Null, True, Null, True, Null]);
        assert_eq!(Mask(vec![False, True, Null, True]).selected(), vec![1, 3]);
    }
}
