//! SQL tokenizer.
//!
//! Keywords are case-insensitive; identifiers may be double-quoted (the
//! paper's queries write `FROM "snapshot_orderinfo"`); string literals are
//! single-quoted with `''` escaping.

use squery_common::{SqError, SqResult};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword (uppercased).
    Keyword(String),
    /// Bare identifier (case preserved).
    Ident(String),
    /// Double-quoted identifier (case preserved, may contain anything).
    QuotedIdent(String),
    /// String literal.
    StringLit(String),
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `.`.
    Dot,
    /// `*`.
    Star,
    /// `=`.
    Eq,
    /// `<>` or `!=`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    LtEq,
    /// `>`.
    Gt,
    /// `>=`.
    GtEq,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `;`.
    Semicolon,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Ident(i) => write!(f, "{i}"),
            Token::QuotedIdent(i) => write!(f, "\"{i}\""),
            Token::StringLit(s) => write!(f, "'{s}'"),
            Token::IntLit(i) => write!(f, "{i}"),
            Token::FloatLit(x) => write!(f, "{x}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Eq => write!(f, "="),
            Token::NotEq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Semicolon => write!(f, ";"),
        }
    }
}

// Aggregate function names (COUNT, SUM, …) are deliberately *not* reserved:
// the paper's Figure 4 queries project columns literally named `count` and
// `total`. The parser recognizes them contextually (identifier followed by a
// parenthesis).
const KEYWORDS: &[&str] = &[
    "EXPLAIN",
    "ANALYZE",
    "SELECT",
    "FROM",
    "WHERE",
    "AND",
    "OR",
    "NOT",
    "JOIN",
    "INNER",
    "USING",
    "ON",
    "GROUP",
    "BY",
    "ORDER",
    "ASC",
    "DESC",
    "LIMIT",
    "AS",
    "NULL",
    "TRUE",
    "FALSE",
    "IS",
    "IN",
    "HAVING",
    "LOCALTIMESTAMP",
    "DISTINCT",
    "BETWEEN",
    "LIKE",
    "CASE",
    "WHEN",
    "THEN",
    "ELSE",
    "END",
];

/// Tokenize `input` into a token list.
pub fn tokenize(input: &str) -> SqResult<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                // `--` line comment.
                if i + 1 < chars.len() && chars[i + 1] == '-' {
                    while i < chars.len() && chars[i] != '\n' {
                        i += 1;
                    }
                } else {
                    tokens.push(Token::Minus);
                    i += 1;
                }
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(SqError::Parse("unexpected '!'".into()));
                }
            }
            '<' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else if i + 1 < chars.len() && chars[i + 1] == '>' {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= chars.len() {
                        return Err(SqError::Parse("unterminated string literal".into()));
                    }
                    if chars[i] == '\'' {
                        // '' escapes a quote.
                        if i + 1 < chars.len() && chars[i + 1] == '\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(chars[i]);
                        i += 1;
                    }
                }
                tokens.push(Token::StringLit(s));
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= chars.len() {
                        return Err(SqError::Parse("unterminated quoted identifier".into()));
                    }
                    if chars[i] == '"' {
                        if i + 1 < chars.len() && chars[i + 1] == '"' {
                            s.push('"');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(chars[i]);
                        i += 1;
                    }
                }
                tokens.push(Token::QuotedIdent(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    let f = text
                        .parse::<f64>()
                        .map_err(|_| SqError::Parse(format!("bad float literal '{text}'")))?;
                    tokens.push(Token::FloatLit(f));
                } else {
                    let n = text
                        .parse::<i64>()
                        .map_err(|_| SqError::Parse(format!("bad int literal '{text}'")))?;
                    tokens.push(Token::IntLit(n));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    tokens.push(Token::Keyword(upper));
                } else {
                    tokens.push(Token::Ident(word));
                }
            }
            other => {
                return Err(SqError::Parse(format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_case_insensitive() {
        let t = tokenize("select From WHERE").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Keyword("FROM".into()),
                Token::Keyword("WHERE".into()),
            ]
        );
    }

    #[test]
    fn identifiers_preserve_case() {
        let t = tokenize("deliveryZone partitionKey").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("deliveryZone".into()),
                Token::Ident("partitionKey".into()),
            ]
        );
    }

    #[test]
    fn quoted_identifiers_and_strings() {
        let t = tokenize(r#""snapshot_orderinfo" 'VENDOR_ACCEPTED' 'it''s'"#).unwrap();
        assert_eq!(
            t,
            vec![
                Token::QuotedIdent("snapshot_orderinfo".into()),
                Token::StringLit("VENDOR_ACCEPTED".into()),
                Token::StringLit("it's".into()),
            ]
        );
    }

    #[test]
    fn numbers_int_and_float() {
        let t = tokenize("42 3.25 0.5").unwrap();
        assert_eq!(
            t,
            vec![
                Token::IntLit(42),
                Token::FloatLit(3.25),
                Token::FloatLit(0.5)
            ]
        );
    }

    #[test]
    fn operators_including_two_char() {
        let t = tokenize("= <> != < <= > >= + - * / %").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Eq,
                Token::NotEq,
                Token::NotEq,
                Token::Lt,
                Token::LtEq,
                Token::Gt,
                Token::GtEq,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Percent,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let t = tokenize("SELECT -- the projection\n 1").unwrap();
        assert_eq!(t, vec![Token::Keyword("SELECT".into()), Token::IntLit(1)]);
    }

    #[test]
    fn paper_query_1_tokenizes() {
        let sql = r#"SELECT COUNT(*), deliveryZone FROM "snapshot_orderinfo"
            JOIN "snapshot_orderstate" USING(partitionKey)
            WHERE (orderState='VENDOR_ACCEPTED' AND lateTimestamp<LOCALTIMESTAMP)
            GROUP BY deliveryZone;"#;
        let t = tokenize(sql).unwrap();
        assert!(t.contains(&Token::Keyword("USING".into())));
        assert!(t.contains(&Token::Keyword("LOCALTIMESTAMP".into())));
        assert!(t.contains(&Token::QuotedIdent("snapshot_orderstate".into())));
        assert_eq!(*t.last().unwrap(), Token::Semicolon);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("a # b").is_err());
    }

    #[test]
    fn dotted_qualified_reference() {
        let t = tokenize("o.partitionKey").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("o".into()),
                Token::Dot,
                Token::Ident("partitionKey".into()),
            ]
        );
    }
}
