//! Plan execution: scans → hash joins → filter → aggregation → projection →
//! HAVING → ORDER BY → LIMIT.
//!
//! Two drivers share one set of operators:
//!
//! * the **sequential** path (`parallelism.degree == 1`) materializes each
//!   scan whole and folds it — today's behavior, unchanged;
//! * the **parallel** path runs a morsel-style driver on scoped worker
//!   threads: workers claim partition slices (or row chunks of unsliceable
//!   scans) from an atomic cursor, run scan → join probe → filter → partial
//!   aggregation per slice, and the coordinator merges partial states in
//!   slice order. Because slice order is each table's canonical row order
//!   and all merges preserve it, both paths return row-for-row identical
//!   output; ORDER BY/LIMIT always run post-merge on the complete result
//!   (see DESIGN.md §5).

use crate::ast::AggregateFunc;
use crate::batch::ColumnarBatch;
use crate::catalog::{ExecContext, ExecTrace, TableSlices};
use crate::plan::{AggregateNode, JoinNode, PhysicalPlan};
use parking_lot::Mutex;
use squery_common::partition::FnvHasher;
use squery_common::trace::SpanGuard;
use squery_common::{SqError, SqResult, Value};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::Instant;

/// An open span + statistics slot for one plan node. `None` when the query
/// is untraced, so the instrumentation below is a single `Option` check.
pub(crate) struct NodeTimer<'a> {
    trace: &'a ExecTrace,
    key: String,
    pub(crate) guard: SpanGuard,
}

impl NodeTimer<'_> {
    /// Close the node's span and fold `rows`/`slices` plus the span's own
    /// duration into the node's statistics.
    pub(crate) fn close(self, rows: u64, slices: u64) {
        self.trace.close_node(&self.key, self.guard, rows, slices);
    }
}

/// Open a `kind` span for plan node `key` (labelled with the key), if the
/// query is traced.
pub(crate) fn start_node<'a>(
    ctx: &'a ExecContext,
    kind: &'static str,
    key: String,
) -> Option<NodeTimer<'a>> {
    ctx.trace.as_ref().map(|trace| {
        let mut guard = trace.span(kind);
        guard.label("node", &key);
        NodeTimer { trace, key, guard }
    })
}

/// Execute a plan, producing output rows matching `plan.output_schema`.
pub fn execute(plan: &PhysicalPlan, ctx: &ExecContext) -> SqResult<Vec<Vec<Value>>> {
    if ctx.vectorized {
        if let Some(result) = crate::vectorized::try_execute(plan, ctx) {
            return result;
        }
    }
    if ctx.parallelism.is_parallel() {
        execute_parallel(plan, ctx)
    } else {
        execute_sequential(plan, ctx)
    }
}

fn execute_sequential(plan: &PhysicalPlan, ctx: &ExecContext) -> SqResult<Vec<Vec<Value>>> {
    // --- scans + joins ----------------------------------------------------
    let timer = start_node(ctx, "scan", "scan0".into());
    let mut rows = plan.scans[0].table.scan(&plan.scans[0].hints, ctx)?;
    if let Some(t) = timer {
        t.close(rows.len() as u64, 0);
    }
    if let Some(c) = &ctx.rows_scanned {
        c.add(rows.len() as u64);
    }
    for (i, (scan, join)) in plan.scans[1..].iter().zip(plan.joins.iter()).enumerate() {
        let timer = start_node(ctx, "scan", format!("scan{}", i + 1));
        let right_rows = scan.table.scan(&scan.hints, ctx)?;
        if let Some(t) = timer {
            t.close(right_rows.len() as u64, 0);
        }
        if let Some(c) = &ctx.rows_scanned {
            c.add(right_rows.len() as u64);
        }
        let timer = start_node(ctx, "join", format!("join{i}"));
        rows = hash_join(rows, right_rows, join)?;
        if let Some(t) = timer {
            t.close(rows.len() as u64, 0);
        }
    }

    // --- filter -------------------------------------------------------------
    if let Some(filter) = &plan.filter {
        let timer = start_node(ctx, "filter", "filter".into());
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            if filter.matches(&row, ctx)? {
                kept.push(row);
            }
        }
        rows = kept;
        if let Some(t) = timer {
            t.close(rows.len() as u64, 0);
        }
    }

    // --- aggregate ----------------------------------------------------------
    if let Some(agg) = &plan.aggregate {
        let timer = start_node(ctx, "aggregate", "aggregate".into());
        rows = aggregate(rows, agg, ctx)?;
        if let Some(t) = timer {
            t.close(rows.len() as u64, 0);
        }
    }

    let projected = project_rows(plan, ctx, &rows)?;
    Ok(finish_output(plan, ctx, projected))
}

/// Project each row (plus HAVING and ORDER BY key evaluation on the same
/// source row) into `(order keys, output row)` pairs.
pub(crate) fn project_rows(
    plan: &PhysicalPlan,
    ctx: &ExecContext,
    rows: &[Vec<Value>],
) -> SqResult<Vec<(Vec<Value>, Vec<Value>)>> {
    let mut projected: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(rows.len());
    for row in rows {
        let mut out = Vec::with_capacity(plan.projections.len());
        for p in &plan.projections {
            out.push(p.expr.eval(row, ctx)?);
        }
        if let Some(h) = &plan.having {
            if !h.matches(row, ctx)? {
                continue;
            }
        }
        let mut keys = Vec::with_capacity(plan.order_by.len());
        for (k, _) in &plan.order_by {
            keys.push(k.eval(row, ctx)?);
        }
        projected.push((keys, out));
    }
    Ok(projected)
}

/// Sort + limit the merged projection, timing the `sort` node when the plan
/// orders.
pub(crate) fn finish_output(
    plan: &PhysicalPlan,
    ctx: &ExecContext,
    projected: Vec<(Vec<Value>, Vec<Value>)>,
) -> Vec<Vec<Value>> {
    let timer = if plan.order_by.is_empty() {
        None
    } else {
        start_node(ctx, "sort", "sort".into())
    };
    let out = sort_and_limit(plan, projected);
    if let Some(t) = timer {
        t.close(out.len() as u64, 0);
    }
    out
}

/// Sort (stable, so equal keys keep their input order) and apply LIMIT.
fn sort_and_limit(
    plan: &PhysicalPlan,
    mut projected: Vec<(Vec<Value>, Vec<Value>)>,
) -> Vec<Vec<Value>> {
    if !plan.order_by.is_empty() {
        projected.sort_by(|(a, _), (b, _)| {
            for (i, (_, desc)) in plan.order_by.iter().enumerate() {
                let ord = a[i].total_cmp(&b[i]);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }
    let mut out: Vec<Vec<Value>> = projected.into_iter().map(|(_, r)| r).collect();
    if let Some(limit) = plan.limit {
        out.truncate(limit as usize);
    }
    out
}

// ---------------------------------------------------------------------------
// Parallel driver
// ---------------------------------------------------------------------------

/// Run the plan with `ctx.parallelism.degree` scoped worker threads.
fn execute_parallel(plan: &PhysicalPlan, ctx: &ExecContext) -> SqResult<Vec<Vec<Value>>> {
    // Resolve every scan's slices up front: snapshot tables capture their
    // resolved ssids here, from the one pinned query context, so all workers
    // read the same committed version(s). With the cost model's build side
    // flipped (`build_left`, single-join plans only), the *right* scan
    // becomes the morsel base and the left scan feeds the hash build.
    let flipped = plan.joins.len() == 1 && plan.joins[0].build_left;
    let (base_scan, base_node) = if flipped {
        (&plan.scans[1], "scan1")
    } else {
        (&plan.scans[0], "scan0")
    };
    let base = base_scan.table.scan_partitions(&base_scan.hints, ctx)?;
    let mut join_tables = Vec::with_capacity(plan.joins.len());
    if flipped {
        let scan = &plan.scans[0];
        let slices = scan.table.scan_partitions(&scan.hints, ctx)?;
        let timer = start_node(ctx, "join_build", "join0".into());
        let (table, _, _) = build_join_table(&slices, &plan.joins[0].left_keys, ctx, "scan0")?;
        if let Some(t) = timer {
            t.close(0, 0);
        }
        join_tables.push(table);
    } else {
        for (i, (scan, join)) in plan.scans[1..].iter().zip(plan.joins.iter()).enumerate() {
            let slices = scan.table.scan_partitions(&scan.hints, ctx)?;
            let timer = start_node(ctx, "join_build", format!("join{i}"));
            let (table, _, _) =
                build_join_table(&slices, &join.right_keys, ctx, &format!("scan{}", i + 1))?;
            if let Some(t) = timer {
                t.close(0, 0);
            }
            join_tables.push(table);
        }
    }

    match &plan.aggregate {
        Some(node) => {
            // Per-worker partial aggregation; coordinator merges in slice
            // order so first-seen group order matches the sequential fold.
            let partials = parallel_scan(&base, ctx, base_node, |rows, _unit| {
                let joined = probe_and_filter(plan, &join_tables, ctx, rows)?;
                let mut partial = PartialAgg::new();
                accumulate(&joined, node, ctx, &mut partial)?;
                Ok(partial)
            })?;
            let timer = start_node(ctx, "aggregate", "aggregate".into());
            let mut merged = PartialAgg::new();
            for partial in partials {
                merged.merge(partial)?;
            }
            let rows = finish_groups(merged, node);
            if let Some(t) = timer {
                t.close(rows.len() as u64, 0);
            }
            let projected = project_rows(plan, ctx, &rows)?;
            Ok(finish_output(plan, ctx, projected))
        }
        None => {
            // Filter + projection run per slice; the coordinator only
            // concatenates, sorts (stable, post-merge), and limits.
            let chunks = parallel_scan(&base, ctx, base_node, |rows, _unit| {
                let joined = probe_and_filter(plan, &join_tables, ctx, rows)?;
                project_rows(plan, ctx, &joined)
            })?;
            let projected: Vec<(Vec<Value>, Vec<Value>)> = chunks.into_iter().flatten().collect();
            Ok(finish_output(plan, ctx, projected))
        }
    }
}

/// One claimable unit of base-scan work.
enum Unit {
    /// A table slice (usually one grid partition).
    Slice(u32),
    /// A row range of a whole-materialized scan (morsel chunking).
    Range(usize, usize),
}

/// Morsel driver: workers claim units from an atomic cursor, map each unit's
/// rows through `f`, and the results come back **in unit order** — the
/// ordering contract every deterministic merge above relies on.
///
/// Traced queries open one `slice` span per claimed unit, folding the slice's
/// scanned rows (and one claimed slice) into plan node `node`'s statistics.
pub(crate) fn parallel_scan<R: Send>(
    slices: &TableSlices,
    ctx: &ExecContext,
    node: &str,
    f: impl Fn(&[Vec<Value>], usize) -> SqResult<R> + Sync,
) -> SqResult<Vec<R>> {
    let dop = ctx.parallelism.degree;
    let (units, whole_rows): (Vec<Unit>, Option<&Vec<Vec<Value>>>) = match slices {
        TableSlices::Sliced(s) => ((0..s.slice_count()).map(Unit::Slice).collect(), None),
        TableSlices::Whole(rows) => {
            let n = rows.len();
            let chunk = ctx
                .parallelism
                .min_morsel_rows
                .max(n.div_ceil(dop * 4))
                .max(1);
            let mut units = Vec::new();
            let mut start = 0;
            while start < n {
                let end = (start + chunk).min(n);
                units.push(Unit::Range(start, end));
                start = end;
            }
            (units, Some(rows))
        }
    };
    let n_units = units.len();
    if n_units == 0 {
        return Ok(Vec::new());
    }
    let cursor = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let first_error: Mutex<Option<SqError>> = Mutex::new(None);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n_units).map(|_| None).collect());
    let workers = dop.min(n_units);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if failed.load(AtomicOrdering::Acquire) {
                    return;
                }
                let i = cursor.fetch_add(1, AtomicOrdering::Relaxed);
                if i >= n_units {
                    return;
                }
                let out = (|| -> SqResult<R> {
                    let timer = start_node(ctx, "slice", node.to_string());
                    let scanned;
                    let result = match units[i] {
                        Unit::Slice(s) => {
                            let TableSlices::Sliced(sl) = slices else {
                                unreachable!("slice units imply sliced scan")
                            };
                            let started = ctx.worker_scan_us.as_ref().map(|_| Instant::now());
                            let rows = sl.scan_slice(s)?;
                            if let (Some(h), Some(t0)) = (&ctx.worker_scan_us, started) {
                                h.record(t0.elapsed().as_micros() as u64);
                            }
                            if let Some(c) = &ctx.rows_scanned {
                                c.add(rows.len() as u64);
                            }
                            scanned = rows.len() as u64;
                            f(&rows, i)
                        }
                        Unit::Range(a, b) => {
                            let rows = &whole_rows.expect("range units imply whole rows")[a..b];
                            if let Some(c) = &ctx.rows_scanned {
                                c.add(rows.len() as u64);
                            }
                            scanned = rows.len() as u64;
                            f(rows, i)
                        }
                    };
                    if let Some(mut t) = timer {
                        t.guard.label("unit", i);
                        t.close(scanned, 1);
                    }
                    result
                })();
                match out {
                    Ok(r) => results.lock()[i] = Some(r),
                    Err(e) => {
                        failed.store(true, AtomicOrdering::Release);
                        let mut g = first_error.lock();
                        if g.is_none() {
                            *g = Some(e);
                        }
                        return;
                    }
                }
            });
        }
    });
    if let Some(e) = first_error.into_inner() {
        return Err(e);
    }
    Ok(results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every unit completed"))
        .collect())
}

/// The batch twin of [`parallel_scan`]: the same unit claiming, ordering,
/// error, and tracing contract, but each unit materializes as columnar
/// batches restricted to the `cols` schema columns — sliced scans go
/// through [`crate::catalog::slice_batches_cached`] (typed extraction
/// straight from storage, pruned columns never touched, memoized across
/// queries for immutable snapshot sources), whole scans chunk their
/// projected rows into `BATCH_ROWS`-sized batches.
pub(crate) fn parallel_scan_batches<R: Send>(
    slices: &TableSlices,
    ctx: &ExecContext,
    node: &str,
    cols: &[usize],
    f: impl Fn(&[Arc<ColumnarBatch>], usize) -> SqResult<R> + Sync,
) -> SqResult<Vec<R>> {
    let dop = ctx.parallelism.degree;
    let (units, whole_rows): (Vec<Unit>, Option<&Vec<Vec<Value>>>) = match slices {
        TableSlices::Sliced(s) => ((0..s.slice_count()).map(Unit::Slice).collect(), None),
        TableSlices::Whole(rows) => {
            let n = rows.len();
            let chunk = ctx
                .parallelism
                .min_morsel_rows
                .max(n.div_ceil(dop * 4))
                .max(1);
            let mut units = Vec::new();
            let mut start = 0;
            while start < n {
                let end = (start + chunk).min(n);
                units.push(Unit::Range(start, end));
                start = end;
            }
            (units, Some(rows))
        }
    };
    let n_units = units.len();
    if n_units == 0 {
        return Ok(Vec::new());
    }
    let cursor = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let first_error: Mutex<Option<SqError>> = Mutex::new(None);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n_units).map(|_| None).collect());
    let workers = dop.min(n_units);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if failed.load(AtomicOrdering::Acquire) {
                    return;
                }
                let i = cursor.fetch_add(1, AtomicOrdering::Relaxed);
                if i >= n_units {
                    return;
                }
                let out = (|| -> SqResult<R> {
                    let timer = start_node(ctx, "slice", node.to_string());
                    let scanned;
                    let result = match units[i] {
                        Unit::Slice(s) => {
                            let TableSlices::Sliced(sl) = slices else {
                                unreachable!("slice units imply sliced scan")
                            };
                            let started = ctx.worker_scan_us.as_ref().map(|_| Instant::now());
                            let batches = crate::catalog::slice_batches_cached(&**sl, s, cols)?;
                            if let (Some(h), Some(t0)) = (&ctx.worker_scan_us, started) {
                                h.record(t0.elapsed().as_micros() as u64);
                            }
                            let rows: u64 = batches.iter().map(|b| b.len() as u64).sum();
                            if let Some(c) = &ctx.rows_scanned {
                                c.add(rows);
                            }
                            scanned = rows;
                            f(&batches, i)
                        }
                        Unit::Range(a, b) => {
                            let rows = &whole_rows.expect("range units imply whole rows")[a..b];
                            if let Some(c) = &ctx.rows_scanned {
                                c.add(rows.len() as u64);
                            }
                            scanned = rows.len() as u64;
                            let batches: Vec<Arc<ColumnarBatch>> =
                                ColumnarBatch::from_rows_chunked_cols(rows, cols)
                                    .into_iter()
                                    .map(Arc::new)
                                    .collect();
                            f(&batches, i)
                        }
                    };
                    if let Some(mut t) = timer {
                        t.guard.label("unit", i);
                        t.close(scanned, 1);
                    }
                    result
                })();
                match out {
                    Ok(r) => results.lock()[i] = Some(r),
                    Err(e) => {
                        failed.store(true, AtomicOrdering::Release);
                        let mut g = first_error.lock();
                        if g.is_none() {
                            *g = Some(e);
                        }
                        return;
                    }
                }
            });
        }
    });
    if let Some(e) = first_error.into_inner() {
        return Err(e);
    }
    Ok(results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every unit completed"))
        .collect())
}

/// One shard of the in-progress join build: key → `(row seq, row)` matches.
type BuildShard = Mutex<HashMap<Vec<Value>, Vec<(u64, Vec<Value>)>>>;
/// `(key, global row sequence, row)` bucketed locally before shard insertion.
type BuildEntry = (Vec<Value>, u64, Vec<Value>);

/// A frozen, shard-partitioned join build table.
pub(crate) struct FrozenJoinTable {
    shards: Vec<HashMap<Vec<Value>, Vec<Vec<Value>>>>,
    mask: u64,
}

impl FrozenJoinTable {
    pub(crate) fn get(&self, key: &[Value]) -> Option<&Vec<Vec<Value>>> {
        self.shards[(shard_hash(key) & self.mask) as usize].get(key)
    }

    /// A single-shard table from an already-ordered build map (sequential
    /// vectorized execution builds in row order, so no seq-sort is needed).
    pub(crate) fn from_single(map: HashMap<Vec<Value>, Vec<Vec<Value>>>) -> FrozenJoinTable {
        FrozenJoinTable {
            shards: vec![map],
            mask: 0,
        }
    }
}

fn shard_hash(key: &[Value]) -> u64 {
    let mut h = FnvHasher::default();
    for v in key {
        v.hash(&mut h);
    }
    h.finish()
}

/// Build one join's hash table in parallel: workers insert into key-sharded
/// mutexed maps; after the scan barrier the shards are frozen and each key's
/// match list is ordered by global row sequence, so probe output order is
/// identical to the sequential single-threaded build. `keys` are the build
/// side's join-key column indexes (`right_keys` normally, `left_keys` when
/// the cost model flipped the build side).
pub(crate) fn build_join_table(
    slices: &TableSlices,
    keys: &[usize],
    ctx: &ExecContext,
    scan_key: &str,
) -> SqResult<(FrozenJoinTable, u64, u64)> {
    let shard_count = (ctx.parallelism.degree * 4).next_power_of_two();
    let mask = shard_count as u64 - 1;
    let shards: Vec<BuildShard> = (0..shard_count)
        .map(|_| Mutex::new(HashMap::new()))
        .collect();
    let unit_rows = parallel_scan(slices, ctx, scan_key, |rows, unit| {
        // Bucket locally first so each shard lock is taken at most once per
        // unit.
        let mut local: Vec<Vec<BuildEntry>> = vec![Vec::new(); shard_count];
        'rows: for (i, row) in rows.iter().enumerate() {
            let mut key = Vec::with_capacity(keys.len());
            for &k in keys {
                let v = row
                    .get(k)
                    .ok_or_else(|| SqError::Exec("join key out of range".into()))?;
                if v.is_null() {
                    continue 'rows;
                }
                key.push(v.clone());
            }
            let seq = ((unit as u64) << 32) | i as u64;
            let shard = (shard_hash(&key) & mask) as usize;
            local[shard].push((key, seq, row.clone()));
        }
        for (shard, entries) in local.into_iter().enumerate() {
            if entries.is_empty() {
                continue;
            }
            let mut guard = shards[shard].lock();
            for (key, seq, row) in entries {
                guard.entry(key).or_default().push((seq, row));
            }
        }
        Ok(rows.len() as u64)
    })?;
    let scanned: u64 = unit_rows.iter().sum();
    let units = unit_rows.len() as u64;
    let shards = shards
        .into_iter()
        .map(|m| {
            m.into_inner()
                .into_iter()
                .map(|(k, mut v)| {
                    v.sort_unstable_by_key(|(seq, _)| *seq);
                    (k, v.into_iter().map(|(_, r)| r).collect())
                })
                .collect()
        })
        .collect();
    Ok((FrozenJoinTable { shards, mask }, scanned, units))
}

/// Probe one slice's rows through every join table, then apply the filter.
fn probe_and_filter(
    plan: &PhysicalPlan,
    join_tables: &[FrozenJoinTable],
    ctx: &ExecContext,
    rows: &[Vec<Value>],
) -> SqResult<Vec<Vec<Value>>> {
    let mut current = if join_tables.is_empty() {
        rows.to_vec()
    } else {
        let mut current = probe_step(rows, &join_tables[0], &plan.joins[0])?;
        if let Some(t) = &ctx.trace {
            t.add("join0", current.len() as u64, 0, 0);
        }
        for (i, (table, join)) in join_tables[1..].iter().zip(&plan.joins[1..]).enumerate() {
            current = probe_step(&current, table, join)?;
            if let Some(t) = &ctx.trace {
                t.add(&format!("join{}", i + 1), current.len() as u64, 0, 0);
            }
        }
        current
    };
    if let Some(filter) = &plan.filter {
        let mut kept = Vec::with_capacity(current.len());
        for row in current {
            if filter.matches(&row, ctx)? {
                kept.push(row);
            }
        }
        current = kept;
        if let Some(t) = &ctx.trace {
            t.add("filter", current.len() as u64, 0, 0);
        }
    }
    Ok(current)
}

/// One probe pass; same semantics as [`hash_join`]'s probe (NULL keys never
/// match, `right_drop` columns dropped). `probe` holds the probe side's rows:
/// the left scan normally, the right scan when `join.build_left` flipped the
/// build side — output columns stay `[left…, kept right…]` either way, only
/// the row order becomes probe-major.
pub(crate) fn probe_step(
    probe: &[Vec<Value>],
    table: &FrozenJoinTable,
    join: &JoinNode,
) -> SqResult<Vec<Vec<Value>>> {
    let probe_keys = if join.build_left {
        &join.right_keys
    } else {
        &join.left_keys
    };
    let mut out = Vec::new();
    'probe: for prow in probe {
        let mut key = Vec::with_capacity(probe_keys.len());
        for &i in probe_keys {
            let v = prow
                .get(i)
                .ok_or_else(|| SqError::Exec("join key out of range".into()))?;
            if v.is_null() {
                continue 'probe;
            }
            key.push(v.clone());
        }
        if let Some(matches) = table.get(&key) {
            for mrow in matches {
                let mut combined;
                if join.build_left {
                    combined = mrow.clone();
                    for (i, v) in prow.iter().enumerate() {
                        if !join.right_drop.contains(&i) {
                            combined.push(v.clone());
                        }
                    }
                } else {
                    combined = prow.clone();
                    for (i, v) in mrow.iter().enumerate() {
                        if !join.right_drop.contains(&i) {
                            combined.push(v.clone());
                        }
                    }
                }
                out.push(combined);
            }
        }
    }
    Ok(out)
}

/// Inner hash join. NULL keys never match (SQL semantics).
///
/// With `join.build_left` (the cost model judged the left side smaller) the
/// hash table is built over the left rows and the right rows probe it;
/// output columns stay `[left…, kept right…]` but row order becomes
/// right-major.
fn hash_join(
    left: Vec<Vec<Value>>,
    right: Vec<Vec<Value>>,
    join: &JoinNode,
) -> SqResult<Vec<Vec<Value>>> {
    if join.build_left {
        let mut table: HashMap<Vec<Value>, Vec<&Vec<Value>>> = HashMap::with_capacity(left.len());
        'rows: for row in &left {
            let mut key = Vec::with_capacity(join.left_keys.len());
            for &i in &join.left_keys {
                let v = row
                    .get(i)
                    .ok_or_else(|| SqError::Exec("join key out of range".into()))?;
                if v.is_null() {
                    continue 'rows;
                }
                key.push(v.clone());
            }
            table.entry(key).or_default().push(row);
        }
        let mut out = Vec::new();
        'probe: for rrow in &right {
            let mut key = Vec::with_capacity(join.right_keys.len());
            for &i in &join.right_keys {
                let v = rrow
                    .get(i)
                    .ok_or_else(|| SqError::Exec("join key out of range".into()))?;
                if v.is_null() {
                    continue 'probe;
                }
                key.push(v.clone());
            }
            if let Some(matches) = table.get(&key) {
                for lrow in matches {
                    let mut combined = (*lrow).clone();
                    for (i, v) in rrow.iter().enumerate() {
                        if !join.right_drop.contains(&i) {
                            combined.push(v.clone());
                        }
                    }
                    out.push(combined);
                }
            }
        }
        return Ok(out);
    }
    // Build on the right side.
    let mut table: HashMap<Vec<Value>, Vec<&Vec<Value>>> = HashMap::with_capacity(right.len());
    'rows: for row in &right {
        let mut key = Vec::with_capacity(join.right_keys.len());
        for &i in &join.right_keys {
            let v = row
                .get(i)
                .ok_or_else(|| SqError::Exec("join key out of range".into()))?;
            if v.is_null() {
                continue 'rows;
            }
            key.push(v.clone());
        }
        table.entry(key).or_default().push(row);
    }
    let mut out = Vec::new();
    'probe: for lrow in &left {
        let mut key = Vec::with_capacity(join.left_keys.len());
        for &i in &join.left_keys {
            let v = lrow
                .get(i)
                .ok_or_else(|| SqError::Exec("join key out of range".into()))?;
            if v.is_null() {
                continue 'probe;
            }
            key.push(v.clone());
        }
        if let Some(matches) = table.get(&key) {
            for rrow in matches {
                let mut combined = lrow.clone();
                for (i, v) in rrow.iter().enumerate() {
                    if !join.right_drop.contains(&i) {
                        combined.push(v.clone());
                    }
                }
                out.push(combined);
            }
        }
    }
    Ok(out)
}

/// One aggregate accumulator.
pub(crate) enum Acc {
    Count(i64),
    Sum(Option<Value>),
    Avg { sum: f64, n: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Acc {
    pub(crate) fn new(func: AggregateFunc) -> Acc {
        match func {
            AggregateFunc::Count => Acc::Count(0),
            AggregateFunc::Sum => Acc::Sum(None),
            AggregateFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggregateFunc::Min => Acc::Min(None),
            AggregateFunc::Max => Acc::Max(None),
        }
    }

    /// Update with one input. `None` means COUNT(*) (count the row itself).
    pub(crate) fn update(&mut self, value: Option<&Value>) -> SqResult<()> {
        match self {
            Acc::Count(n) => match value {
                None => *n += 1,
                Some(v) if !v.is_null() => *n += 1,
                _ => {}
            },
            Acc::Sum(acc) => {
                let Some(v) = value else {
                    return Err(SqError::Exec("SUM requires an argument".into()));
                };
                if v.is_null() {
                    return Ok(());
                }
                let next = match (acc.as_ref(), v) {
                    (None, v) => numeric(v)?,
                    (Some(Value::Int(a)), Value::Int(b)) => Value::Int(a.wrapping_add(*b)),
                    (Some(cur), v) => {
                        let a = cur.as_f64().expect("accumulator is numeric");
                        let b = v.as_f64().ok_or_else(|| non_numeric("SUM", v))?;
                        Value::Float(a + b)
                    }
                };
                *acc = Some(next);
            }
            Acc::Avg { sum, n } => {
                let Some(v) = value else {
                    return Err(SqError::Exec("AVG requires an argument".into()));
                };
                if v.is_null() {
                    return Ok(());
                }
                *sum += v.as_f64().ok_or_else(|| non_numeric("AVG", v))?;
                *n += 1;
            }
            Acc::Min(acc) => {
                let Some(v) = value else {
                    return Err(SqError::Exec("MIN requires an argument".into()));
                };
                if v.is_null() {
                    return Ok(());
                }
                let replace = match acc.as_ref() {
                    None => true,
                    Some(cur) => v.sql_cmp(cur) == Some(Ordering::Less),
                };
                if replace {
                    *acc = Some(v.clone());
                }
            }
            Acc::Max(acc) => {
                let Some(v) = value else {
                    return Err(SqError::Exec("MAX requires an argument".into()));
                };
                if v.is_null() {
                    return Ok(());
                }
                let replace = match acc.as_ref() {
                    None => true,
                    Some(cur) => v.sql_cmp(cur) == Some(Ordering::Greater),
                };
                if replace {
                    *acc = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    /// Typed fast path for an `Int` column entry, mirroring
    /// [`Acc::update`]`(Some(&Value::Int(v)))` exactly. Callers must have
    /// skipped NULL entries already.
    pub(crate) fn update_i64(&mut self, v: i64) -> SqResult<()> {
        match self {
            Acc::Count(n) => *n += 1,
            Acc::Sum(acc) => {
                let next = match acc.as_ref() {
                    None => Value::Int(v),
                    Some(Value::Int(a)) => Value::Int(a.wrapping_add(v)),
                    Some(cur) => {
                        Value::Float(cur.as_f64().expect("accumulator is numeric") + v as f64)
                    }
                };
                *acc = Some(next);
            }
            Acc::Avg { sum, n } => {
                *sum += v as f64;
                *n += 1;
            }
            acc => acc.update(Some(&Value::Int(v)))?,
        }
        Ok(())
    }

    /// Typed fast path for a `Float` column entry, mirroring
    /// [`Acc::update`]`(Some(&Value::Float(v)))` exactly.
    pub(crate) fn update_f64(&mut self, v: f64) -> SqResult<()> {
        match self {
            Acc::Count(n) => *n += 1,
            Acc::Sum(acc) => {
                let next = match acc.as_ref() {
                    None => Value::Float(v),
                    Some(cur) => Value::Float(cur.as_f64().expect("accumulator is numeric") + v),
                };
                *acc = Some(next);
            }
            Acc::Avg { sum, n } => {
                *sum += v;
                *n += 1;
            }
            acc => acc.update(Some(&Value::Float(v)))?,
        }
        Ok(())
    }

    /// Typed fast path for a `Timestamp` column entry, mirroring
    /// [`Acc::update`]`(Some(&Value::Timestamp(v)))` exactly — including
    /// SUM rejecting a timestamp as its *first* input while accepting one
    /// into an already-numeric accumulator (the row engine's `as_f64`
    /// coercion).
    pub(crate) fn update_ts(&mut self, v: i64) -> SqResult<()> {
        match self {
            Acc::Count(n) => *n += 1,
            Acc::Sum(acc) => {
                let next = match acc.as_ref() {
                    None => return Err(non_numeric("SUM", &Value::Timestamp(v))),
                    Some(cur) => {
                        Value::Float(cur.as_f64().expect("accumulator is numeric") + v as f64)
                    }
                };
                *acc = Some(next);
            }
            Acc::Avg { sum, n } => {
                *sum += v as f64;
                *n += 1;
            }
            acc => acc.update(Some(&Value::Timestamp(v)))?,
        }
        Ok(())
    }

    /// Fold another partial accumulator of the same shape into this one.
    ///
    /// Merge order follows slice order, mirroring the row order the
    /// sequential fold sees, so type promotion (Int→Float SUM) and
    /// incomparable-type MIN/MAX tie-breaks resolve identically.
    pub(crate) fn merge(&mut self, other: Acc) -> SqResult<()> {
        match (self, other) {
            (Acc::Count(a), Acc::Count(b)) => *a += b,
            (Acc::Sum(a), Acc::Sum(b)) => {
                if let Some(v) = b {
                    let next = match a.take() {
                        None => v,
                        Some(Value::Int(x)) => match v {
                            Value::Int(y) => Value::Int(x.wrapping_add(y)),
                            other => Value::Float(
                                x as f64 + other.as_f64().expect("accumulator is numeric"),
                            ),
                        },
                        Some(cur) => {
                            let x = cur.as_f64().expect("accumulator is numeric");
                            let y = v.as_f64().expect("accumulator is numeric");
                            Value::Float(x + y)
                        }
                    };
                    *a = Some(next);
                }
            }
            (Acc::Avg { sum: s, n }, Acc::Avg { sum: os, n: on }) => {
                *s += os;
                *n += on;
            }
            (Acc::Min(a), Acc::Min(b)) => {
                if let Some(v) = b {
                    let replace = match a.as_ref() {
                        None => true,
                        Some(cur) => v.sql_cmp(cur) == Some(Ordering::Less),
                    };
                    if replace {
                        *a = Some(v);
                    }
                }
            }
            (Acc::Max(a), Acc::Max(b)) => {
                if let Some(v) = b {
                    let replace = match a.as_ref() {
                        None => true,
                        Some(cur) => v.sql_cmp(cur) == Some(Ordering::Greater),
                    };
                    if replace {
                        *a = Some(v);
                    }
                }
            }
            _ => {
                return Err(SqError::Exec(
                    "mismatched aggregate accumulators in merge".into(),
                ))
            }
        }
        Ok(())
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            Acc::Count(n) => Value::Int(n),
            Acc::Sum(v) => v.unwrap_or(Value::Null),
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

fn numeric(v: &Value) -> SqResult<Value> {
    match v {
        Value::Int(_) | Value::Float(_) => Ok(v.clone()),
        other => Err(non_numeric("SUM", other)),
    }
}

fn non_numeric(func: &str, v: &Value) -> SqError {
    SqError::Exec(format!("{func} over non-numeric {}", v.type_name()))
}

/// A partial (unfinished) aggregation state: per-group accumulators plus the
/// first-seen order of groups for stable output.
pub(crate) struct PartialAgg {
    pub(crate) groups: HashMap<Vec<Value>, Vec<Acc>>,
    pub(crate) order: Vec<Vec<Value>>,
}

impl PartialAgg {
    pub(crate) fn new() -> PartialAgg {
        PartialAgg {
            groups: HashMap::new(),
            order: Vec::new(),
        }
    }

    /// Fold another partial state into this one, preserving first-seen group
    /// order across the two (self's groups first, then other's new groups).
    pub(crate) fn merge(&mut self, mut other: PartialAgg) -> SqResult<()> {
        for key in other.order {
            let accs = other.groups.remove(&key).expect("group recorded");
            match self.groups.get_mut(&key) {
                Some(mine) => {
                    for (a, b) in mine.iter_mut().zip(accs) {
                        a.merge(b)?;
                    }
                }
                None => {
                    self.order.push(key.clone());
                    self.groups.insert(key, accs);
                }
            }
        }
        Ok(())
    }
}

/// Fold rows into the partial aggregation state.
pub(crate) fn accumulate(
    rows: &[Vec<Value>],
    node: &AggregateNode,
    ctx: &ExecContext,
    partial: &mut PartialAgg,
) -> SqResult<()> {
    for row in rows {
        let mut key = Vec::with_capacity(node.group_exprs.len());
        for g in &node.group_exprs {
            key.push(g.eval(row, ctx)?);
        }
        let accs = match partial.groups.get_mut(&key) {
            Some(a) => a,
            None => {
                partial.order.push(key.clone());
                partial
                    .groups
                    .entry(key.clone())
                    .or_insert_with(|| node.aggs.iter().map(|(f, _)| Acc::new(*f)).collect())
            }
        };
        for (acc, (_, arg)) in accs.iter_mut().zip(node.aggs.iter()) {
            match arg {
                None => acc.update(None)?,
                Some(expr) => {
                    let v = expr.eval(row, ctx)?;
                    acc.update(Some(&v))?;
                }
            }
        }
    }
    Ok(())
}

/// Finish accumulators into output rows `[group keys…, aggregate results…]`
/// in first-seen group order.
pub(crate) fn finish_groups(mut partial: PartialAgg, node: &AggregateNode) -> Vec<Vec<Value>> {
    // A global aggregate (no GROUP BY) over zero rows yields one row.
    if node.group_exprs.is_empty() && partial.groups.is_empty() {
        let accs: Vec<Acc> = node.aggs.iter().map(|(f, _)| Acc::new(*f)).collect();
        let row: Vec<Value> = accs.into_iter().map(Acc::finish).collect();
        return vec![row];
    }
    let mut out = Vec::with_capacity(partial.groups.len());
    for key in partial.order {
        let accs = partial.groups.remove(&key).expect("group recorded");
        let mut row = key;
        row.extend(accs.into_iter().map(Acc::finish));
        out.push(row);
    }
    out
}

/// Group rows and evaluate aggregates; output rows are
/// `[group keys…, aggregate results…]`.
fn aggregate(
    rows: Vec<Vec<Value>>,
    node: &AggregateNode,
    ctx: &ExecContext,
) -> SqResult<Vec<Vec<Value>>> {
    let mut partial = PartialAgg::new();
    accumulate(&rows, node, ctx, &mut partial)?;
    Ok(finish_groups(partial, node))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemCatalog, MemTable};
    use crate::parser::parse;
    use crate::plan::plan;
    use squery_common::config::Parallelism;
    use squery_common::schema::{schema, KEY_COLUMN};
    use squery_common::DataType;
    use std::sync::Arc;

    fn catalog() -> MemCatalog {
        let orders = schema(vec![
            (KEY_COLUMN, DataType::Any),
            ("total", DataType::Int),
            ("zone", DataType::Str),
        ]);
        let info = schema(vec![
            (KEY_COLUMN, DataType::Any),
            ("category", DataType::Str),
        ]);
        let orders_rows = vec![
            vec![Value::Int(1), Value::Int(10), Value::str("north")],
            vec![Value::Int(2), Value::Int(20), Value::str("north")],
            vec![Value::Int(3), Value::Int(30), Value::str("south")],
            vec![Value::Int(4), Value::Null, Value::str("south")],
        ];
        let info_rows = vec![
            vec![Value::Int(1), Value::str("food")],
            vec![Value::Int(2), Value::str("food")],
            vec![Value::Int(3), Value::str("pharma")],
            vec![Value::Int(9), Value::str("unmatched")],
        ];
        MemCatalog::new(vec![
            Arc::new(MemTable::new("orders", orders, orders_rows)),
            Arc::new(MemTable::new("info", info, info_rows)),
        ])
    }

    fn run(sql: &str) -> Vec<Vec<Value>> {
        let c = catalog();
        let p = plan(&parse(sql).unwrap(), &c).unwrap();
        execute(&p, &ExecContext::live_only(0)).unwrap()
    }

    #[test]
    fn select_star() {
        let rows = run("SELECT * FROM orders");
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].len(), 3);
    }

    #[test]
    fn filter_and_project() {
        let rows = run("SELECT total FROM orders WHERE zone = 'north'");
        assert_eq!(rows, vec![vec![Value::Int(10)], vec![Value::Int(20)]]);
    }

    #[test]
    fn null_rows_do_not_match_filters() {
        let rows = run("SELECT partitionKey FROM orders WHERE total > 0");
        assert_eq!(rows.len(), 3, "NULL total row filtered out");
    }

    #[test]
    fn using_join_combines_rows() {
        let mut rows =
            run("SELECT partitionKey, total, category FROM orders JOIN info USING(partitionKey)");
        rows.sort();
        assert_eq!(rows.len(), 3, "keys 1,2,3 match; 4 and 9 don't");
        assert_eq!(
            rows[0],
            vec![Value::Int(1), Value::Int(10), Value::str("food")]
        );
    }

    #[test]
    fn group_by_count_and_sum() {
        let mut rows = run("SELECT zone, COUNT(*), SUM(total) FROM orders GROUP BY zone");
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec![Value::str("north"), Value::Int(2), Value::Int(30)],
                vec![Value::str("south"), Value::Int(2), Value::Int(30)],
            ]
        );
    }

    #[test]
    fn count_column_skips_nulls() {
        let rows = run("SELECT COUNT(total), COUNT(*) FROM orders");
        assert_eq!(rows, vec![vec![Value::Int(3), Value::Int(4)]]);
    }

    #[test]
    fn avg_min_max() {
        let rows = run("SELECT AVG(total), MIN(total), MAX(total) FROM orders");
        assert_eq!(
            rows,
            vec![vec![Value::Float(20.0), Value::Int(10), Value::Int(30)]]
        );
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let rows = run("SELECT COUNT(*), SUM(total) FROM orders WHERE zone = 'nowhere'");
        assert_eq!(rows, vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn group_by_over_empty_input_is_empty() {
        let rows = run("SELECT zone, COUNT(*) FROM orders WHERE zone = 'nowhere' GROUP BY zone");
        assert!(rows.is_empty());
    }

    #[test]
    fn having_filters_groups() {
        let rows = run("SELECT zone, SUM(total) FROM orders GROUP BY zone HAVING SUM(total) > 25");
        assert_eq!(rows.len(), 2);
        let rows =
            run("SELECT zone, COUNT(total) FROM orders GROUP BY zone HAVING COUNT(total) > 1");
        assert_eq!(rows, vec![vec![Value::str("north"), Value::Int(2)]]);
    }

    #[test]
    fn order_by_and_limit() {
        let rows =
            run("SELECT total FROM orders WHERE total IS NOT NULL ORDER BY total DESC LIMIT 2");
        assert_eq!(rows, vec![vec![Value::Int(30)], vec![Value::Int(20)]]);
    }

    #[test]
    fn order_by_aggregate_alias() {
        let rows =
            run("SELECT zone, SUM(total) AS s FROM orders GROUP BY zone ORDER BY s DESC, zone");
        assert_eq!(rows.len(), 2);
        // Both sums are 30; tie broken by zone ascending.
        assert_eq!(rows[0][0], Value::str("north"));
    }

    #[test]
    fn arithmetic_in_projection() {
        let rows = run("SELECT total * 2 + 1 FROM orders WHERE partitionKey = 1");
        assert_eq!(rows, vec![vec![Value::Int(21)]]);
    }

    #[test]
    fn expression_over_aggregates() {
        let rows = run("SELECT SUM(total) / COUNT(total) FROM orders");
        assert_eq!(rows, vec![vec![Value::Int(20)]]);
    }

    #[test]
    fn join_on_equality() {
        let rows = run(
            "SELECT o.total FROM orders o JOIN info i ON o.partitionKey = i.partitionKey WHERE i.category = 'pharma'",
        );
        assert_eq!(rows, vec![vec![Value::Int(30)]]);
    }

    #[test]
    fn between_like_and_case_evaluate() {
        let rows = run("SELECT total FROM orders WHERE total BETWEEN 15 AND 25");
        assert_eq!(rows, vec![vec![Value::Int(20)]]);
        let rows = run("SELECT total FROM orders WHERE total NOT BETWEEN 15 AND 25 AND total IS NOT NULL ORDER BY total");
        assert_eq!(rows, vec![vec![Value::Int(10)], vec![Value::Int(30)]]);
        let rows = run("SELECT partitionKey FROM orders WHERE zone LIKE 'n%'");
        assert_eq!(rows.len(), 2);
        let rows = run("SELECT partitionKey FROM orders WHERE zone LIKE '_orth'");
        assert_eq!(rows.len(), 2);
        let rows = run(
            "SELECT CASE WHEN total >= 30 THEN 'high' WHEN total >= 20 THEN 'mid' ELSE 'low' END AS band              FROM orders WHERE total IS NOT NULL ORDER BY total",
        );
        assert_eq!(
            rows,
            vec![
                vec![Value::str("low")],
                vec![Value::str("mid")],
                vec![Value::str("high")],
            ]
        );
        // Simple CASE desugars to equality on the operand.
        let rows = run(
            "SELECT CASE zone WHEN 'north' THEN 1 ELSE 0 END FROM orders ORDER BY partitionKey",
        );
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(1)],
                vec![Value::Int(0)],
                vec![Value::Int(0)],
            ]
        );
    }

    #[test]
    fn scalar_functions_evaluate() {
        let rows = run("SELECT ABS(0 - total), UPPER(zone), LENGTH(zone), COALESCE(total, 0)                         FROM orders WHERE partitionKey = 1");
        assert_eq!(
            rows,
            vec![vec![
                Value::Int(10),
                Value::str("NORTH"),
                Value::Int(5),
                Value::Int(10),
            ]]
        );
        // COALESCE falls back past the NULL total of key 4.
        let rows = run("SELECT COALESCE(total, -1) FROM orders WHERE partitionKey = 4");
        assert_eq!(rows, vec![vec![Value::Int(-1)]]);
        // CASE inside an aggregate argument.
        let rows =
            run("SELECT SUM(CASE WHEN zone = 'north' THEN 1 ELSE 0 END) AS northers FROM orders");
        assert_eq!(rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn null_join_keys_never_match() {
        // Add a NULL-keyed row via a self-join trick: orders has no NULL keys,
        // so join totals (which include a NULL) on total = total instead.
        let c = catalog();
        let p = plan(
            &parse("SELECT o.zone FROM orders o JOIN orders p ON o.total = p.total").unwrap(),
            &c,
        )
        .unwrap();
        let rows = execute(&p, &ExecContext::live_only(0)).unwrap();
        // 3 non-null totals match themselves exactly once each.
        assert_eq!(rows.len(), 3);
    }

    /// A context that forces parallel execution with one-row morsels, so even
    /// the tiny test tables split into many units.
    fn parallel_ctx(dop: usize) -> ExecContext {
        ExecContext::live_only(0).with_parallelism(Parallelism {
            degree: dop,
            min_morsel_rows: 1,
        })
    }

    #[test]
    fn parallel_matches_sequential_row_for_row() {
        let queries = [
            "SELECT * FROM orders",
            "SELECT total FROM orders WHERE zone = 'north'",
            "SELECT partitionKey, total, category FROM orders JOIN info USING(partitionKey)",
            "SELECT zone, COUNT(*), SUM(total) FROM orders GROUP BY zone",
            "SELECT AVG(total), MIN(total), MAX(total) FROM orders",
            "SELECT COUNT(*), SUM(total) FROM orders WHERE zone = 'nowhere'",
            "SELECT zone, SUM(total) FROM orders GROUP BY zone HAVING SUM(total) > 25",
            "SELECT total FROM orders WHERE total IS NOT NULL ORDER BY total DESC LIMIT 2",
            "SELECT zone, SUM(total) AS s FROM orders GROUP BY zone ORDER BY s DESC, zone",
            "SELECT o.zone FROM orders o JOIN orders p ON o.total = p.total",
        ];
        let c = catalog();
        for sql in queries {
            let p = plan(&parse(sql).unwrap(), &c).unwrap();
            let sequential = execute(&p, &ExecContext::live_only(0)).unwrap();
            for dop in [2, 4, 8] {
                let parallel = execute(&p, &parallel_ctx(dop)).unwrap();
                assert_eq!(parallel, sequential, "dop {dop}: {sql}");
            }
        }
    }

    #[test]
    fn parallel_propagates_first_worker_error() {
        let c = catalog();
        // Division by a value that is zero for one row errors at eval time.
        let p = plan(
            &parse("SELECT 1 / (total - 10) FROM orders WHERE total IS NOT NULL").unwrap(),
            &c,
        )
        .unwrap();
        assert!(execute(&p, &ExecContext::live_only(0)).is_err());
        assert!(execute(&p, &parallel_ctx(4)).is_err());
    }

    #[test]
    fn parallel_sum_promotes_like_sequential() {
        // Mixed Int/Float SUM: the merged accumulator must promote to Float
        // exactly when the sequential fold does.
        let s = schema(vec![("v", DataType::Any)]);
        let rows = vec![
            vec![Value::Int(1)],
            vec![Value::Float(2.5)],
            vec![Value::Int(3)],
            vec![Value::Int(4)],
        ];
        let c = MemCatalog::new(vec![Arc::new(MemTable::new("t", s, rows))]);
        let p = plan(&parse("SELECT SUM(v) FROM t").unwrap(), &c).unwrap();
        let sequential = execute(&p, &ExecContext::live_only(0)).unwrap();
        assert_eq!(sequential, vec![vec![Value::Float(10.5)]]);
        for dop in [2, 4] {
            assert_eq!(execute(&p, &parallel_ctx(dop)).unwrap(), sequential);
        }
    }
}
