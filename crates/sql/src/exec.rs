//! Plan execution: scans → hash joins → filter → aggregation → projection →
//! HAVING → ORDER BY → LIMIT.

use crate::ast::AggregateFunc;
use crate::catalog::ExecContext;
use crate::plan::{AggregateNode, JoinNode, PhysicalPlan};
use squery_common::{SqError, SqResult, Value};
use std::cmp::Ordering;
use std::collections::HashMap;

/// Execute a plan, producing output rows matching `plan.output_schema`.
pub fn execute(plan: &PhysicalPlan, ctx: &ExecContext) -> SqResult<Vec<Vec<Value>>> {
    // --- scans + joins ----------------------------------------------------
    let mut rows = plan.scans[0].table.scan(&plan.scans[0].hints, ctx)?;
    if let Some(c) = &ctx.rows_scanned {
        c.add(rows.len() as u64);
    }
    for (scan, join) in plan.scans[1..].iter().zip(plan.joins.iter()) {
        let right_rows = scan.table.scan(&scan.hints, ctx)?;
        if let Some(c) = &ctx.rows_scanned {
            c.add(right_rows.len() as u64);
        }
        rows = hash_join(rows, right_rows, join)?;
    }

    // --- filter -------------------------------------------------------------
    if let Some(filter) = &plan.filter {
        let mut kept = Vec::with_capacity(rows.len());
        for row in rows {
            if filter.matches(&row, ctx)? {
                kept.push(row);
            }
        }
        rows = kept;
    }

    // --- aggregate ----------------------------------------------------------
    if let Some(agg) = &plan.aggregate {
        rows = aggregate(rows, agg, ctx)?;
    }

    // --- project (+ order keys computed on the same row) ---------------------
    let mut projected: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(rows.len());
    for row in &rows {
        let mut out = Vec::with_capacity(plan.projections.len());
        for p in &plan.projections {
            out.push(p.expr.eval(row, ctx)?);
        }
        if let Some(h) = &plan.having {
            if !h.matches(row, ctx)? {
                continue;
            }
        }
        let mut keys = Vec::with_capacity(plan.order_by.len());
        for (k, _) in &plan.order_by {
            keys.push(k.eval(row, ctx)?);
        }
        projected.push((keys, out));
    }

    // --- order + limit --------------------------------------------------------
    if !plan.order_by.is_empty() {
        projected.sort_by(|(a, _), (b, _)| {
            for (i, (_, desc)) in plan.order_by.iter().enumerate() {
                let ord = a[i].total_cmp(&b[i]);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }
    let mut out: Vec<Vec<Value>> = projected.into_iter().map(|(_, r)| r).collect();
    if let Some(limit) = plan.limit {
        out.truncate(limit as usize);
    }
    Ok(out)
}

/// Inner hash join. NULL keys never match (SQL semantics).
fn hash_join(
    left: Vec<Vec<Value>>,
    right: Vec<Vec<Value>>,
    join: &JoinNode,
) -> SqResult<Vec<Vec<Value>>> {
    // Build on the right side.
    let mut table: HashMap<Vec<Value>, Vec<&Vec<Value>>> = HashMap::with_capacity(right.len());
    'rows: for row in &right {
        let mut key = Vec::with_capacity(join.right_keys.len());
        for &i in &join.right_keys {
            let v = row
                .get(i)
                .ok_or_else(|| SqError::Exec("join key out of range".into()))?;
            if v.is_null() {
                continue 'rows;
            }
            key.push(v.clone());
        }
        table.entry(key).or_default().push(row);
    }
    let mut out = Vec::new();
    'probe: for lrow in &left {
        let mut key = Vec::with_capacity(join.left_keys.len());
        for &i in &join.left_keys {
            let v = lrow
                .get(i)
                .ok_or_else(|| SqError::Exec("join key out of range".into()))?;
            if v.is_null() {
                continue 'probe;
            }
            key.push(v.clone());
        }
        if let Some(matches) = table.get(&key) {
            for rrow in matches {
                let mut combined = lrow.clone();
                for (i, v) in rrow.iter().enumerate() {
                    if !join.right_drop.contains(&i) {
                        combined.push(v.clone());
                    }
                }
                out.push(combined);
            }
        }
    }
    Ok(out)
}

/// One aggregate accumulator.
enum Acc {
    Count(i64),
    Sum(Option<Value>),
    Avg { sum: f64, n: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Acc {
    fn new(func: AggregateFunc) -> Acc {
        match func {
            AggregateFunc::Count => Acc::Count(0),
            AggregateFunc::Sum => Acc::Sum(None),
            AggregateFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggregateFunc::Min => Acc::Min(None),
            AggregateFunc::Max => Acc::Max(None),
        }
    }

    /// Update with one input. `None` means COUNT(*) (count the row itself).
    fn update(&mut self, value: Option<&Value>) -> SqResult<()> {
        match self {
            Acc::Count(n) => match value {
                None => *n += 1,
                Some(v) if !v.is_null() => *n += 1,
                _ => {}
            },
            Acc::Sum(acc) => {
                let Some(v) = value else {
                    return Err(SqError::Exec("SUM requires an argument".into()));
                };
                if v.is_null() {
                    return Ok(());
                }
                let next = match (acc.as_ref(), v) {
                    (None, v) => numeric(v)?,
                    (Some(Value::Int(a)), Value::Int(b)) => Value::Int(a.wrapping_add(*b)),
                    (Some(cur), v) => {
                        let a = cur.as_f64().expect("accumulator is numeric");
                        let b = v.as_f64().ok_or_else(|| non_numeric("SUM", v))?;
                        Value::Float(a + b)
                    }
                };
                *acc = Some(next);
            }
            Acc::Avg { sum, n } => {
                let Some(v) = value else {
                    return Err(SqError::Exec("AVG requires an argument".into()));
                };
                if v.is_null() {
                    return Ok(());
                }
                *sum += v.as_f64().ok_or_else(|| non_numeric("AVG", v))?;
                *n += 1;
            }
            Acc::Min(acc) => {
                let Some(v) = value else {
                    return Err(SqError::Exec("MIN requires an argument".into()));
                };
                if v.is_null() {
                    return Ok(());
                }
                let replace = match acc.as_ref() {
                    None => true,
                    Some(cur) => v.sql_cmp(cur) == Some(Ordering::Less),
                };
                if replace {
                    *acc = Some(v.clone());
                }
            }
            Acc::Max(acc) => {
                let Some(v) = value else {
                    return Err(SqError::Exec("MAX requires an argument".into()));
                };
                if v.is_null() {
                    return Ok(());
                }
                let replace = match acc.as_ref() {
                    None => true,
                    Some(cur) => v.sql_cmp(cur) == Some(Ordering::Greater),
                };
                if replace {
                    *acc = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            Acc::Count(n) => Value::Int(n),
            Acc::Sum(v) => v.unwrap_or(Value::Null),
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

fn numeric(v: &Value) -> SqResult<Value> {
    match v {
        Value::Int(_) | Value::Float(_) => Ok(v.clone()),
        other => Err(non_numeric("SUM", other)),
    }
}

fn non_numeric(func: &str, v: &Value) -> SqError {
    SqError::Exec(format!("{func} over non-numeric {}", v.type_name()))
}

/// Group rows and evaluate aggregates; output rows are
/// `[group keys…, aggregate results…]`.
fn aggregate(
    rows: Vec<Vec<Value>>,
    node: &AggregateNode,
    ctx: &ExecContext,
) -> SqResult<Vec<Vec<Value>>> {
    let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
    // Stable output: remember first-seen order of groups.
    let mut order: Vec<Vec<Value>> = Vec::new();
    for row in &rows {
        let mut key = Vec::with_capacity(node.group_exprs.len());
        for g in &node.group_exprs {
            key.push(g.eval(row, ctx)?);
        }
        let accs = match groups.get_mut(&key) {
            Some(a) => a,
            None => {
                order.push(key.clone());
                groups
                    .entry(key.clone())
                    .or_insert_with(|| node.aggs.iter().map(|(f, _)| Acc::new(*f)).collect())
            }
        };
        for (acc, (_, arg)) in accs.iter_mut().zip(node.aggs.iter()) {
            match arg {
                None => acc.update(None)?,
                Some(expr) => {
                    let v = expr.eval(row, ctx)?;
                    acc.update(Some(&v))?;
                }
            }
        }
    }
    // A global aggregate (no GROUP BY) over zero rows yields one row.
    if node.group_exprs.is_empty() && groups.is_empty() {
        let accs: Vec<Acc> = node.aggs.iter().map(|(f, _)| Acc::new(*f)).collect();
        let row: Vec<Value> = accs.into_iter().map(Acc::finish).collect();
        return Ok(vec![row]);
    }
    let mut out = Vec::with_capacity(groups.len());
    for key in order {
        let accs = groups.remove(&key).expect("group recorded");
        let mut row = key;
        row.extend(accs.into_iter().map(Acc::finish));
        out.push(row);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemCatalog, MemTable};
    use crate::parser::parse;
    use crate::plan::plan;
    use squery_common::schema::{schema, KEY_COLUMN};
    use squery_common::DataType;
    use std::sync::Arc;

    fn catalog() -> MemCatalog {
        let orders = schema(vec![
            (KEY_COLUMN, DataType::Any),
            ("total", DataType::Int),
            ("zone", DataType::Str),
        ]);
        let info = schema(vec![
            (KEY_COLUMN, DataType::Any),
            ("category", DataType::Str),
        ]);
        let orders_rows = vec![
            vec![Value::Int(1), Value::Int(10), Value::str("north")],
            vec![Value::Int(2), Value::Int(20), Value::str("north")],
            vec![Value::Int(3), Value::Int(30), Value::str("south")],
            vec![Value::Int(4), Value::Null, Value::str("south")],
        ];
        let info_rows = vec![
            vec![Value::Int(1), Value::str("food")],
            vec![Value::Int(2), Value::str("food")],
            vec![Value::Int(3), Value::str("pharma")],
            vec![Value::Int(9), Value::str("unmatched")],
        ];
        MemCatalog::new(vec![
            Arc::new(MemTable::new("orders", orders, orders_rows)),
            Arc::new(MemTable::new("info", info, info_rows)),
        ])
    }

    fn run(sql: &str) -> Vec<Vec<Value>> {
        let c = catalog();
        let p = plan(&parse(sql).unwrap(), &c).unwrap();
        execute(&p, &ExecContext::live_only(0)).unwrap()
    }

    #[test]
    fn select_star() {
        let rows = run("SELECT * FROM orders");
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].len(), 3);
    }

    #[test]
    fn filter_and_project() {
        let rows = run("SELECT total FROM orders WHERE zone = 'north'");
        assert_eq!(rows, vec![vec![Value::Int(10)], vec![Value::Int(20)]]);
    }

    #[test]
    fn null_rows_do_not_match_filters() {
        let rows = run("SELECT partitionKey FROM orders WHERE total > 0");
        assert_eq!(rows.len(), 3, "NULL total row filtered out");
    }

    #[test]
    fn using_join_combines_rows() {
        let mut rows =
            run("SELECT partitionKey, total, category FROM orders JOIN info USING(partitionKey)");
        rows.sort();
        assert_eq!(rows.len(), 3, "keys 1,2,3 match; 4 and 9 don't");
        assert_eq!(
            rows[0],
            vec![Value::Int(1), Value::Int(10), Value::str("food")]
        );
    }

    #[test]
    fn group_by_count_and_sum() {
        let mut rows = run("SELECT zone, COUNT(*), SUM(total) FROM orders GROUP BY zone");
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec![Value::str("north"), Value::Int(2), Value::Int(30)],
                vec![Value::str("south"), Value::Int(2), Value::Int(30)],
            ]
        );
    }

    #[test]
    fn count_column_skips_nulls() {
        let rows = run("SELECT COUNT(total), COUNT(*) FROM orders");
        assert_eq!(rows, vec![vec![Value::Int(3), Value::Int(4)]]);
    }

    #[test]
    fn avg_min_max() {
        let rows = run("SELECT AVG(total), MIN(total), MAX(total) FROM orders");
        assert_eq!(
            rows,
            vec![vec![Value::Float(20.0), Value::Int(10), Value::Int(30)]]
        );
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let rows = run("SELECT COUNT(*), SUM(total) FROM orders WHERE zone = 'nowhere'");
        assert_eq!(rows, vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn group_by_over_empty_input_is_empty() {
        let rows = run("SELECT zone, COUNT(*) FROM orders WHERE zone = 'nowhere' GROUP BY zone");
        assert!(rows.is_empty());
    }

    #[test]
    fn having_filters_groups() {
        let rows = run("SELECT zone, SUM(total) FROM orders GROUP BY zone HAVING SUM(total) > 25");
        assert_eq!(rows.len(), 2);
        let rows =
            run("SELECT zone, COUNT(total) FROM orders GROUP BY zone HAVING COUNT(total) > 1");
        assert_eq!(rows, vec![vec![Value::str("north"), Value::Int(2)]]);
    }

    #[test]
    fn order_by_and_limit() {
        let rows =
            run("SELECT total FROM orders WHERE total IS NOT NULL ORDER BY total DESC LIMIT 2");
        assert_eq!(rows, vec![vec![Value::Int(30)], vec![Value::Int(20)]]);
    }

    #[test]
    fn order_by_aggregate_alias() {
        let rows =
            run("SELECT zone, SUM(total) AS s FROM orders GROUP BY zone ORDER BY s DESC, zone");
        assert_eq!(rows.len(), 2);
        // Both sums are 30; tie broken by zone ascending.
        assert_eq!(rows[0][0], Value::str("north"));
    }

    #[test]
    fn arithmetic_in_projection() {
        let rows = run("SELECT total * 2 + 1 FROM orders WHERE partitionKey = 1");
        assert_eq!(rows, vec![vec![Value::Int(21)]]);
    }

    #[test]
    fn expression_over_aggregates() {
        let rows = run("SELECT SUM(total) / COUNT(total) FROM orders");
        assert_eq!(rows, vec![vec![Value::Int(20)]]);
    }

    #[test]
    fn join_on_equality() {
        let rows = run(
            "SELECT o.total FROM orders o JOIN info i ON o.partitionKey = i.partitionKey WHERE i.category = 'pharma'",
        );
        assert_eq!(rows, vec![vec![Value::Int(30)]]);
    }

    #[test]
    fn between_like_and_case_evaluate() {
        let rows = run("SELECT total FROM orders WHERE total BETWEEN 15 AND 25");
        assert_eq!(rows, vec![vec![Value::Int(20)]]);
        let rows = run("SELECT total FROM orders WHERE total NOT BETWEEN 15 AND 25 AND total IS NOT NULL ORDER BY total");
        assert_eq!(rows, vec![vec![Value::Int(10)], vec![Value::Int(30)]]);
        let rows = run("SELECT partitionKey FROM orders WHERE zone LIKE 'n%'");
        assert_eq!(rows.len(), 2);
        let rows = run("SELECT partitionKey FROM orders WHERE zone LIKE '_orth'");
        assert_eq!(rows.len(), 2);
        let rows = run(
            "SELECT CASE WHEN total >= 30 THEN 'high' WHEN total >= 20 THEN 'mid' ELSE 'low' END AS band              FROM orders WHERE total IS NOT NULL ORDER BY total",
        );
        assert_eq!(
            rows,
            vec![
                vec![Value::str("low")],
                vec![Value::str("mid")],
                vec![Value::str("high")],
            ]
        );
        // Simple CASE desugars to equality on the operand.
        let rows = run(
            "SELECT CASE zone WHEN 'north' THEN 1 ELSE 0 END FROM orders ORDER BY partitionKey",
        );
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(1)],
                vec![Value::Int(0)],
                vec![Value::Int(0)],
            ]
        );
    }

    #[test]
    fn scalar_functions_evaluate() {
        let rows = run("SELECT ABS(0 - total), UPPER(zone), LENGTH(zone), COALESCE(total, 0)                         FROM orders WHERE partitionKey = 1");
        assert_eq!(
            rows,
            vec![vec![
                Value::Int(10),
                Value::str("NORTH"),
                Value::Int(5),
                Value::Int(10),
            ]]
        );
        // COALESCE falls back past the NULL total of key 4.
        let rows = run("SELECT COALESCE(total, -1) FROM orders WHERE partitionKey = 4");
        assert_eq!(rows, vec![vec![Value::Int(-1)]]);
        // CASE inside an aggregate argument.
        let rows =
            run("SELECT SUM(CASE WHEN zone = 'north' THEN 1 ELSE 0 END) AS northers FROM orders");
        assert_eq!(rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn null_join_keys_never_match() {
        // Add a NULL-keyed row via a self-join trick: orders has no NULL keys,
        // so join totals (which include a NULL) on total = total instead.
        let c = catalog();
        let p = plan(
            &parse("SELECT o.zone FROM orders o JOIN orders p ON o.total = p.total").unwrap(),
            &c,
        )
        .unwrap();
        let rows = execute(&p, &ExecContext::live_only(0)).unwrap();
        // 3 non-null totals match themselves exactly once each.
        assert_eq!(rows.len(), 3);
    }
}
