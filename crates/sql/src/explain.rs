//! `EXPLAIN` / `EXPLAIN ANALYZE` plan rendering.
//!
//! The physical plan is rendered as a tree, top-down in execution-output
//! order: Sort/Limit → Project → Having → Aggregate → Filter → join chain →
//! scans. Each node that the executor instruments carries a stable **node
//! key** (`scan0`, `join0`, `filter`, `aggregate`, `sort`) — the same keys
//! [`crate::catalog::ExecTrace`] accumulates statistics under, so `EXPLAIN
//! ANALYZE` annotation is a straight lookup.

use crate::catalog::{NodeStat, SsidMode};
use crate::plan::PhysicalPlan;
use std::collections::BTreeMap;

/// One rendered plan node.
struct Node {
    label: String,
    /// Statistics key, for nodes the executor instruments.
    key: Option<String>,
    children: Vec<Node>,
}

impl Node {
    fn new(label: String, key: Option<String>) -> Node {
        Node {
            label,
            key,
            children: Vec::new(),
        }
    }
}

/// Build the display tree for a plan.
fn build_tree(plan: &PhysicalPlan) -> Node {
    // Scans and joins form a left-deep chain: scans[0] ⨝ scans[1] ⨝ ….
    let mut current = scan_node(plan, 0);
    for (i, join) in plan.joins.iter().enumerate() {
        let mut label = format!("HashJoin (keys: {})", join.left_keys.len());
        // The cost model's decision: which side feeds the build table, and
        // the estimated row counts it compared (left, right).
        if let Some((l, r)) = join.build_est {
            let (side, est) = if join.build_left {
                ("left", l)
            } else {
                ("right", r)
            };
            label.push_str(&format!(" [build={side} est_rows={est}]"));
        }
        let mut node = Node::new(label, Some(format!("join{i}")));
        node.children.push(current);
        node.children.push(scan_node(plan, i + 1));
        current = node;
    }

    if let Some(f) = &plan.filter {
        let mut label = String::from("Filter");
        // A filter the batch kernels cover runs columnar (with per-batch
        // row fallback); compile with a zeroed clock — coverage does not
        // depend on the timestamp value.
        if crate::vectorized::compile_pred(f, 0).is_some() {
            label.push_str(" [vectorized]");
        }
        let mut node = Node::new(label, Some("filter".into()));
        node.children.push(current);
        current = node;
    }

    if let Some(agg) = &plan.aggregate {
        let mut label = format!(
            "Aggregate (groups: {}, aggs: {})",
            agg.group_exprs.len(),
            agg.aggs.len()
        );
        if crate::vectorized::agg_shape(agg).is_some() {
            label.push_str(" [vectorized]");
        }
        let mut node = Node::new(label, Some("aggregate".into()));
        node.children.push(current);
        current = node;
    }

    if plan.having.is_some() {
        let mut node = Node::new("Having".into(), None);
        node.children.push(current);
        current = node;
    }

    let names: Vec<&str> = plan.projections.iter().map(|p| p.name.as_str()).collect();
    let mut project = Node::new(format!("Project [{}]", names.join(", ")), None);
    project.children.push(current);
    current = project;

    if !plan.order_by.is_empty() {
        let label = match plan.limit {
            Some(l) => format!("Sort (keys: {}, limit: {l})", plan.order_by.len()),
            None => format!("Sort (keys: {})", plan.order_by.len()),
        };
        let mut node = Node::new(label, Some("sort".into()));
        node.children.push(current);
        current = node;
    } else if let Some(l) = plan.limit {
        let mut node = Node::new(format!("Limit {l}"), None);
        node.children.push(current);
        current = node;
    }

    current
}

fn scan_node(plan: &PhysicalPlan, i: usize) -> Node {
    let scan = &plan.scans[i];
    let mut label = format!("Scan {}", scan.table.name());
    match scan.hints.ssid {
        SsidMode::Latest => {}
        SsidMode::Exact(ssid) => label.push_str(&format!(" [ssid={ssid}]")),
        SsidMode::AllRetained => label.push_str(" [ssid=all]"),
    }
    if let Some(key) = &scan.hints.key_eq {
        label.push_str(&format!(" [point={key}]"));
    }
    if let Some(est) = scan.est_rows {
        label.push_str(&format!(" [est_rows={est}]"));
    }
    Node::new(label, Some(format!("scan{i}")))
}

/// Render the plan tree as `EXPLAIN` output lines.
pub fn render_plan(plan: &PhysicalPlan) -> Vec<String> {
    let tree = build_tree(plan);
    let mut out = Vec::new();
    render_node(&tree, "", "", &mut out, &mut |_| None);
    out
}

/// Render the plan tree annotated with measured per-node statistics
/// (`EXPLAIN ANALYZE` output lines). `staleness` carries per-scan-key
/// event-time staleness bounds for snapshot scans; nodes without an entry
/// render without the annotation.
pub fn render_plan_analyzed(
    plan: &PhysicalPlan,
    stats: &BTreeMap<String, NodeStat>,
    staleness: &BTreeMap<String, u64>,
) -> Vec<String> {
    let tree = build_tree(plan);
    let mut out = Vec::new();
    render_node(&tree, "", "", &mut out, &mut |key| {
        let s = stats.get(key).copied().unwrap_or_default();
        let mut note = format!(" (rows={} wall={}us", s.rows, s.wall_us);
        if s.slices > 0 {
            note.push_str(&format!(" slices={}", s.slices));
        }
        note.push(')');
        if let Some(st) = staleness.get(key) {
            note.push_str(&format!(" [staleness={st}us]"));
        }
        Some(note)
    });
    out
}

/// Recursive tree printer: `self_prefix` precedes this node's label,
/// `child_prefix` precedes its children's connectors.
fn render_node(
    node: &Node,
    self_prefix: &str,
    child_prefix: &str,
    out: &mut Vec<String>,
    annotate: &mut impl FnMut(&str) -> Option<String>,
) {
    let note = node
        .key
        .as_deref()
        .and_then(&mut *annotate)
        .unwrap_or_default();
    out.push(format!("{self_prefix}{}{note}", node.label));
    let n = node.children.len();
    for (i, child) in node.children.iter().enumerate() {
        let last = i == n - 1;
        let (connector, extend) = if last {
            ("└─ ", "   ")
        } else {
            ("├─ ", "│  ")
        };
        render_node(
            child,
            &format!("{child_prefix}{connector}"),
            &format!("{child_prefix}{extend}"),
            out,
            annotate,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemCatalog, MemTable};
    use crate::parser::parse;
    use crate::plan::plan;
    use squery_common::schema::{schema, KEY_COLUMN};
    use squery_common::DataType;
    use std::sync::Arc;

    fn catalog() -> MemCatalog {
        let orders = schema(vec![
            (KEY_COLUMN, DataType::Any),
            ("total", DataType::Int),
            ("zone", DataType::Str),
        ]);
        let info = schema(vec![
            (KEY_COLUMN, DataType::Any),
            ("category", DataType::Str),
        ]);
        MemCatalog::new(vec![
            Arc::new(MemTable::new("orders", orders, Vec::new())),
            Arc::new(MemTable::new("info", info, Vec::new())),
        ])
    }

    fn explain(sql: &str) -> Vec<String> {
        let c = catalog();
        let p = plan(&parse(sql).unwrap(), &c).unwrap();
        render_plan(&p)
    }

    #[test]
    fn simple_scan_renders_project_over_scan() {
        let lines = explain("SELECT total FROM orders");
        assert_eq!(lines, vec!["Project [total]", "└─ Scan orders"]);
    }

    #[test]
    fn full_query_renders_every_operator() {
        let lines = explain(
            "SELECT zone, COUNT(*) AS n FROM orders JOIN info USING(partitionKey) \
             WHERE total > 0 GROUP BY zone HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 5",
        );
        assert_eq!(
            lines,
            vec![
                "Sort (keys: 1, limit: 5)",
                "└─ Project [zone, n]",
                "   └─ Having",
                "      └─ Aggregate (groups: 1, aggs: 1) [vectorized]",
                "         └─ Filter [vectorized]",
                "            └─ HashJoin (keys: 1)",
                "               ├─ Scan orders",
                "               └─ Scan info",
            ]
        );
    }

    #[test]
    fn point_read_hint_is_shown() {
        let lines = explain("SELECT total FROM orders WHERE partitionKey = 7");
        assert!(
            lines.iter().any(|l| l.contains("Scan orders [point=7]")),
            "{lines:?}"
        );
    }

    #[test]
    fn limit_without_order_renders_limit_node() {
        let lines = explain("SELECT total FROM orders LIMIT 3");
        assert_eq!(
            lines,
            vec!["Limit 3", "└─ Project [total]", "   └─ Scan orders"]
        );
    }

    #[test]
    fn analyzed_rendering_annotates_known_keys() {
        let c = catalog();
        let p = plan(
            &parse("SELECT total FROM orders WHERE total > 0").unwrap(),
            &c,
        )
        .unwrap();
        let mut stats = BTreeMap::new();
        stats.insert(
            "scan0".to_string(),
            NodeStat {
                rows: 42,
                wall_us: 17,
                slices: 4,
            },
        );
        let mut staleness = BTreeMap::new();
        staleness.insert("scan0".to_string(), 2_500u64);
        let lines = render_plan_analyzed(&p, &stats, &staleness);
        assert!(
            lines
                .iter()
                .any(|l| l.contains("Scan orders (rows=42 wall=17us slices=4) [staleness=2500us]")),
            "{lines:?}"
        );
        // Un-measured instrumented nodes still render, with zero stats.
        assert!(
            lines
                .iter()
                .any(|l| l.contains("Filter [vectorized] (rows=0 wall=0us)")),
            "{lines:?}"
        );
    }

    #[test]
    fn uncovered_filter_renders_without_vectorized_tag() {
        // Scalar functions are outside the kernel subset: the row engine
        // runs the whole query, and EXPLAIN must not claim otherwise.
        let lines = explain("SELECT zone FROM orders WHERE LENGTH(zone) > 4");
        assert!(
            lines.iter().any(|l| l.trim_start() == "└─ Filter"),
            "{lines:?}"
        );
    }

    #[test]
    fn join_build_side_annotation_follows_cost_model() {
        let c = catalog();
        let mut p = plan(
            &parse("SELECT total FROM orders JOIN info USING(partitionKey)").unwrap(),
            &c,
        )
        .unwrap();
        // MemTables carry no estimates: no annotation.
        assert!(
            render_plan(&p)
                .iter()
                .any(|l| l.contains("HashJoin (keys: 1)") && !l.contains("build=")),
            "{:?}",
            render_plan(&p)
        );
        // With estimates the decision and the build side's estimate render.
        p.joins[0].build_est = Some((100, 7));
        p.joins[0].build_left = false;
        assert!(
            render_plan(&p)
                .iter()
                .any(|l| l.contains("HashJoin (keys: 1) [build=right est_rows=7]")),
            "{:?}",
            render_plan(&p)
        );
        p.joins[0].build_est = Some((3, 50));
        p.joins[0].build_left = true;
        assert!(
            render_plan(&p)
                .iter()
                .any(|l| l.contains("HashJoin (keys: 1) [build=left est_rows=3]")),
            "{:?}",
            render_plan(&p)
        );
    }
}
