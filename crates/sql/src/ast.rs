//! Abstract syntax tree for the supported SQL dialect.

use squery_common::Value;

/// A parsed top-level statement: a plain `SELECT`, or an `EXPLAIN` /
/// `EXPLAIN ANALYZE` wrapper around one.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A plain `SELECT` query.
    Select(Query),
    /// `EXPLAIN [ANALYZE] <select>` — render the physical plan; with
    /// `ANALYZE`, execute the query and annotate each node with measured
    /// rows, wall time, and claimed slices.
    Explain {
        /// Execute and profile (`EXPLAIN ANALYZE`) instead of plan-only.
        analyze: bool,
        /// The wrapped query.
        query: Query,
    },
}

/// A parsed `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// The first `FROM` table.
    pub from: TableRef,
    /// Joined tables, in order.
    pub joins: Vec<Join>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate (requires `GROUP BY` or aggregates).
    pub having: Option<Expr>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT` row count.
    pub limit: Option<u64>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `SELECT *`.
    Wildcard,
    /// An expression with an optional `AS` alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Output column name override.
        alias: Option<String>,
    },
}

/// A table reference with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name as written (unquoted form).
    pub name: String,
    /// `AS` alias; defaults to the table name during binding.
    pub alias: Option<String>,
}

/// A join clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// The joined table.
    pub table: TableRef,
    /// The join condition.
    pub condition: JoinCondition,
}

/// Join condition forms.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinCondition {
    /// `USING (col, …)` — equality on shared column names, output deduped.
    Using(Vec<String>),
    /// `ON <expr>` — the planner requires an equality conjunction.
    On(Expr),
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Sort expression.
    pub expr: Expr,
    /// Descending order?
    pub desc: bool,
}

/// Scalar and aggregate expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference, optionally qualified: `t.col` or `col`.
    Column {
        /// Table qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// A literal value.
    Literal(Value),
    /// `LOCALTIMESTAMP` — the query's start time (paper Query 1).
    LocalTimestamp,
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation (`NOT`, `-`).
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// Operand.
        operand: Box<Expr>,
        /// Negated form (`IS NOT NULL`).
        negated: bool,
    },
    /// `expr IN (v1, v2, …)` with literal list.
    InList {
        /// Tested expression.
        operand: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// Negated form (`NOT IN`).
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        operand: Box<Expr>,
        /// Inclusive lower bound.
        low: Box<Expr>,
        /// Inclusive upper bound.
        high: Box<Expr>,
        /// Negated form.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` (`%` any run, `_` any one character).
    Like {
        /// Tested expression.
        operand: Box<Expr>,
        /// Pattern expression (usually a string literal).
        pattern: Box<Expr>,
        /// Negated form.
        negated: bool,
    },
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`.
    Case {
        /// Simple-CASE operand (`CASE x WHEN 1 …`); `None` for searched CASE.
        operand: Option<Box<Expr>>,
        /// `(WHEN, THEN)` pairs, evaluated in order.
        branches: Vec<(Expr, Expr)>,
        /// `ELSE` result; defaults to NULL.
        else_result: Option<Box<Expr>>,
    },
    /// Scalar function call.
    Func {
        /// Which function.
        func: ScalarFunc,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Aggregate function call.
    Aggregate {
        /// Which aggregate.
        func: AggregateFunc,
        /// `COUNT(*)` has no argument.
        arg: Option<Box<Expr>>,
    },
}

/// Supported scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    /// Absolute value of a number.
    Abs,
    /// Uppercase a string.
    Upper,
    /// Lowercase a string.
    Lower,
    /// Character length of a string.
    Length,
    /// First non-NULL argument.
    Coalesce,
}

impl ScalarFunc {
    /// Resolve a (case-insensitive) function name.
    pub fn by_name(name: &str) -> Option<ScalarFunc> {
        match name.to_ascii_uppercase().as_str() {
            "ABS" => Some(ScalarFunc::Abs),
            "UPPER" => Some(ScalarFunc::Upper),
            "LOWER" => Some(ScalarFunc::Lower),
            "LENGTH" => Some(ScalarFunc::Length),
            "COALESCE" => Some(ScalarFunc::Coalesce),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ScalarFunc::Abs => "ABS",
            ScalarFunc::Upper => "UPPER",
            ScalarFunc::Lower => "LOWER",
            ScalarFunc::Length => "LENGTH",
            ScalarFunc::Coalesce => "COALESCE",
        }
    }
}

/// Binary operators, loosest-binding first in the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// Logical OR.
    Or,
    /// Logical AND.
    And,
    /// Equality.
    Eq,
    /// Inequality (`<>` or `!=`).
    NotEq,
    /// Less than.
    Lt,
    /// Less than or equal.
    LtEq,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    GtEq,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Modulo.
    Mod,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical NOT.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateFunc {
    /// Row / non-null count.
    Count,
    /// Numeric sum.
    Sum,
    /// Numeric average.
    Avg,
    /// Minimum by SQL ordering.
    Min,
    /// Maximum by SQL ordering.
    Max,
}

impl Expr {
    /// Convenience constructor for an unqualified column.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_string(),
        }
    }

    /// Convenience constructor for a literal.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    /// Whether this expression contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Column { .. } | Expr::Literal(_) | Expr::LocalTimestamp => false,
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Unary { operand, .. } | Expr::IsNull { operand, .. } => {
                operand.contains_aggregate()
            }
            Expr::InList { operand, list, .. } => {
                operand.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between {
                operand, low, high, ..
            } => {
                operand.contains_aggregate()
                    || low.contains_aggregate()
                    || high.contains_aggregate()
            }
            Expr::Like {
                operand, pattern, ..
            } => operand.contains_aggregate() || pattern.contains_aggregate(),
            Expr::Case {
                operand,
                branches,
                else_result,
            } => {
                operand.as_deref().is_some_and(Expr::contains_aggregate)
                    || branches
                        .iter()
                        .any(|(w, t)| w.contains_aggregate() || t.contains_aggregate())
                    || else_result.as_deref().is_some_and(Expr::contains_aggregate)
            }
            Expr::Func { args, .. } => args.iter().any(Expr::contains_aggregate),
        }
    }

    /// Visit every column reference in the expression.
    pub fn visit_columns(&self, f: &mut impl FnMut(&Option<String>, &str)) {
        match self {
            Expr::Column { qualifier, name } => f(qualifier, name),
            Expr::Literal(_) | Expr::LocalTimestamp => {}
            Expr::Binary { left, right, .. } => {
                left.visit_columns(f);
                right.visit_columns(f);
            }
            Expr::Unary { operand, .. } | Expr::IsNull { operand, .. } => operand.visit_columns(f),
            Expr::InList { operand, list, .. } => {
                operand.visit_columns(f);
                for e in list {
                    e.visit_columns(f);
                }
            }
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    a.visit_columns(f);
                }
            }
            Expr::Between {
                operand, low, high, ..
            } => {
                operand.visit_columns(f);
                low.visit_columns(f);
                high.visit_columns(f);
            }
            Expr::Like {
                operand, pattern, ..
            } => {
                operand.visit_columns(f);
                pattern.visit_columns(f);
            }
            Expr::Case {
                operand,
                branches,
                else_result,
            } => {
                if let Some(o) = operand {
                    o.visit_columns(f);
                }
                for (w, t) in branches {
                    w.visit_columns(f);
                    t.visit_columns(f);
                }
                if let Some(e) = else_result {
                    e.visit_columns(f);
                }
            }
            Expr::Func { args, .. } => {
                for a in args {
                    a.visit_columns(f);
                }
            }
        }
    }

    /// A display name for an unaliased projection of this expression.
    pub fn default_name(&self) -> String {
        match self {
            Expr::Column { name, .. } => name.clone(),
            Expr::Aggregate { func, arg } => {
                let f = match func {
                    AggregateFunc::Count => "COUNT",
                    AggregateFunc::Sum => "SUM",
                    AggregateFunc::Avg => "AVG",
                    AggregateFunc::Min => "MIN",
                    AggregateFunc::Max => "MAX",
                };
                match arg {
                    None => format!("{f}(*)"),
                    Some(a) => format!("{f}({})", a.default_name()),
                }
            }
            Expr::LocalTimestamp => "LOCALTIMESTAMP".into(),
            Expr::Literal(v) => v.to_string(),
            Expr::Func { func, args } => {
                let inner: Vec<String> = args.iter().map(Expr::default_name).collect();
                format!("{}({})", func.name(), inner.join(", "))
            }
            Expr::Case { .. } => "CASE".into(),
            _ => "expr".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_aggregate_walks_the_tree() {
        let agg = Expr::Aggregate {
            func: AggregateFunc::Count,
            arg: None,
        };
        assert!(agg.contains_aggregate());
        let nested = Expr::Binary {
            left: Box::new(Expr::lit(1i64)),
            op: BinaryOp::Add,
            right: Box::new(agg),
        };
        assert!(nested.contains_aggregate());
        assert!(!Expr::col("a").contains_aggregate());
        let inlist = Expr::InList {
            operand: Box::new(Expr::col("x")),
            list: vec![Expr::lit(1i64)],
            negated: false,
        };
        assert!(!inlist.contains_aggregate());
    }

    #[test]
    fn visit_columns_finds_all_references() {
        let e = Expr::Binary {
            left: Box::new(Expr::col("a")),
            op: BinaryOp::And,
            right: Box::new(Expr::IsNull {
                operand: Box::new(Expr::Column {
                    qualifier: Some("t".into()),
                    name: "b".into(),
                }),
                negated: true,
            }),
        };
        let mut seen = Vec::new();
        e.visit_columns(&mut |q, n| seen.push((q.clone(), n.to_string())));
        assert_eq!(
            seen,
            vec![
                (None, "a".to_string()),
                (Some("t".to_string()), "b".to_string())
            ]
        );
    }

    #[test]
    fn default_names_are_readable() {
        assert_eq!(Expr::col("zone").default_name(), "zone");
        let count_star = Expr::Aggregate {
            func: AggregateFunc::Count,
            arg: None,
        };
        assert_eq!(count_star.default_name(), "COUNT(*)");
        let sum = Expr::Aggregate {
            func: AggregateFunc::Sum,
            arg: Some(Box::new(Expr::col("total"))),
        };
        assert_eq!(sum.default_name(), "SUM(total)");
        assert_eq!(Expr::LocalTimestamp.default_name(), "LOCALTIMESTAMP");
    }
}
