//! System tables: virtual tables computed at scan time.
//!
//! A [`SysTable`] materializes its rows from a provider closure on every
//! scan, so `SELECT * FROM sys_metrics` always reflects the engine's state
//! *now*. Scan hints are deliberately ignored — sys tables are tiny, and the
//! executor re-applies the full `WHERE` clause after the scan, so skipping
//! the point-read/ssid fast paths costs nothing and keeps providers simple.

use crate::catalog::{ExecContext, ScanHints, Table};
use squery_common::schema::Schema;
use squery_common::{SqResult, Value};
use std::sync::Arc;

/// Row source for a [`SysTable`]: called once per scan.
pub type SysRowProvider = Arc<dyn Fn() -> Vec<Vec<Value>> + Send + Sync>;

/// A virtual table whose rows are computed by a closure at scan time.
pub struct SysTable {
    name: String,
    schema: Arc<Schema>,
    provider: SysRowProvider,
}

impl SysTable {
    /// Build a sys table. The provider must yield rows matching `schema`.
    pub fn new(name: impl Into<String>, schema: Arc<Schema>, provider: SysRowProvider) -> SysTable {
        SysTable {
            name: name.into(),
            schema,
            provider,
        }
    }
}

impl Table for SysTable {
    fn name(&self) -> &str {
        &self.name
    }

    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn scan(&self, _hints: &ScanHints, _ctx: &ExecContext) -> SqResult<Vec<Vec<Value>>> {
        let rows = (self.provider)();
        for r in &rows {
            if r.len() != self.schema.len() {
                return Err(squery_common::SqError::Exec(format!(
                    "sys table {} produced a row of arity {} (schema has {})",
                    self.name,
                    r.len(),
                    self.schema.len()
                )));
            }
        }
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ScanHints;
    use squery_common::schema::schema;
    use squery_common::DataType;
    use std::sync::atomic::{AtomicI64, Ordering};

    #[test]
    fn sys_table_recomputes_rows_on_every_scan() {
        let tick = Arc::new(AtomicI64::new(0));
        let t = {
            let tick = Arc::clone(&tick);
            SysTable::new(
                "sys_tick",
                schema(vec![("n", DataType::Int)]),
                Arc::new(move || vec![vec![Value::Int(tick.load(Ordering::SeqCst))]]),
            )
        };
        let ctx = ExecContext::live_only(0);
        assert_eq!(
            t.scan(&ScanHints::default(), &ctx).unwrap(),
            vec![vec![Value::Int(0)]]
        );
        tick.store(7, Ordering::SeqCst);
        assert_eq!(
            t.scan(&ScanHints::default(), &ctx).unwrap(),
            vec![vec![Value::Int(7)]]
        );
        assert_eq!(t.name(), "sys_tick");
        assert_eq!(t.schema().len(), 1);
    }

    #[test]
    fn sys_table_rejects_arity_mismatch() {
        let t = SysTable::new(
            "sys_bad",
            schema(vec![("a", DataType::Int), ("b", DataType::Int)]),
            Arc::new(|| vec![vec![Value::Int(1)]]),
        );
        assert!(t
            .scan(&ScanHints::default(), &ExecContext::live_only(0))
            .is_err());
    }
}
