//! Grid-backed tables: live-state maps and snapshot stores as SQL tables.
//!
//! The mapping follows the paper's §V-B exactly:
//!
//! * live table `<operator>`: columns `partitionKey` + the state object's
//!   fields (Table I);
//! * snapshot table `snapshot_<operator>`: columns `partitionKey`, `ssid` +
//!   the state object's fields (Table II, Figure 4).
//!
//! State objects that are not structs (or operators that registered no value
//! schema) expose a single `this` column holding the raw value, mirroring
//! how IMDG exposes non-decomposable values.

use crate::batch::{ColumnBuilder, ColumnarBatch, BATCH_ROWS};
use crate::catalog::{Catalog, ExecContext, ScanHints, ScanSlices, SsidMode, Table, TableSlices};
use parking_lot::RwLock;
use squery_common::schema::{Field, Schema, KEY_COLUMN, SSID_COLUMN};
use squery_common::{DataType, PartitionId, SnapshotId, SqError, SqResult, Value};
use squery_storage::grid::SNAPSHOT_TABLE_PREFIX;
use squery_storage::{Grid, IMap, SnapshotStore};
use std::collections::HashMap;
use std::sync::Arc;

/// Column name for undecomposed state objects.
pub const THIS_COLUMN: &str = "this";

fn value_fields(value_schema: Option<&Arc<Schema>>) -> Vec<Field> {
    match value_schema {
        Some(s) => s.fields().to_vec(),
        None => vec![Field {
            name: THIS_COLUMN.into(),
            dtype: DataType::Any,
        }],
    }
}

/// Explode a state object into the value columns of `value_schema`.
fn explode(value: &Value, value_schema: Option<&Arc<Schema>>) -> Vec<Value> {
    match value_schema {
        None => vec![value.clone()],
        Some(schema) => match value.as_struct() {
            Some(sv) => schema
                .fields()
                .iter()
                .map(|f| sv.field(&f.name).cloned().unwrap_or(Value::Null))
                .collect(),
            None if schema.len() == 1 => vec![value.clone()],
            None => vec![Value::Null; schema.len()],
        },
    }
}

/// Like [`explode`] but streaming and column-pruned: hands only the value
/// columns whose indices appear in `fields` (ascending indices into the
/// value schema) to `f`, in that order. Each handed value is exactly what
/// [`explode`] would produce at that position — typed columnar scans rely
/// on it.
fn explode_cols(
    value: &Value,
    value_schema: Option<&Arc<Schema>>,
    fields: &[usize],
    mut f: impl FnMut(&Value),
) {
    match value_schema {
        // Schemaless state exposes the single `this` column (index 0).
        None => {
            for _ in fields {
                f(value);
            }
        }
        Some(schema) => match value.as_struct() {
            Some(sv) => {
                for &i in fields {
                    f(sv.field(&schema.fields()[i].name).unwrap_or(&Value::Null));
                }
            }
            None if schema.len() == 1 => {
                for _ in fields {
                    f(value);
                }
            }
            None => {
                for _ in fields {
                    f(&Value::Null);
                }
            }
        },
    }
}

/// Builds [`ColumnarBatch`]es of at most [`BATCH_ROWS`] rows straight from
/// scanned cell values — the typed extraction at the scan boundary. Cells
/// arrive row-major (each row's columns in order); batches are cut on row
/// boundaries, so concatenating the batches' rows reproduces the row scan.
struct BatchWriter {
    builders: Vec<ColumnBuilder>,
    col: usize,
    rows: usize,
    out: Vec<ColumnarBatch>,
}

impl BatchWriter {
    fn new(width: usize) -> BatchWriter {
        BatchWriter {
            builders: (0..width).map(|_| ColumnBuilder::new()).collect(),
            col: 0,
            rows: 0,
            out: Vec::new(),
        }
    }

    fn push(&mut self, v: &Value) {
        self.builders[self.col].push(v);
        self.col += 1;
        if self.col == self.builders.len() {
            self.col = 0;
            self.rows += 1;
            if self.rows == BATCH_ROWS {
                self.flush();
            }
        }
    }

    fn flush(&mut self) {
        debug_assert_eq!(self.col, 0, "flush mid-row");
        if self.rows == 0 {
            return;
        }
        let width = self.builders.len();
        let done = std::mem::replace(
            &mut self.builders,
            (0..width).map(|_| ColumnBuilder::new()).collect(),
        );
        self.out.push(ColumnarBatch::new(
            done.into_iter().map(ColumnBuilder::finish).collect(),
        ));
        self.rows = 0;
    }

    fn finish(mut self) -> Vec<ColumnarBatch> {
        self.flush();
        self.out
    }
}

/// A live-state map as a table.
pub struct LiveTable {
    map: Arc<IMap>,
    schema: Arc<Schema>,
}

impl LiveTable {
    /// Wrap a live map, deriving the table schema from its value schema.
    pub fn new(map: Arc<IMap>) -> LiveTable {
        let mut fields = vec![Field {
            name: KEY_COLUMN.into(),
            dtype: DataType::Any,
        }];
        fields.extend(value_fields(map.value_schema().as_ref()));
        LiveTable {
            schema: Arc::new(Schema::from_fields(fields)),
            map,
        }
    }
}

impl Table for LiveTable {
    fn name(&self) -> &str {
        self.map.name()
    }

    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn scan(&self, hints: &ScanHints, _ctx: &ExecContext) -> SqResult<Vec<Vec<Value>>> {
        let value_schema = self.map.value_schema();
        let mut rows = Vec::new();
        if let Some(key) = &hints.key_eq {
            if let Some(v) = self.map.get(key) {
                let mut row = vec![key.clone()];
                row.extend(explode(&v, value_schema.as_ref()));
                rows.push(row);
            }
            return Ok(rows);
        }
        rows.reserve(self.map.len());
        self.map.for_each(|k, v| {
            let mut row = Vec::with_capacity(self.schema.len());
            row.push(k.clone());
            row.extend(explode(v, value_schema.as_ref()));
            rows.push(row);
        });
        Ok(rows)
    }

    fn scan_partitions(&self, hints: &ScanHints, ctx: &ExecContext) -> SqResult<TableSlices> {
        if hints.key_eq.is_some() {
            // Point reads touch one partition; nothing to parallelize.
            return Ok(TableSlices::Whole(self.scan(hints, ctx)?));
        }
        Ok(TableSlices::Sliced(Arc::new(LiveSlices {
            map: Arc::clone(&self.map),
            schema: Arc::clone(&self.schema),
            value_schema: self.map.value_schema(),
        })))
    }

    fn estimated_rows(&self, hints: &ScanHints) -> Option<u64> {
        if hints.key_eq.is_some() {
            // A point read returns at most one row.
            return Some(1);
        }
        // Write-path accounting: exact up to in-flight relaxed updates.
        Some(self.map.partition_stats().iter().map(|s| s.rows).sum())
    }
}

/// One slice per grid partition of a live map. Slice order is partition
/// order, matching [`IMap::for_each`], so slice concatenation equals the
/// sequential scan.
struct LiveSlices {
    map: Arc<IMap>,
    schema: Arc<Schema>,
    value_schema: Option<Arc<Schema>>,
}

impl ScanSlices for LiveSlices {
    fn slice_count(&self) -> u32 {
        self.map.partitioner().partition_count()
    }

    fn scan_slice(&self, slice: u32) -> SqResult<Vec<Vec<Value>>> {
        let mut rows = Vec::new();
        self.map.for_each_in_partition(PartitionId(slice), |k, v| {
            let mut row = Vec::with_capacity(self.schema.len());
            row.push(k.clone());
            row.extend(explode(v, self.value_schema.as_ref()));
            rows.push(row);
        });
        Ok(rows)
    }

    fn scan_slice_batches(&self, slice: u32, cols: &[usize]) -> SqResult<Vec<ColumnarBatch>> {
        // Typed extraction: cells go straight from the map into column
        // vectors, skipping the per-row Vec<Value> of `scan_slice` and
        // never touching pruned columns. Layout: column 0 is the key, the
        // rest are value-schema fields.
        let want_key = cols.first() == Some(&0);
        let fields: Vec<usize> = cols.iter().filter(|&&c| c > 0).map(|&c| c - 1).collect();
        let mut w = BatchWriter::new(cols.len());
        self.map.for_each_in_partition(PartitionId(slice), |k, v| {
            if want_key {
                w.push(k);
            }
            explode_cols(v, self.value_schema.as_ref(), &fields, |x| w.push(x));
        });
        Ok(w.finish())
    }
}

/// A snapshot store as a table.
pub struct SnapshotTable {
    store: Arc<SnapshotStore>,
    schema: Arc<Schema>,
}

impl SnapshotTable {
    /// Wrap a snapshot store, deriving the table schema from its value schema.
    pub fn new(store: Arc<SnapshotStore>) -> SnapshotTable {
        let mut fields = vec![
            Field {
                name: KEY_COLUMN.into(),
                dtype: DataType::Any,
            },
            Field {
                name: SSID_COLUMN.into(),
                dtype: DataType::Int,
            },
        ];
        fields.extend(value_fields(store.value_schema().as_ref()));
        SnapshotTable {
            schema: Arc::new(Schema::from_fields(fields)),
            store,
        }
    }

    fn resolve_ssids(&self, hints: &ScanHints, ctx: &ExecContext) -> SqResult<Vec<SnapshotId>> {
        match hints.ssid {
            SsidMode::Latest => match ctx.query_ssid {
                Some(s) => Ok(vec![s]),
                None => Err(SqError::NotFound(format!(
                    "no committed snapshot available for {}",
                    self.store.name()
                ))),
            },
            SsidMode::Exact(s) => {
                if ctx.retained_ssids.contains(&s) {
                    Ok(vec![s])
                } else {
                    Err(SqError::NotFound(format!(
                        "snapshot {s} of {} is not committed/retained",
                        self.store.name()
                    )))
                }
            }
            SsidMode::AllRetained => Ok(ctx.retained_ssids.clone()),
        }
    }
}

impl Table for SnapshotTable {
    fn name(&self) -> &str {
        self.store.name()
    }

    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn scan(&self, hints: &ScanHints, ctx: &ExecContext) -> SqResult<Vec<Vec<Value>>> {
        let ssids = self.resolve_ssids(hints, ctx)?;
        let value_schema = self.store.value_schema();
        let mut rows = Vec::new();
        if let Some(key) = &hints.key_eq {
            for ssid in &ssids {
                if let Some(v) = self.store.read_at(*ssid, key)? {
                    let mut row = vec![key.clone(), Value::Int(ssid.0 as i64)];
                    row.extend(explode(&v, value_schema.as_ref()));
                    rows.push(row);
                }
            }
            return Ok(rows);
        }
        for ssid in &ssids {
            let (entries, _) = self.store.scan_at(*ssid)?;
            rows.reserve(entries.len());
            for (k, v) in entries {
                let mut row = Vec::with_capacity(self.schema.len());
                row.push(k);
                row.push(Value::Int(ssid.0 as i64));
                row.extend(explode(&v, value_schema.as_ref()));
                rows.push(row);
            }
        }
        Ok(rows)
    }

    fn scan_partitions(&self, hints: &ScanHints, ctx: &ExecContext) -> SqResult<TableSlices> {
        if hints.key_eq.is_some() {
            return Ok(TableSlices::Whole(self.scan(hints, ctx)?));
        }
        // Snapshot ids resolve here, once, from the pinned query context —
        // every worker then scans the same committed version(s).
        let ssids = self.resolve_ssids(hints, ctx)?;
        Ok(TableSlices::Sliced(Arc::new(SnapshotSlices {
            store: Arc::clone(&self.store),
            schema: Arc::clone(&self.schema),
            value_schema: self.store.value_schema(),
            parts: self.store.partition_count(),
            ssids,
        })))
    }

    fn estimated_rows(&self, hints: &ScanHints) -> Option<u64> {
        if hints.key_eq.is_some() {
            return Some(1);
        }
        // Per-version stored-entry counts; for incremental snapshots this
        // is the delta size, an underestimate of the resolved view — cheap
        // and good enough for a planner annotation.
        let versions = self.store.version_stats();
        match hints.ssid {
            SsidMode::Exact(s) => versions
                .iter()
                .find(|(id, _, _)| *id == s)
                .map(|(_, entries, _)| *entries as u64),
            SsidMode::Latest => versions.last().map(|(_, entries, _)| *entries as u64),
            SsidMode::AllRetained => {
                Some(versions.iter().map(|(_, entries, _)| *entries as u64).sum())
            }
        }
    }

    fn is_snapshot(&self) -> bool {
        true
    }
}

/// Slices of a snapshot scan: ssid-major, partition-minor — the same
/// `(ssid, partition)` order the sequential `scan`/`scan_at` path walks, so
/// slice concatenation reproduces its row order exactly.
struct SnapshotSlices {
    store: Arc<SnapshotStore>,
    schema: Arc<Schema>,
    value_schema: Option<Arc<Schema>>,
    parts: u32,
    /// Pre-resolved committed ids (the query's pinned snapshot context).
    ssids: Vec<SnapshotId>,
}

impl ScanSlices for SnapshotSlices {
    fn slice_count(&self) -> u32 {
        self.ssids.len() as u32 * self.parts
    }

    fn scan_slice(&self, slice: u32) -> SqResult<Vec<Vec<Value>>> {
        let ssid = self.ssids[(slice / self.parts) as usize];
        let pid = PartitionId(slice % self.parts);
        let entries = self.store.scan_partition_at(ssid, pid)?;
        let mut rows = Vec::with_capacity(entries.len());
        for (k, v) in entries {
            let mut row = Vec::with_capacity(self.schema.len());
            row.push(k);
            row.push(Value::Int(ssid.0 as i64));
            row.extend(explode(&v, self.value_schema.as_ref()));
            rows.push(row);
        }
        Ok(rows)
    }

    fn scan_slice_batches(&self, slice: u32, cols: &[usize]) -> SqResult<Vec<ColumnarBatch>> {
        let ssid = self.ssids[(slice / self.parts) as usize];
        let pid = PartitionId(slice % self.parts);
        let ssid_cell = Value::Int(ssid.0 as i64);
        // Layout: column 0 is the key, column 1 the ssid, the rest are
        // value-schema fields.
        let want_key = cols.contains(&0);
        let want_ssid = cols.contains(&1);
        let fields: Vec<usize> = cols.iter().filter(|&&c| c > 1).map(|&c| c - 2).collect();
        let mut w = BatchWriter::new(cols.len());
        // Streams the resolved partition view in `scan_partition_at` order,
        // so batch rows concatenate to the (projected) row slice exactly.
        self.store.for_each_partition_at(ssid, pid, |k, v| {
            if want_key {
                w.push(k);
            }
            if want_ssid {
                w.push(&ssid_cell);
            }
            explode_cols(v, self.value_schema.as_ref(), &fields, |x| w.push(x));
        })?;
        Ok(w.finish())
    }

    // Committed snapshots are immutable, so derived executor structures are
    // safe to memoize in the store, keyed by this scan's pinned snapshot
    // ids. The store purges entries when ids are pruned/discarded/erased.
    fn cache_get(
        &self,
        kind: &str,
        slice: u32,
        cols: &[usize],
    ) -> Option<Arc<dyn std::any::Any + Send + Sync>> {
        self.store.exec_cache_get(kind, &self.ssids, slice, cols)
    }

    fn cache_put(
        &self,
        kind: &str,
        slice: u32,
        cols: &[usize],
        value: Arc<dyn std::any::Any + Send + Sync>,
    ) {
        self.store
            .exec_cache_put(kind, &self.ssids, slice, cols, value)
    }
}

/// Catalog over a storage grid, plus registered extra tables (`sys_*`).
pub struct GridCatalog {
    grid: Arc<Grid>,
    extras: RwLock<HashMap<String, Arc<dyn Table>>>,
}

impl GridCatalog {
    /// Wrap a grid.
    pub fn new(grid: Arc<Grid>) -> GridCatalog {
        GridCatalog {
            grid,
            extras: RwLock::new(HashMap::new()),
        }
    }

    /// The wrapped grid.
    pub fn grid(&self) -> &Arc<Grid> {
        &self.grid
    }

    /// Register an extra table (e.g. a [`crate::systables::SysTable`]).
    /// Extras shadow grid tables of the same name.
    pub fn register(&self, table: Arc<dyn Table>) {
        self.extras.write().insert(table.name().to_string(), table);
    }
}

impl Catalog for GridCatalog {
    fn table(&self, name: &str) -> Option<Arc<dyn Table>> {
        if let Some(t) = self.extras.read().get(name) {
            return Some(Arc::clone(t));
        }
        if let Some(op) = name.strip_prefix(SNAPSHOT_TABLE_PREFIX) {
            let store = self.grid.get_snapshot_store(op)?;
            Some(Arc::new(SnapshotTable::new(store)))
        } else {
            let map = self.grid.get_map(name)?;
            Some(Arc::new(LiveTable::new(map)))
        }
    }

    fn table_names(&self) -> Vec<String> {
        let mut names = self.grid.all_table_names();
        names.extend(self.extras.read().keys().cloned());
        names.sort();
        names.dedup();
        names
    }

    fn snapshot_context(&self) -> (Option<SnapshotId>, Vec<SnapshotId>) {
        // One atomic registry read: reading `latest_committed()` and
        // `committed_ssids()` separately would let a checkpoint commit in
        // between, handing joined scans of one query different ssids.
        self.grid.registry().query_context()
    }

    fn snapshot_staleness_us(&self, ssid: SnapshotId) -> Option<u64> {
        // Freshness stamps are persisted in the unix-epoch domain, so any
        // clock's epoch "now" yields a valid age — including for snapshots
        // sealed by a previous process and recovered from the WAL.
        let f = self.grid.registry().freshness(ssid)?;
        let now = self.grid.telemetry().clock().epoch_micros();
        if f.watermark_us > 0 {
            Some(now.saturating_sub(f.watermark_us))
        } else if f.sealed_at_us > 0 {
            Some(now.saturating_sub(f.sealed_at_us))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SqlEngine;
    use squery_common::schema::schema;
    use squery_common::PartitionId;

    fn avg_schema() -> Arc<Schema> {
        schema(vec![("count", DataType::Int), ("total", DataType::Int)])
    }

    /// The paper's Figure 4 fixture: live {1:(3,30), 2:(2,20)} and snapshots
    /// 8/9 with evolving counts.
    fn figure4_grid() -> Arc<Grid> {
        let grid = Grid::single_node();
        let live = grid.map("average");
        live.set_value_schema(avg_schema());
        live.put(
            Value::Int(1),
            Value::record(&avg_schema(), vec![Value::Int(3), Value::Int(30)]),
        );
        live.put(
            Value::Int(2),
            Value::record(&avg_schema(), vec![Value::Int(2), Value::Int(20)]),
        );
        let store = grid.snapshot_store("average");
        store.set_value_schema(avg_schema());
        let write = |ssid: u64, key: i64, count: i64, total: i64| {
            store.write_partition(
                SnapshotId(ssid),
                store.partition_of(&Value::Int(key)),
                vec![(
                    Value::Int(key),
                    Some(Value::record(
                        &avg_schema(),
                        vec![Value::Int(count), Value::Int(total)],
                    )),
                )],
                false,
            );
        };
        // Snapshot 8: key1=(2,30), key2=(1,5); snapshot 9: key1=(3,45), key2=(2,20).
        let s8 = grid.registry().begin().unwrap();
        write(8, 1, 2, 30);
        write(8, 2, 1, 5);
        assert_eq!(s8, SnapshotId(1));
        grid.registry().commit(s8).unwrap();
        // Use the registry's real ids: we wrote at 8/9 manually, so instead
        // rewrite with the registry-issued ids for consistency.
        grid
    }

    /// A grid with registry-consistent snapshot ids.
    fn grid_with_snapshots() -> Arc<Grid> {
        let grid = Grid::single_node();
        let store = grid.snapshot_store("average");
        store.set_value_schema(avg_schema());
        for (count, total) in [(2i64, 30i64), (3, 45)] {
            let ssid = grid.registry().begin().unwrap();
            store.write_partition(
                ssid,
                store.partition_of(&Value::Int(1)),
                vec![(
                    Value::Int(1),
                    Some(Value::record(
                        &avg_schema(),
                        vec![Value::Int(count), Value::Int(total)],
                    )),
                )],
                true,
            );
            grid.registry().commit(ssid).unwrap();
        }
        grid
    }

    #[test]
    fn live_table_schema_and_scan() {
        let grid = figure4_grid();
        let engine = SqlEngine::new(GridCatalog::new(grid));
        // The paper's Figure 4 live query.
        let rs = engine
            .query("SELECT count, total FROM average WHERE partitionKey = 1")
            .unwrap();
        assert_eq!(rs.rows(), &[vec![Value::Int(3), Value::Int(30)]]);
    }

    #[test]
    fn snapshot_table_defaults_to_latest_committed() {
        let grid = grid_with_snapshots();
        let engine = SqlEngine::new(GridCatalog::new(grid));
        let rs = engine
            .query("SELECT count, total FROM snapshot_average")
            .unwrap();
        assert_eq!(rs.rows(), &[vec![Value::Int(3), Value::Int(45)]]);
    }

    #[test]
    fn snapshot_table_exact_ssid() {
        let grid = grid_with_snapshots();
        let engine = SqlEngine::new(GridCatalog::new(grid));
        let rs = engine
            .query("SELECT count, total FROM snapshot_average WHERE ssid = 1")
            .unwrap();
        assert_eq!(rs.rows(), &[vec![Value::Int(2), Value::Int(30)]]);
        // Uncommitted / unknown ssid errors.
        assert!(engine
            .query("SELECT count FROM snapshot_average WHERE ssid = 99")
            .is_err());
    }

    #[test]
    fn snapshot_table_all_retained_versions() {
        let grid = grid_with_snapshots();
        let engine = SqlEngine::new(GridCatalog::new(grid));
        let rs = engine
            .query("SELECT ssid, count FROM snapshot_average WHERE ssid >= 0 ORDER BY ssid")
            .unwrap();
        assert_eq!(
            rs.rows(),
            &[
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(2), Value::Int(3)],
            ]
        );
    }

    #[test]
    fn no_committed_snapshot_is_an_error() {
        let grid = Grid::single_node();
        grid.snapshot_store("average");
        let engine = SqlEngine::new(GridCatalog::new(grid));
        let err = engine.query("SELECT * FROM snapshot_average").unwrap_err();
        assert!(matches!(err, SqError::NotFound(_)), "{err}");
    }

    #[test]
    fn key_point_read_on_snapshot_table() {
        let grid = grid_with_snapshots();
        let engine = SqlEngine::new(GridCatalog::new(grid));
        let rs = engine
            .query("SELECT total FROM snapshot_average WHERE partitionKey = 1")
            .unwrap();
        assert_eq!(rs.rows(), &[vec![Value::Int(45)]]);
        let rs = engine
            .query("SELECT total FROM snapshot_average WHERE partitionKey = 42")
            .unwrap();
        assert!(rs.is_empty());
    }

    #[test]
    fn unregistered_value_schema_exposes_this() {
        let grid = Grid::single_node();
        grid.map("raw").put(Value::Int(1), Value::str("blob"));
        let engine = SqlEngine::new(GridCatalog::new(grid));
        let rs = engine.query("SELECT this FROM raw").unwrap();
        assert_eq!(rs.rows(), &[vec![Value::str("blob")]]);
    }

    #[test]
    fn catalog_lists_grid_tables() {
        let grid = Grid::single_node();
        grid.map("orders");
        grid.snapshot_store("orders");
        let catalog = GridCatalog::new(grid);
        assert_eq!(catalog.table_names(), vec!["orders", "snapshot_orders"]);
        assert!(catalog.table("orders").is_some());
        assert!(catalog.table("snapshot_orders").is_some());
        assert!(catalog.table("snapshot_missing").is_none());
    }

    #[test]
    fn registered_sys_tables_resolve_and_list() {
        use crate::systables::SysTable;
        let grid = Grid::single_node();
        grid.map("orders");
        let catalog = GridCatalog::new(grid);
        catalog.register(Arc::new(SysTable::new(
            "sys_demo",
            schema(vec![("n", DataType::Int)]),
            Arc::new(|| vec![vec![Value::Int(41)], vec![Value::Int(42)]]),
        )));
        assert_eq!(catalog.table_names(), vec!["orders", "sys_demo"]);
        let engine = SqlEngine::new(catalog);
        let rs = engine.query("SELECT n FROM sys_demo WHERE n > 41").unwrap();
        assert_eq!(rs.rows(), &[vec![Value::Int(42)]]);
        // Self-join over the same sys table works like any other table.
        let rs = engine
            .query("SELECT a.n FROM sys_demo a JOIN sys_demo b ON a.n = b.n ORDER BY a.n")
            .unwrap();
        assert_eq!(rs.rows(), &[vec![Value::Int(41)], vec![Value::Int(42)]]);
    }

    #[test]
    fn slices_concatenate_to_the_sequential_scan() {
        let hints = ScanHints::default();
        // Live table: one slice per partition, partition order.
        let grid = figure4_grid();
        let live = LiveTable::new(grid.get_map("average").unwrap());
        let ctx = ExecContext::live_only(0);
        let seq = live.scan(&hints, &ctx).unwrap();
        let TableSlices::Sliced(slices) = live.scan_partitions(&hints, &ctx).unwrap() else {
            panic!("live table should slice");
        };
        let mut concat = Vec::new();
        for i in 0..slices.slice_count() {
            concat.extend(slices.scan_slice(i).unwrap());
        }
        assert_eq!(concat, seq);

        // Snapshot table with two retained versions: ssid-major slice order.
        let grid = grid_with_snapshots();
        let snap = SnapshotTable::new(grid.get_snapshot_store("average").unwrap());
        let (latest, retained) = grid.registry().query_context();
        let ctx = ExecContext {
            query_ssid: latest,
            retained_ssids: retained,
            ..ExecContext::live_only(0)
        };
        let all_hints = ScanHints {
            ssid: SsidMode::AllRetained,
            ..ScanHints::default()
        };
        for h in [&hints, &all_hints] {
            let seq = snap.scan(h, &ctx).unwrap();
            let TableSlices::Sliced(slices) = snap.scan_partitions(h, &ctx).unwrap() else {
                panic!("snapshot table should slice");
            };
            let mut concat = Vec::new();
            for i in 0..slices.slice_count() {
                concat.extend(slices.scan_slice(i).unwrap());
            }
            assert_eq!(concat, seq);
        }

        // Point reads collapse to a single whole slice.
        let point = ScanHints {
            key_eq: Some(Value::Int(1)),
            ..ScanHints::default()
        };
        assert!(matches!(
            snap.scan_partitions(&point, &ctx).unwrap(),
            TableSlices::Whole(_)
        ));
    }

    #[test]
    fn explain_carries_catalog_row_estimates() {
        let grid = figure4_grid();
        let engine = SqlEngine::new(GridCatalog::new(Arc::clone(&grid)));
        let rs = engine.query("EXPLAIN SELECT count FROM average").unwrap();
        assert!(
            rs.rows()
                .iter()
                .any(|r| r[0].to_string().contains("Scan average [est_rows=2]")),
            "{rs}"
        );
        // A key-equality hint collapses the estimate to a point read.
        let rs = engine
            .query("EXPLAIN SELECT count FROM average WHERE partitionKey = 1")
            .unwrap();
        assert!(
            rs.rows()
                .iter()
                .any(|r| r[0].to_string().contains("[point=1] [est_rows=1]")),
            "{rs}"
        );
        // Snapshot tables estimate from per-version stored entries.
        let grid = grid_with_snapshots();
        let engine = SqlEngine::new(GridCatalog::new(grid));
        let rs = engine
            .query("EXPLAIN SELECT count FROM snapshot_average WHERE ssid >= 0")
            .unwrap();
        assert!(
            rs.rows()
                .iter()
                .any(|r| r[0].to_string().contains("[ssid=all] [est_rows=2]")),
            "{rs}"
        );
    }

    #[test]
    fn explain_analyze_annotates_snapshot_scan_staleness() {
        use squery_storage::SnapshotFreshness;
        let grid = Grid::single_node();
        let store = grid.snapshot_store("average");
        store.set_value_schema(avg_schema());
        let ssid = grid.registry().begin().unwrap();
        store.write_partition(
            ssid,
            store.partition_of(&Value::Int(1)),
            vec![(
                Value::Int(1),
                Some(Value::record(
                    &avg_schema(),
                    vec![Value::Int(2), Value::Int(30)],
                )),
            )],
            true,
        );
        // A tiny positive watermark sits firmly behind the telemetry clock,
        // so the staleness bound is a positive microsecond count.
        grid.registry()
            .commit_with_freshness(
                ssid,
                SnapshotFreshness {
                    watermark_us: 1,
                    sealed_at_us: 2,
                },
            )
            .unwrap();
        let engine = SqlEngine::new(GridCatalog::new(Arc::clone(&grid)));
        let rs = engine
            .query("EXPLAIN ANALYZE SELECT count FROM snapshot_average")
            .unwrap();
        assert!(
            rs.rows()
                .iter()
                .any(|r| r[0].to_string().contains("Scan snapshot_average")
                    && r[0].to_string().contains("[staleness=")),
            "{rs}"
        );
        // Live scans never carry the annotation.
        grid.map("average").put(Value::Int(1), Value::Int(1));
        let rs = engine
            .query("EXPLAIN ANALYZE SELECT partitionKey FROM average")
            .unwrap();
        assert!(
            !rs.rows()
                .iter()
                .any(|r| r[0].to_string().contains("[staleness=")),
            "{rs}"
        );
    }

    #[test]
    fn point_read_on_partition_with_write_partition() {
        // write_partition with an explicit pid must agree with partition_of
        // for reads to find the key.
        let grid = grid_with_snapshots();
        let store = grid.get_snapshot_store("average").unwrap();
        assert_eq!(
            store
                .read_at(SnapshotId(2), &Value::Int(1))
                .unwrap()
                .map(|v| v.as_struct().unwrap().field("total").cloned().unwrap()),
            Some(Value::Int(45))
        );
        let _ = store.partition_of(&Value::Int(1));
        let _ = PartitionId(0);
    }
}
