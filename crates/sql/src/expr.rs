//! Bound expressions and their evaluator.
//!
//! The planner resolves every column reference to a row index, producing a
//! [`BoundExpr`]; evaluation is then a pure function of the row and the
//! per-query [`ExecContext`]. SQL three-valued logic applies: comparisons
//! with NULL yield NULL, `AND`/`OR` follow Kleene logic, and filters treat
//! anything but TRUE as a non-match.

use crate::ast::{BinaryOp, ScalarFunc, UnaryOp};
use crate::catalog::ExecContext;
use squery_common::{SqError, SqResult, Value};
use std::cmp::Ordering;

/// An expression with columns resolved to row indexes.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Value of the row's `i`-th column.
    Column(usize),
    /// A constant.
    Literal(Value),
    /// The query's start timestamp.
    LocalTimestamp,
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<BoundExpr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<BoundExpr>,
    },
    /// NULL test.
    IsNull {
        /// Operand.
        operand: Box<BoundExpr>,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// Membership test.
    InList {
        /// Tested expression.
        operand: Box<BoundExpr>,
        /// Candidates.
        list: Vec<BoundExpr>,
        /// `NOT IN`.
        negated: bool,
    },
    /// Range test (`BETWEEN` is inclusive on both ends).
    Between {
        /// Tested expression.
        operand: Box<BoundExpr>,
        /// Inclusive lower bound.
        low: Box<BoundExpr>,
        /// Inclusive upper bound.
        high: Box<BoundExpr>,
        /// `NOT BETWEEN`.
        negated: bool,
    },
    /// SQL `LIKE` pattern match.
    Like {
        /// Tested expression.
        operand: Box<BoundExpr>,
        /// Pattern (`%` any run, `_` any one char).
        pattern: Box<BoundExpr>,
        /// `NOT LIKE`.
        negated: bool,
    },
    /// `CASE` expression (searched form; simple form is desugared by the
    /// planner into equality tests).
    Case {
        /// `(condition, result)` pairs, first true condition wins.
        branches: Vec<(BoundExpr, BoundExpr)>,
        /// Fallback result (NULL when absent).
        else_result: Option<Box<BoundExpr>>,
    },
    /// Scalar function call.
    Func {
        /// Which function.
        func: ScalarFunc,
        /// Arguments.
        args: Vec<BoundExpr>,
    },
}

impl BoundExpr {
    /// Evaluate against one row.
    pub fn eval(&self, row: &[Value], ctx: &ExecContext) -> SqResult<Value> {
        match self {
            BoundExpr::Column(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| SqError::Exec(format!("row too short for column {i}"))),
            BoundExpr::Literal(v) => Ok(v.clone()),
            BoundExpr::LocalTimestamp => Ok(Value::Timestamp(ctx.now_micros)),
            BoundExpr::Binary { left, op, right } => {
                // Logical ops need lazy/Kleene handling.
                match op {
                    BinaryOp::And => {
                        let l = left.eval(row, ctx)?;
                        if l == Value::Bool(false) {
                            return Ok(Value::Bool(false));
                        }
                        let r = right.eval(row, ctx)?;
                        return kleene_and(&l, &r);
                    }
                    BinaryOp::Or => {
                        let l = left.eval(row, ctx)?;
                        if l == Value::Bool(true) {
                            return Ok(Value::Bool(true));
                        }
                        let r = right.eval(row, ctx)?;
                        return kleene_or(&l, &r);
                    }
                    _ => {}
                }
                let l = left.eval(row, ctx)?;
                let r = right.eval(row, ctx)?;
                eval_binary(*op, &l, &r)
            }
            BoundExpr::Unary { op, operand } => {
                let v = operand.eval(row, ctx)?;
                match op {
                    UnaryOp::Not => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Bool(b) => Ok(Value::Bool(!b)),
                        other => Err(SqError::Exec(format!(
                            "NOT expects a boolean, got {}",
                            other.type_name()
                        ))),
                    },
                    UnaryOp::Neg => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(SqError::Exec(format!(
                            "cannot negate {}",
                            other.type_name()
                        ))),
                    },
                }
            }
            BoundExpr::IsNull { operand, negated } => {
                let v = operand.eval(row, ctx)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            BoundExpr::InList {
                operand,
                list,
                negated,
            } => {
                let v = operand.eval(row, ctx)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let candidate = item.eval(row, ctx)?;
                    if candidate.is_null() {
                        saw_null = true;
                        continue;
                    }
                    if v.sql_cmp(&candidate) == Some(Ordering::Equal) {
                        return Ok(Value::Bool(!negated));
                    }
                }
                if saw_null {
                    // Unknown: the NULL candidate might have matched.
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            BoundExpr::Between {
                operand,
                low,
                high,
                negated,
            } => {
                let v = operand.eval(row, ctx)?;
                let lo = low.eval(row, ctx)?;
                let hi = high.eval(row, ctx)?;
                let ge_low = eval_binary(BinaryOp::GtEq, &v, &lo)?;
                let le_high = eval_binary(BinaryOp::LtEq, &v, &hi)?;
                let both = kleene_and(&ge_low, &le_high)?;
                match both {
                    Value::Null => Ok(Value::Null),
                    Value::Bool(b) => Ok(Value::Bool(b != *negated)),
                    other => Ok(other),
                }
            }
            BoundExpr::Like {
                operand,
                pattern,
                negated,
            } => {
                let v = operand.eval(row, ctx)?;
                let p = pattern.eval(row, ctx)?;
                if v.is_null() || p.is_null() {
                    return Ok(Value::Null);
                }
                let (Some(text), Some(pat)) = (v.as_str(), p.as_str()) else {
                    return Err(SqError::Exec(format!(
                        "LIKE expects strings, got {} and {}",
                        v.type_name(),
                        p.type_name()
                    )));
                };
                Ok(Value::Bool(like_match(text, pat) != *negated))
            }
            BoundExpr::Case {
                branches,
                else_result,
            } => {
                for (condition, result) in branches {
                    if condition.eval(row, ctx)? == Value::Bool(true) {
                        return result.eval(row, ctx);
                    }
                }
                match else_result {
                    Some(e) => e.eval(row, ctx),
                    None => Ok(Value::Null),
                }
            }
            BoundExpr::Func { func, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(a.eval(row, ctx)?);
                }
                eval_func(*func, &values)
            }
        }
    }

    /// Evaluate as a filter: true ⇔ the row passes.
    pub fn matches(&self, row: &[Value], ctx: &ExecContext) -> SqResult<bool> {
        Ok(self.eval(row, ctx)? == Value::Bool(true))
    }
}

fn kleene_and(l: &Value, r: &Value) -> SqResult<Value> {
    match (truth(l)?, truth(r)?) {
        (Some(false), _) | (_, Some(false)) => Ok(Value::Bool(false)),
        (Some(true), Some(true)) => Ok(Value::Bool(true)),
        _ => Ok(Value::Null),
    }
}

fn kleene_or(l: &Value, r: &Value) -> SqResult<Value> {
    match (truth(l)?, truth(r)?) {
        (Some(true), _) | (_, Some(true)) => Ok(Value::Bool(true)),
        (Some(false), Some(false)) => Ok(Value::Bool(false)),
        _ => Ok(Value::Null),
    }
}

fn truth(v: &Value) -> SqResult<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(*b)),
        other => Err(SqError::Exec(format!(
            "expected boolean, got {}",
            other.type_name()
        ))),
    }
}

fn eval_binary(op: BinaryOp, l: &Value, r: &Value) -> SqResult<Value> {
    use BinaryOp::*;
    match op {
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            let cmp = match l.sql_cmp(r) {
                Some(c) => c,
                None => {
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Null);
                    }
                    return Err(SqError::Exec(format!(
                        "cannot compare {} with {}",
                        l.type_name(),
                        r.type_name()
                    )));
                }
            };
            let result = match op {
                Eq => cmp == Ordering::Equal,
                NotEq => cmp != Ordering::Equal,
                Lt => cmp == Ordering::Less,
                LtEq => cmp != Ordering::Greater,
                Gt => cmp == Ordering::Greater,
                GtEq => cmp != Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(result))
        }
        Add | Sub | Mul | Div | Mod => arithmetic(op, l, r),
        And | Or => unreachable!("logical ops handled by the caller"),
    }
}

fn arithmetic(op: BinaryOp, l: &Value, r: &Value) -> SqResult<Value> {
    use BinaryOp::*;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Timestamp ± integer microseconds stays a timestamp.
    if let (Value::Timestamp(t), Value::Int(d)) = (l, r) {
        match op {
            Add => return Ok(Value::Timestamp(t + d)),
            Sub => return Ok(Value::Timestamp(t - d)),
            _ => {}
        }
    }
    if let (Value::Int(d), Value::Timestamp(t)) = (l, r) {
        if op == Add {
            return Ok(Value::Timestamp(t + d));
        }
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => match op {
            Add => Ok(Value::Int(a.wrapping_add(*b))),
            Sub => Ok(Value::Int(a.wrapping_sub(*b))),
            Mul => Ok(Value::Int(a.wrapping_mul(*b))),
            Div => {
                if *b == 0 {
                    Err(SqError::Exec("division by zero".into()))
                } else {
                    Ok(Value::Int(a / b))
                }
            }
            Mod => {
                if *b == 0 {
                    Err(SqError::Exec("modulo by zero".into()))
                } else {
                    Ok(Value::Int(a % b))
                }
            }
            _ => unreachable!(),
        },
        _ => {
            let a = l.as_f64().ok_or_else(|| type_err(op, l, r))?;
            let b = r.as_f64().ok_or_else(|| type_err(op, l, r))?;
            let out = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return Err(SqError::Exec("division by zero".into()));
                    }
                    a / b
                }
                Mod => a % b,
                _ => unreachable!(),
            };
            Ok(Value::Float(out))
        }
    }
}

fn type_err(op: BinaryOp, l: &Value, r: &Value) -> SqError {
    SqError::Exec(format!(
        "cannot apply {op:?} to {} and {}",
        l.type_name(),
        r.type_name()
    ))
}

/// SQL `LIKE` matching: `%` matches any run (including empty), `_` matches
/// exactly one character; everything else matches literally.
pub fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    // Iterative two-pointer with backtracking over the last `%`.
    let (mut ti, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_t): (Option<usize>, usize) = (None, 0);
    while ti < t.len() {
        // '%' is a wildcard even when the text character is itself '%', so
        // test it before the literal-equality branch.
        if pi < p.len() && p[pi] == '%' {
            star_p = Some(pi);
            star_t = ti;
            pi += 1;
        } else if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if let Some(sp) = star_p {
            // Backtrack: let the last % absorb one more character.
            pi = sp + 1;
            star_t += 1;
            ti = star_t;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

fn eval_func(func: ScalarFunc, args: &[Value]) -> SqResult<Value> {
    let arity_err = |expected: &str| {
        SqError::Exec(format!(
            "{} expects {expected} argument(s), got {}",
            func.name(),
            args.len()
        ))
    };
    match func {
        ScalarFunc::Abs => {
            let [v] = args else {
                return Err(arity_err("1"));
            };
            match v {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                other => Err(SqError::Exec(format!(
                    "ABS expects a number, got {}",
                    other.type_name()
                ))),
            }
        }
        ScalarFunc::Upper | ScalarFunc::Lower => {
            let [v] = args else {
                return Err(arity_err("1"));
            };
            match v {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::str(if func == ScalarFunc::Upper {
                    s.to_uppercase()
                } else {
                    s.to_lowercase()
                })),
                other => Err(SqError::Exec(format!(
                    "{} expects a string, got {}",
                    func.name(),
                    other.type_name()
                ))),
            }
        }
        ScalarFunc::Length => {
            let [v] = args else {
                return Err(arity_err("1"));
            };
            match v {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                other => Err(SqError::Exec(format!(
                    "LENGTH expects a string, got {}",
                    other.type_name()
                ))),
            }
        }
        ScalarFunc::Coalesce => {
            if args.is_empty() {
                return Err(arity_err("at least 1"));
            }
            Ok(args
                .iter()
                .find(|v| !v.is_null())
                .cloned()
                .unwrap_or(Value::Null))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExecContext {
        ExecContext::live_only(1_000_000)
    }

    fn lit(v: impl Into<Value>) -> BoundExpr {
        BoundExpr::Literal(v.into())
    }

    fn bin(l: BoundExpr, op: BinaryOp, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            left: Box::new(l),
            op,
            right: Box::new(r),
        }
    }

    #[test]
    fn column_reads_row() {
        let e = BoundExpr::Column(1);
        let row = vec![Value::Int(1), Value::str("x")];
        assert_eq!(e.eval(&row, &ctx()).unwrap(), Value::str("x"));
        assert!(BoundExpr::Column(5).eval(&row, &ctx()).is_err());
    }

    #[test]
    fn comparisons_with_coercion() {
        assert_eq!(
            bin(lit(2i64), BinaryOp::Lt, lit(2.5))
                .eval(&[], &ctx())
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            bin(lit("a"), BinaryOp::Eq, lit("a"))
                .eval(&[], &ctx())
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            bin(lit("a"), BinaryOp::GtEq, lit("b"))
                .eval(&[], &ctx())
                .unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn null_comparisons_are_unknown() {
        let e = bin(lit(Value::Null), BinaryOp::Eq, lit(1i64));
        assert_eq!(e.eval(&[], &ctx()).unwrap(), Value::Null);
        assert!(!e.matches(&[], &ctx()).unwrap(), "unknown is not a match");
    }

    #[test]
    fn incomparable_types_error() {
        let e = bin(lit("a"), BinaryOp::Lt, lit(1i64));
        assert!(e.eval(&[], &ctx()).is_err());
    }

    #[test]
    fn kleene_logic() {
        let t = lit(true);
        let f = lit(false);
        let n = lit(Value::Null);
        assert_eq!(
            bin(t.clone(), BinaryOp::And, n.clone())
                .eval(&[], &ctx())
                .unwrap(),
            Value::Null
        );
        assert_eq!(
            bin(f.clone(), BinaryOp::And, n.clone())
                .eval(&[], &ctx())
                .unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            bin(t.clone(), BinaryOp::Or, n.clone())
                .eval(&[], &ctx())
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            bin(n.clone(), BinaryOp::Or, f.clone())
                .eval(&[], &ctx())
                .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn short_circuit_skips_rhs_errors() {
        // RHS would error (NOT over an int), but AND short-circuits on false.
        let bad = BoundExpr::Unary {
            op: UnaryOp::Not,
            operand: Box::new(lit(3i64)),
        };
        let e = bin(lit(false), BinaryOp::And, bad);
        assert_eq!(e.eval(&[], &ctx()).unwrap(), Value::Bool(false));
    }

    #[test]
    fn arithmetic_int_and_float() {
        assert_eq!(
            bin(lit(7i64), BinaryOp::Add, lit(3i64))
                .eval(&[], &ctx())
                .unwrap(),
            Value::Int(10)
        );
        assert_eq!(
            bin(lit(7i64), BinaryOp::Div, lit(2i64))
                .eval(&[], &ctx())
                .unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            bin(lit(7.0), BinaryOp::Div, lit(2i64))
                .eval(&[], &ctx())
                .unwrap(),
            Value::Float(3.5)
        );
        assert_eq!(
            bin(lit(7i64), BinaryOp::Mod, lit(4i64))
                .eval(&[], &ctx())
                .unwrap(),
            Value::Int(3)
        );
        assert!(bin(lit(1i64), BinaryOp::Div, lit(0i64))
            .eval(&[], &ctx())
            .is_err());
        assert!(bin(lit(1.0), BinaryOp::Div, lit(0.0))
            .eval(&[], &ctx())
            .is_err());
    }

    #[test]
    fn timestamp_arithmetic() {
        let e = bin(lit(Value::Timestamp(100)), BinaryOp::Add, lit(50i64));
        assert_eq!(e.eval(&[], &ctx()).unwrap(), Value::Timestamp(150));
        let e = bin(lit(Value::Timestamp(100)), BinaryOp::Sub, lit(30i64));
        assert_eq!(e.eval(&[], &ctx()).unwrap(), Value::Timestamp(70));
    }

    #[test]
    fn localtimestamp_reads_context() {
        assert_eq!(
            BoundExpr::LocalTimestamp.eval(&[], &ctx()).unwrap(),
            Value::Timestamp(1_000_000)
        );
        // Paper Query 1 shape: lateTimestamp < LOCALTIMESTAMP.
        let e = bin(
            lit(Value::Timestamp(999)),
            BinaryOp::Lt,
            BoundExpr::LocalTimestamp,
        );
        assert_eq!(e.eval(&[], &ctx()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn is_null_tests() {
        let e = BoundExpr::IsNull {
            operand: Box::new(lit(Value::Null)),
            negated: false,
        };
        assert_eq!(e.eval(&[], &ctx()).unwrap(), Value::Bool(true));
        let e = BoundExpr::IsNull {
            operand: Box::new(lit(1i64)),
            negated: true,
        };
        assert_eq!(e.eval(&[], &ctx()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn in_list_semantics() {
        let make = |v: Value, negated| BoundExpr::InList {
            operand: Box::new(BoundExpr::Literal(v)),
            list: vec![lit(1i64), lit(2i64)],
            negated,
        };
        assert_eq!(
            make(Value::Int(2), false).eval(&[], &ctx()).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            make(Value::Int(3), false).eval(&[], &ctx()).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            make(Value::Int(3), true).eval(&[], &ctx()).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            make(Value::Null, false).eval(&[], &ctx()).unwrap(),
            Value::Null
        );
        // NULL in the list makes a non-match unknown.
        let e = BoundExpr::InList {
            operand: Box::new(lit(3i64)),
            list: vec![lit(1i64), lit(Value::Null)],
            negated: false,
        };
        assert_eq!(e.eval(&[], &ctx()).unwrap(), Value::Null);
    }

    #[test]
    fn like_matcher_semantics() {
        assert!(like_match("hello", "hello"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%o"));
        assert!(like_match("hello", "%ell%"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("hello", "%"));
        assert!(like_match("", "%"));
        assert!(like_match("abc", "a%b%c"));
        assert!(like_match("axbyc", "a%b%c"));
        assert!(!like_match("hello", "h"));
        assert!(!like_match("hello", "hello_"));
        assert!(!like_match("", "_"));
        assert!(!like_match("abc", "a_c_"));
        // Backtracking case: % must be able to absorb more.
        assert!(like_match("aab", "%ab"));
        assert!(like_match("mississippi", "%iss%ippi"));
        assert!(!like_match("mississippi", "%isz%ippi"));
    }

    #[test]
    fn between_is_inclusive_and_three_valued() {
        let between = |v: Value, neg: bool| BoundExpr::Between {
            operand: Box::new(BoundExpr::Literal(v)),
            low: Box::new(lit(1i64)),
            high: Box::new(lit(10i64)),
            negated: neg,
        };
        assert_eq!(
            between(Value::Int(1), false).eval(&[], &ctx()).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            between(Value::Int(10), false).eval(&[], &ctx()).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            between(Value::Int(11), false).eval(&[], &ctx()).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            between(Value::Int(11), true).eval(&[], &ctx()).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            between(Value::Null, false).eval(&[], &ctx()).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn coalesce_and_funcs() {
        let f = BoundExpr::Func {
            func: ScalarFunc::Coalesce,
            args: vec![lit(Value::Null), lit(Value::Null), lit(7i64), lit(9i64)],
        };
        assert_eq!(f.eval(&[], &ctx()).unwrap(), Value::Int(7));
        let f = BoundExpr::Func {
            func: ScalarFunc::Abs,
            args: vec![lit(-5i64)],
        };
        assert_eq!(f.eval(&[], &ctx()).unwrap(), Value::Int(5));
        let f = BoundExpr::Func {
            func: ScalarFunc::Abs,
            args: vec![lit("x")],
        };
        assert!(f.eval(&[], &ctx()).is_err());
        let f = BoundExpr::Func {
            func: ScalarFunc::Length,
            args: vec![lit("héllo")],
        };
        assert_eq!(
            f.eval(&[], &ctx()).unwrap(),
            Value::Int(5),
            "chars not bytes"
        );
    }

    #[test]
    fn not_and_negation() {
        let e = BoundExpr::Unary {
            op: UnaryOp::Not,
            operand: Box::new(lit(true)),
        };
        assert_eq!(e.eval(&[], &ctx()).unwrap(), Value::Bool(false));
        let e = BoundExpr::Unary {
            op: UnaryOp::Neg,
            operand: Box::new(lit(5i64)),
        };
        assert_eq!(e.eval(&[], &ctx()).unwrap(), Value::Int(-5));
        let e = BoundExpr::Unary {
            op: UnaryOp::Neg,
            operand: Box::new(lit("x")),
        };
        assert!(e.eval(&[], &ctx()).is_err());
    }
}
