//! The vectorized (columnar) executor.
//!
//! Plans whose shape the batch kernels cover run here instead of the row
//! engine: scans materialize as [`ColumnarBatch`]es (typed column vectors
//! built at the scan boundary), the `WHERE` clause compiles once per query
//! into a [`VecPred`] kernel tree evaluated column-at-a-time per batch, the
//! hash-join probe walks key columns and gathers matches batch-wise against
//! the same sharded build table the row engine uses, and aggregates fold
//! typed columns into the row engine's own accumulators via per-type fast
//! paths.
//!
//! **Equivalence contract.** Output is row-for-row identical to the row
//! engine at every DOP — same rows, same order, bit-identical floats:
//!
//! * batches preserve row order, and every merge (morsel units, per-group
//!   accumulators) happens in the same order as the row engine's;
//! * kernels mirror `Value::sql_cmp` / Kleene semantics exactly;
//! * any batch a kernel cannot handle faithfully — mixed-type (`Any`)
//!   columns, runtime type pairings the row engine would reject — is
//!   **row-evaluated wholesale** with the original expressions, so errors
//!   and three-valued edge cases reproduce exactly;
//! * plans outside the covered shape (multi-join, uncompilable filters)
//!   never enter this module: [`try_execute`] returns `None` and the row
//!   engine runs.
//!
//! The morsel driver, DOP semantics, and tracing contract are shared with
//! `exec.rs`, so `EXPLAIN ANALYZE` and the DOP-equivalence machinery carry
//! over unchanged.

use crate::ast::{BinaryOp, UnaryOp};
use crate::batch::{Column, ColumnBuilder, ColumnarBatch, Mask, Tri};
use crate::catalog::{slice_batches_cached, ExecContext, TableSlices};
use crate::exec::{
    accumulate, build_join_table, finish_groups, finish_output, parallel_scan_batches,
    project_rows, start_node, Acc, FrozenJoinTable, PartialAgg,
};
use crate::expr::{like_match, BoundExpr};
use crate::plan::{AggregateNode, JoinNode, PhysicalPlan, ScanNode};
use squery_common::{SqError, SqResult, Value};
use std::cmp::Ordering;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Predicate kernels
// ---------------------------------------------------------------------------

/// A comparison operator over a resolved [`Ordering`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CmpOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl CmpOp {
    fn from_binary(op: BinaryOp) -> Option<CmpOp> {
        match op {
            BinaryOp::Eq => Some(CmpOp::Eq),
            BinaryOp::NotEq => Some(CmpOp::NotEq),
            BinaryOp::Lt => Some(CmpOp::Lt),
            BinaryOp::LtEq => Some(CmpOp::LtEq),
            BinaryOp::Gt => Some(CmpOp::Gt),
            BinaryOp::GtEq => Some(CmpOp::GtEq),
            _ => None,
        }
    }

    /// The operator with its operands swapped (`lit < col` ⇔ `col > lit`).
    fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::NotEq => CmpOp::NotEq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::LtEq => CmpOp::GtEq,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::GtEq => CmpOp::LtEq,
        }
    }

    /// Apply to a resolved ordering, mirroring `eval_binary`'s mapping.
    #[inline]
    fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::NotEq => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::LtEq => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::GtEq => ord != Ordering::Less,
        }
    }
}

/// A compiled predicate kernel tree: the subset of [`BoundExpr`] the
/// columnar filter covers, with `LOCALTIMESTAMP` resolved to a constant and
/// literal-vs-column comparisons normalized to column-vs-literal.
///
/// `BETWEEN` desugars at compile time into `AND` of two comparisons (with a
/// Kleene `NOT` when negated), exactly matching its row-engine expansion.
#[derive(Debug, Clone)]
pub(crate) enum VecPred {
    /// `col <op> literal`.
    CmpLit { col: usize, op: CmpOp, lit: Value },
    /// `col <op> col`.
    CmpCols {
        left: usize,
        op: CmpOp,
        right: usize,
    },
    /// `col IS [NOT] NULL`.
    IsNull { col: usize, negated: bool },
    /// `col [NOT] IN (literals…)`.
    InList {
        col: usize,
        list: Vec<Value>,
        negated: bool,
    },
    /// `col [NOT] LIKE 'pattern'`.
    Like {
        col: usize,
        pattern: Arc<str>,
        negated: bool,
    },
    /// Kleene AND.
    And(Box<VecPred>, Box<VecPred>),
    /// Kleene OR.
    Or(Box<VecPred>, Box<VecPred>),
    /// Kleene NOT.
    Not(Box<VecPred>),
    /// A constant truth value.
    Lit(Tri),
    /// A bare boolean column used as a predicate.
    BoolCol { col: usize },
}

/// A comparison operand the kernels understand.
enum Operand {
    Col(usize),
    Lit(Value),
}

fn operand(e: &BoundExpr, now_micros: i64) -> Option<Operand> {
    match e {
        BoundExpr::Column(i) => Some(Operand::Col(*i)),
        BoundExpr::Literal(v) => Some(Operand::Lit(v.clone())),
        BoundExpr::LocalTimestamp => Some(Operand::Lit(Value::Timestamp(now_micros))),
        _ => None,
    }
}

/// Compile a filter expression into a kernel tree, or `None` if any part of
/// it is outside the covered subset (the whole query then runs on the row
/// engine).
pub(crate) fn compile_pred(expr: &BoundExpr, now_micros: i64) -> Option<VecPred> {
    match expr {
        BoundExpr::Column(i) => Some(VecPred::BoolCol { col: *i }),
        BoundExpr::Literal(v) => match v {
            Value::Bool(true) => Some(VecPred::Lit(Tri::True)),
            Value::Bool(false) => Some(VecPred::Lit(Tri::False)),
            Value::Null => Some(VecPred::Lit(Tri::Null)),
            _ => None,
        },
        BoundExpr::Binary { left, op, right } => match op {
            BinaryOp::And => Some(VecPred::And(
                Box::new(compile_pred(left, now_micros)?),
                Box::new(compile_pred(right, now_micros)?),
            )),
            BinaryOp::Or => Some(VecPred::Or(
                Box::new(compile_pred(left, now_micros)?),
                Box::new(compile_pred(right, now_micros)?),
            )),
            _ => {
                let op = CmpOp::from_binary(*op)?;
                match (operand(left, now_micros)?, operand(right, now_micros)?) {
                    (Operand::Col(l), Operand::Col(r)) => Some(VecPred::CmpCols {
                        left: l,
                        op,
                        right: r,
                    }),
                    (Operand::Col(c), Operand::Lit(v)) => {
                        Some(VecPred::CmpLit { col: c, op, lit: v })
                    }
                    (Operand::Lit(v), Operand::Col(c)) => Some(VecPred::CmpLit {
                        col: c,
                        op: op.flip(),
                        lit: v,
                    }),
                    // Constant comparisons are rare; leave them to the row
                    // engine (they may legitimately error).
                    (Operand::Lit(_), Operand::Lit(_)) => None,
                }
            }
        },
        BoundExpr::Unary { op, operand } => match op {
            UnaryOp::Not => Some(VecPred::Not(Box::new(compile_pred(operand, now_micros)?))),
            UnaryOp::Neg => None,
        },
        BoundExpr::IsNull { operand, negated } => match operand.as_ref() {
            BoundExpr::Column(i) => Some(VecPred::IsNull {
                col: *i,
                negated: *negated,
            }),
            _ => None,
        },
        BoundExpr::InList {
            operand: op_expr,
            list,
            negated,
        } => {
            let BoundExpr::Column(col) = op_expr.as_ref() else {
                return None;
            };
            let mut lits = Vec::with_capacity(list.len());
            for item in list {
                match operand(item, now_micros)? {
                    Operand::Lit(v) => lits.push(v),
                    Operand::Col(_) => return None,
                }
            }
            Some(VecPred::InList {
                col: *col,
                list: lits,
                negated: *negated,
            })
        }
        BoundExpr::Between {
            operand: op_expr,
            low,
            high,
            negated,
        } => {
            let BoundExpr::Column(col) = op_expr.as_ref() else {
                return None;
            };
            let (Some(Operand::Lit(lo)), Some(Operand::Lit(hi))) =
                (operand(low, now_micros), operand(high, now_micros))
            else {
                return None;
            };
            // NULL bounds take the row engine's three-valued shortcuts;
            // keep those on the row path.
            if lo.is_null() || hi.is_null() {
                return None;
            }
            let both = VecPred::And(
                Box::new(VecPred::CmpLit {
                    col: *col,
                    op: CmpOp::GtEq,
                    lit: lo,
                }),
                Box::new(VecPred::CmpLit {
                    col: *col,
                    op: CmpOp::LtEq,
                    lit: hi,
                }),
            );
            Some(if *negated {
                VecPred::Not(Box::new(both))
            } else {
                both
            })
        }
        BoundExpr::Like {
            operand: op_expr,
            pattern,
            negated,
        } => {
            let BoundExpr::Column(col) = op_expr.as_ref() else {
                return None;
            };
            let BoundExpr::Literal(Value::Str(p)) = pattern.as_ref() else {
                return None;
            };
            Some(VecPred::Like {
                col: *col,
                pattern: Arc::clone(p),
                negated: *negated,
            })
        }
        _ => None,
    }
}

#[inline]
fn tri_of(cond: bool) -> Tri {
    if cond {
        Tri::True
    } else {
        Tri::False
    }
}

impl VecPred {
    /// Evaluate over one batch. `None` means this batch is not kernelizable
    /// — a mixed-type (`Any`) column, or a runtime type pairing the row
    /// engine would reject — and the caller must row-evaluate the original
    /// expression for the batch, which reproduces row-engine results
    /// (including errors and short-circuits) exactly.
    pub(crate) fn eval(&self, batch: &ColumnarBatch) -> Option<Mask> {
        match self {
            VecPred::Lit(t) => Some(Mask(vec![*t; batch.len()])),
            VecPred::And(a, b) => {
                let mut m = a.eval(batch)?;
                m.and(&b.eval(batch)?);
                Some(m)
            }
            VecPred::Or(a, b) => {
                let mut m = a.eval(batch)?;
                m.or(&b.eval(batch)?);
                Some(m)
            }
            VecPred::Not(a) => {
                let mut m = a.eval(batch)?;
                m.not();
                Some(m)
            }
            VecPred::BoolCol { col } => match batch.column(*col) {
                Column::Bool(v, ok) => Some(Mask(
                    v.iter()
                        .zip(ok)
                        .map(|(b, k)| if !k { Tri::Null } else { tri_of(*b) })
                        .collect(),
                )),
                // The row engine errors on a non-boolean predicate value.
                _ => None,
            },
            VecPred::IsNull { col, negated } => {
                let c = batch.column(*col);
                Some(Mask(
                    (0..batch.len())
                        .map(|i| tri_of(is_null_at(c, i) != *negated))
                        .collect(),
                ))
            }
            VecPred::InList { col, list, negated } => {
                // Generic per-value evaluation: `IN` never errors in the row
                // engine (incomparable candidates just don't match), so
                // every column type — including `Any` — is safe here.
                let c = batch.column(*col);
                Some(Mask(
                    (0..batch.len())
                        .map(|i| in_list_tri(&c.value_at(i), list, *negated))
                        .collect(),
                ))
            }
            VecPred::Like {
                col,
                pattern,
                negated,
            } => match batch.column(*col) {
                Column::Str(v) => Some(Mask(
                    v.iter()
                        .map(|s| match s {
                            None => Tri::Null,
                            Some(t) => tri_of(like_match(t, pattern) != *negated),
                        })
                        .collect(),
                )),
                // Non-string non-null operands error in the row engine.
                _ => None,
            },
            VecPred::CmpLit { col, op, lit } => cmp_lit(batch.column(*col), *op, lit),
            VecPred::CmpCols { left, op, right } => {
                cmp_cols(batch.column(*left), *op, batch.column(*right))
            }
        }
    }
}

fn is_null_at(c: &Column, i: usize) -> bool {
    match c {
        Column::Int(_, ok) | Column::Float(_, ok) | Column::Timestamp(_, ok) => !ok[i],
        Column::Bool(_, ok) => !ok[i],
        Column::Str(v) => v[i].is_none(),
        Column::Any(v) => v[i].is_null(),
    }
}

fn in_list_tri(v: &Value, list: &[Value], negated: bool) -> Tri {
    if v.is_null() {
        return Tri::Null;
    }
    let mut saw_null = false;
    for candidate in list {
        if candidate.is_null() {
            saw_null = true;
            continue;
        }
        if v.sql_cmp(candidate) == Some(Ordering::Equal) {
            return tri_of(!negated);
        }
    }
    if saw_null {
        Tri::Null
    } else {
        tri_of(negated)
    }
}

/// Column-vs-literal comparison, mirroring `Value::sql_cmp` type-for-type.
/// `None` = the pairing is incomparable (or the column is `Any`): the row
/// engine would error on non-null values, so the batch falls back.
fn cmp_lit(col: &Column, op: CmpOp, lit: &Value) -> Option<Mask> {
    if lit.is_null() {
        // NULL comparisons are UNKNOWN for every row, never errors.
        return Some(Mask(vec![Tri::Null; col.len()]));
    }
    let n = col.len();
    let mut out = Vec::with_capacity(n);
    match (col, lit) {
        (Column::Int(v, ok), Value::Int(b)) => {
            for i in 0..n {
                out.push(if ok[i] {
                    tri_of(op.test(v[i].cmp(b)))
                } else {
                    Tri::Null
                });
            }
        }
        (Column::Int(v, ok), Value::Float(b)) => {
            for i in 0..n {
                out.push(if ok[i] {
                    tri_of(op.test((v[i] as f64).total_cmp(b)))
                } else {
                    Tri::Null
                });
            }
        }
        // sql_cmp compares Int↔Timestamp as raw i64 microseconds.
        (Column::Int(v, ok), Value::Timestamp(b)) => {
            for i in 0..n {
                out.push(if ok[i] {
                    tri_of(op.test(v[i].cmp(b)))
                } else {
                    Tri::Null
                });
            }
        }
        (Column::Float(v, ok), Value::Float(b)) => {
            for i in 0..n {
                out.push(if ok[i] {
                    tri_of(op.test(v[i].total_cmp(b)))
                } else {
                    Tri::Null
                });
            }
        }
        (Column::Float(v, ok), Value::Int(b)) => {
            let b = *b as f64;
            for i in 0..n {
                out.push(if ok[i] {
                    tri_of(op.test(v[i].total_cmp(&b)))
                } else {
                    Tri::Null
                });
            }
        }
        (Column::Timestamp(v, ok), Value::Timestamp(b))
        | (Column::Timestamp(v, ok), Value::Int(b)) => {
            for i in 0..n {
                out.push(if ok[i] {
                    tri_of(op.test(v[i].cmp(b)))
                } else {
                    Tri::Null
                });
            }
        }
        (Column::Bool(v, ok), Value::Bool(b)) => {
            for i in 0..n {
                out.push(if ok[i] {
                    tri_of(op.test(v[i].cmp(b)))
                } else {
                    Tri::Null
                });
            }
        }
        (Column::Str(v), Value::Str(b)) => {
            let b: &str = b;
            for s in v {
                out.push(match s {
                    None => Tri::Null,
                    Some(s) => tri_of(op.test(s.as_ref().cmp(b))),
                });
            }
        }
        // Incomparable pairing (Float↔Timestamp, Str↔Int, …) or Any column.
        _ => return None,
    }
    Some(Mask(out))
}

/// Column-vs-column comparison; same comparability rules as [`cmp_lit`].
fn cmp_cols(l: &Column, op: CmpOp, r: &Column) -> Option<Mask> {
    let n = l.len();
    let mut out = Vec::with_capacity(n);
    macro_rules! rows {
        ($lv:ident, $lok:ident, $rv:ident, $rok:ident, $cmp:expr) => {
            for i in 0..n {
                out.push(if $lok[i] && $rok[i] {
                    #[allow(clippy::redundant_closure_call)]
                    tri_of(op.test(($cmp)($lv[i], $rv[i])))
                } else {
                    Tri::Null
                });
            }
        };
    }
    match (l, r) {
        (Column::Int(a, ao), Column::Int(b, bo)) => rows!(a, ao, b, bo, |x: i64, y: i64| x.cmp(&y)),
        (Column::Int(a, ao), Column::Float(b, bo)) => {
            rows!(a, ao, b, bo, |x: i64, y: f64| (x as f64).total_cmp(&y))
        }
        (Column::Float(a, ao), Column::Int(b, bo)) => {
            rows!(a, ao, b, bo, |x: f64, y: i64| x.total_cmp(&(y as f64)))
        }
        (Column::Float(a, ao), Column::Float(b, bo)) => {
            rows!(a, ao, b, bo, |x: f64, y: f64| x.total_cmp(&y))
        }
        (Column::Timestamp(a, ao), Column::Timestamp(b, bo))
        | (Column::Timestamp(a, ao), Column::Int(b, bo))
        | (Column::Int(a, ao), Column::Timestamp(b, bo)) => {
            rows!(a, ao, b, bo, |x: i64, y: i64| x.cmp(&y))
        }
        (Column::Bool(a, ao), Column::Bool(b, bo)) => {
            rows!(a, ao, b, bo, |x: bool, y: bool| x.cmp(&y))
        }
        (Column::Str(a), Column::Str(b)) => {
            for (x, y) in a.iter().zip(b) {
                out.push(match (x, y) {
                    (Some(x), Some(y)) => tri_of(op.test(x.cmp(y))),
                    _ => Tri::Null,
                });
            }
        }
        _ => return None,
    }
    Some(Mask(out))
}

// ---------------------------------------------------------------------------
// Filter application
// ---------------------------------------------------------------------------

/// Selected row indices for one batch: the kernel mask when the batch is
/// kernelizable, a per-row fallback through the layout-remapped original
/// expression (exact row-engine semantics, including errors) otherwise.
fn filter_selection(lay: &Layout, batch: &ColumnarBatch, ctx: &ExecContext) -> SqResult<Vec<u32>> {
    let Some(filter) = &lay.filter else {
        return Ok((0..batch.len() as u32).collect());
    };
    let pred = lay
        .pred
        .as_ref()
        .expect("vectorized filter implies a compiled predicate");
    if let Some(mask) = pred.eval(batch) {
        return Ok(mask.selected());
    }
    let mut sel = Vec::new();
    for i in 0..batch.len() {
        let row = batch.row_at(i);
        if filter.matches(&row, ctx)? {
            sel.push(i as u32);
        }
    }
    Ok(sel)
}

// ---------------------------------------------------------------------------
// Batched join probe
// ---------------------------------------------------------------------------

/// Probe one batch against a frozen build table. `probe_key_pos` are the
/// join-key positions within the (pruned) probe batch; `build_cols` lists
/// the build-row columns to append after the probe columns, in ascending
/// order. Output row order is probe-major, match order within each probe
/// row — identical to the row engine's probe. Returns a zero-column batch
/// when nothing matches.
fn probe_batch(
    batch: &ColumnarBatch,
    table: &FrozenJoinTable,
    probe_key_pos: &[usize],
    build_cols: &[usize],
) -> ColumnarBatch {
    let mut probe_idx: Vec<u32> = Vec::new();
    let mut match_rows: Vec<&Vec<Value>> = Vec::new();
    let mut key = Vec::with_capacity(probe_key_pos.len());
    'probe: for i in 0..batch.len() {
        key.clear();
        for &k in probe_key_pos {
            let v = batch.value_at(i, k);
            if v.is_null() {
                continue 'probe;
            }
            key.push(v);
        }
        if let Some(matches) = table.get(&key) {
            for m in matches {
                probe_idx.push(i as u32);
                match_rows.push(m);
            }
        }
    }
    if probe_idx.is_empty() {
        return ColumnarBatch::new(Vec::new());
    }
    let mut cols = batch.gather(&probe_idx).into_columns();
    for &j in build_cols {
        let mut b = ColumnBuilder::new();
        for row in &match_rows {
            b.push(&row[j]);
        }
        cols.push(b.finish());
    }
    ColumnarBatch::new(cols)
}

// ---------------------------------------------------------------------------
// Vectorized aggregation
// ---------------------------------------------------------------------------

/// The aggregate shapes the columnar accumulator covers: every GROUP BY
/// expression and every aggregate argument is a plain column reference (or
/// `COUNT(*)`). Anything else aggregates through the row engine's
/// `accumulate` over materialized rows.
pub(crate) fn agg_shape(node: &AggregateNode) -> Option<(Vec<usize>, Vec<Option<usize>>)> {
    let mut group_cols = Vec::with_capacity(node.group_exprs.len());
    for g in &node.group_exprs {
        match g {
            BoundExpr::Column(i) => group_cols.push(*i),
            _ => return None,
        }
    }
    let mut agg_args = Vec::with_capacity(node.aggs.len());
    for (_, arg) in &node.aggs {
        match arg {
            None => agg_args.push(None),
            Some(BoundExpr::Column(i)) => agg_args.push(Some(*i)),
            Some(_) => return None,
        }
    }
    Some((group_cols, agg_args))
}

// ---------------------------------------------------------------------------
// Column pruning
// ---------------------------------------------------------------------------

/// Collect every column index an expression reads into `out`.
fn collect_cols(expr: &BoundExpr, out: &mut BTreeSet<usize>) {
    match expr {
        BoundExpr::Column(i) => {
            out.insert(*i);
        }
        BoundExpr::Literal(_) | BoundExpr::LocalTimestamp => {}
        BoundExpr::Binary { left, right, .. } => {
            collect_cols(left, out);
            collect_cols(right, out);
        }
        BoundExpr::Unary { operand, .. } | BoundExpr::IsNull { operand, .. } => {
            collect_cols(operand, out)
        }
        BoundExpr::InList { operand, list, .. } => {
            collect_cols(operand, out);
            for e in list {
                collect_cols(e, out);
            }
        }
        BoundExpr::Between {
            operand, low, high, ..
        } => {
            collect_cols(operand, out);
            collect_cols(low, out);
            collect_cols(high, out);
        }
        BoundExpr::Like {
            operand, pattern, ..
        } => {
            collect_cols(operand, out);
            collect_cols(pattern, out);
        }
        BoundExpr::Case {
            branches,
            else_result,
        } => {
            for (c, r) in branches {
                collect_cols(c, out);
                collect_cols(r, out);
            }
            if let Some(e) = else_result {
                collect_cols(e, out);
            }
        }
        BoundExpr::Func { args, .. } => {
            for e in args {
                collect_cols(e, out);
            }
        }
    }
}

/// The expression with every column reference renumbered through `map`.
/// Every referenced column must be present in the map (collect first).
fn remap_cols(expr: &BoundExpr, map: &HashMap<usize, usize>) -> BoundExpr {
    let remap = |e: &BoundExpr| Box::new(remap_cols(e, map));
    match expr {
        BoundExpr::Column(i) => BoundExpr::Column(map[i]),
        BoundExpr::Literal(v) => BoundExpr::Literal(v.clone()),
        BoundExpr::LocalTimestamp => BoundExpr::LocalTimestamp,
        BoundExpr::Binary { left, op, right } => BoundExpr::Binary {
            left: remap(left),
            op: *op,
            right: remap(right),
        },
        BoundExpr::Unary { op, operand } => BoundExpr::Unary {
            op: *op,
            operand: remap(operand),
        },
        BoundExpr::IsNull { operand, negated } => BoundExpr::IsNull {
            operand: remap(operand),
            negated: *negated,
        },
        BoundExpr::InList {
            operand,
            list,
            negated,
        } => BoundExpr::InList {
            operand: remap(operand),
            list: list.iter().map(|e| remap_cols(e, map)).collect(),
            negated: *negated,
        },
        BoundExpr::Between {
            operand,
            low,
            high,
            negated,
        } => BoundExpr::Between {
            operand: remap(operand),
            low: remap(low),
            high: remap(high),
            negated: *negated,
        },
        BoundExpr::Like {
            operand,
            pattern,
            negated,
        } => BoundExpr::Like {
            operand: remap(operand),
            pattern: remap(pattern),
            negated: *negated,
        },
        BoundExpr::Case {
            branches,
            else_result,
        } => BoundExpr::Case {
            branches: branches
                .iter()
                .map(|(c, r)| (remap_cols(c, map), remap_cols(r, map)))
                .collect(),
            else_result: else_result.as_ref().map(|e| remap(e)),
        },
        BoundExpr::Func { func, args } => BoundExpr::Func {
            func: *func,
            args: args.iter().map(|e| remap_cols(e, map)).collect(),
        },
    }
}

/// The physical column layout of one query's pipeline batches, plus every
/// downstream consumer remapped onto it.
///
/// Covered aggregate plans materialize only the columns the filter, GROUP
/// BY, and aggregate arguments actually touch (projections and HAVING run
/// over aggregate *output* rows, so they never constrain the scan) — for
/// the paper's Q1–Q4 that is 2–4 of ~12 joined columns. All other plans
/// keep every logical column and materialize logical-order rows for the
/// row-engine project/sort tail.
struct Layout {
    /// Probe-side scan columns to materialize, ascending scan order.
    probe_cols: Vec<usize>,
    /// Positions of the probe join keys within the pruned probe batch.
    probe_key_pos: Vec<usize>,
    /// Build-row columns appended after the probe columns, ascending.
    build_cols: Vec<usize>,
    /// Batch position of each logical column, when every logical column is
    /// materialized (`None` for pruned aggregate layouts, which never
    /// materialize logical rows).
    row_pos: Option<Vec<usize>>,
    /// The filter remapped onto the batch layout (the per-batch row
    /// fallback evaluates this against pruned rows).
    filter: Option<BoundExpr>,
    /// The kernel tree compiled from the remapped filter.
    pred: Option<VecPred>,
    /// Remapped GROUP BY columns and aggregate arguments, when [`VecAgg`]
    /// covers the aggregate shape.
    agg: Option<(Vec<usize>, Vec<Option<usize>>)>,
}

/// Plan the batch layout, or `None` if the plan's shape is outside the
/// columnar subset (multi-join chains, uncompilable filters) and the row
/// engine must run instead.
fn layout(plan: &PhysicalPlan, now_micros: i64) -> Option<Layout> {
    if plan.scans.len() > 2 {
        return None;
    }
    let join = plan.joins.first();
    let flipped = join.is_some_and(|j| j.build_left);
    let kept: Vec<usize> = join.map(|j| kept_right(plan, j)).unwrap_or_default();
    let left_width = plan.scans[0].width;
    let logical_width = left_width + kept.len();

    let shape = plan.aggregate.as_ref().and_then(agg_shape);
    let used: Vec<usize> = if let Some((groups, args)) = &shape {
        let mut set: BTreeSet<usize> = BTreeSet::new();
        if let Some(f) = &plan.filter {
            collect_cols(f, &mut set);
        }
        set.extend(groups.iter().copied());
        set.extend(args.iter().flatten().copied());
        set.into_iter().collect()
    } else {
        (0..logical_width).collect()
    };

    // Where each logical column physically lives: the probe-side scan or
    // the build rows. Without a join everything is probe-side.
    let probe_of = |l: usize| -> Option<usize> {
        match join {
            None => Some(l),
            Some(_) if !flipped => (l < left_width).then_some(l),
            Some(_) => (l >= left_width).then(|| kept[l - left_width]),
        }
    };
    let build_of = |l: usize| -> Option<usize> {
        match join {
            None => None,
            Some(_) if !flipped => (l >= left_width).then(|| kept[l - left_width]),
            Some(_) => (l < left_width).then_some(l),
        }
    };

    let mut probe_set: BTreeSet<usize> = used.iter().filter_map(|&l| probe_of(l)).collect();
    if let Some(j) = join {
        // Join keys must be materialized even when nothing downstream
        // reads them.
        let keys = if flipped { &j.right_keys } else { &j.left_keys };
        probe_set.extend(keys.iter().copied());
    }
    if probe_set.is_empty() {
        // COUNT(*)-style plans read no columns at all; keep one narrow
        // column so batch row counts survive.
        probe_set.insert(0);
    }
    let probe_cols: Vec<usize> = probe_set.into_iter().collect();
    // `used` is ascending and each join side maps monotonically, so the
    // filtered sequence stays ascending.
    let build_cols: Vec<usize> = used.iter().filter_map(|&l| build_of(l)).collect();
    let probe_key_pos: Vec<usize> = match join {
        Some(j) => {
            let keys = if flipped { &j.right_keys } else { &j.left_keys };
            keys.iter()
                .map(|k| probe_cols.binary_search(k).expect("join key materialized"))
                .collect()
        }
        None => Vec::new(),
    };

    let mut out_pos: HashMap<usize, usize> = HashMap::with_capacity(used.len());
    for &l in &used {
        let pos = match probe_of(l) {
            Some(c) => probe_cols
                .binary_search(&c)
                .expect("probe column materialized"),
            None => {
                let c = build_of(l).expect("column is probe- or build-side");
                probe_cols.len()
                    + build_cols
                        .binary_search(&c)
                        .expect("build column materialized")
            }
        };
        out_pos.insert(l, pos);
    }
    let row_pos =
        (used.len() == logical_width).then(|| (0..logical_width).map(|l| out_pos[&l]).collect());

    let filter = plan.filter.as_ref().map(|f| remap_cols(f, &out_pos));
    let pred = match &filter {
        Some(f) => Some(compile_pred(f, now_micros)?),
        None => None,
    };
    let agg = shape.map(|(groups, args)| {
        (
            groups.iter().map(|c| out_pos[c]).collect(),
            args.iter().map(|a| a.map(|c| out_pos[&c])).collect(),
        )
    });
    Some(Layout {
        probe_cols,
        probe_key_pos,
        build_cols,
        row_pos,
        filter,
        pred,
        agg,
    })
}

impl Layout {
    /// Materialize one batch row in logical column order — the boundary
    /// into the row engine's project/sort/accumulate tail. Only called on
    /// full (unpruned) layouts.
    fn logical_row(&self, b: &ColumnarBatch, i: usize) -> Vec<Value> {
        let pos = self
            .row_pos
            .as_ref()
            .expect("logical rows require a full layout");
        pos.iter().map(|&p| b.value_at(i, p)).collect()
    }
}

/// Per-worker columnar aggregation state: group keys resolve to dense ids
/// once per row, then each aggregate slot updates column-at-a-time through
/// the typed [`Acc`] fast paths. Converts into the row engine's
/// [`PartialAgg`] so merging and finishing are shared.
struct VecAgg<'a> {
    node: &'a AggregateNode,
    group_cols: &'a [usize],
    agg_args: &'a [Option<usize>],
    ids: HashMap<Vec<Value>, usize>,
    accs: Vec<Vec<Acc>>,
    order: Vec<Vec<Value>>,
    gids: Vec<usize>,
    key_buf: Vec<Value>,
}

impl<'a> VecAgg<'a> {
    fn new(
        node: &'a AggregateNode,
        group_cols: &'a [usize],
        agg_args: &'a [Option<usize>],
    ) -> Self {
        VecAgg {
            node,
            group_cols,
            agg_args,
            ids: HashMap::new(),
            accs: Vec::new(),
            order: Vec::new(),
            gids: Vec::new(),
            key_buf: Vec::new(),
        }
    }

    /// Fold one batch's selected rows, in row order (the float-summation
    /// order contract).
    fn update(&mut self, batch: &ColumnarBatch, sel: &[u32]) -> SqResult<()> {
        // Resolve each selected row's group id in row order, creating groups
        // first-seen — identical group order to the row engine's fold.
        self.gids.clear();
        for &ri in sel {
            self.key_buf.clear();
            for &c in self.group_cols {
                self.key_buf.push(batch.value_at(ri as usize, c));
            }
            let gid = match self.ids.get(&self.key_buf) {
                Some(&g) => g,
                None => {
                    let g = self.accs.len();
                    self.ids.insert(self.key_buf.clone(), g);
                    self.order.push(self.key_buf.clone());
                    self.accs
                        .push(self.node.aggs.iter().map(|(f, _)| Acc::new(*f)).collect());
                    g
                }
            };
            self.gids.push(gid);
        }
        // Per-slot, column-at-a-time updates. Slots are independent, so
        // slot-major order leaves every accumulator's update sequence in
        // row order, exactly like the row engine's row-major fold.
        for (slot, arg) in self.agg_args.iter().enumerate() {
            match arg {
                None => {
                    for &g in &self.gids {
                        self.accs[g][slot].update(None)?;
                    }
                }
                Some(c) => match batch.column(*c) {
                    Column::Int(v, ok) => {
                        for (&ri, &g) in sel.iter().zip(&self.gids) {
                            let i = ri as usize;
                            if ok[i] {
                                self.accs[g][slot].update_i64(v[i])?;
                            }
                        }
                    }
                    Column::Float(v, ok) => {
                        for (&ri, &g) in sel.iter().zip(&self.gids) {
                            let i = ri as usize;
                            if ok[i] {
                                self.accs[g][slot].update_f64(v[i])?;
                            }
                        }
                    }
                    Column::Timestamp(v, ok) => {
                        for (&ri, &g) in sel.iter().zip(&self.gids) {
                            let i = ri as usize;
                            if ok[i] {
                                self.accs[g][slot].update_ts(v[i])?;
                            }
                        }
                    }
                    col => {
                        for (&ri, &g) in sel.iter().zip(&self.gids) {
                            let v = col.value_at(ri as usize);
                            self.accs[g][slot].update(Some(&v))?;
                        }
                    }
                },
            }
        }
        Ok(())
    }

    fn into_partial(self) -> PartialAgg {
        let VecAgg { accs, order, .. } = self;
        let mut groups = HashMap::with_capacity(order.len());
        for (key, a) in order.iter().zip(accs) {
            groups.insert(key.clone(), a);
        }
        PartialAgg { groups, order }
    }
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// Run the plan on the columnar path if its shape is covered; `None` sends
/// the query to the row engine untouched.
pub(crate) fn try_execute(
    plan: &PhysicalPlan,
    ctx: &ExecContext,
) -> Option<SqResult<Vec<Vec<Value>>>> {
    let lay = layout(plan, ctx.now_micros)?;
    Some(if ctx.parallelism.is_parallel() {
        run_parallel(plan, ctx, &lay)
    } else {
        run_sequential(plan, ctx, &lay)
    })
}

/// Right-scan columns surviving `right_drop`, in order.
fn kept_right(plan: &PhysicalPlan, join: &JoinNode) -> Vec<usize> {
    (0..plan.scans[1].width)
        .filter(|i| !join.right_drop.contains(i))
        .collect()
}

/// Materialize one scan as batches (restricted to the `cols` schema
/// columns) under a sequential-style `scan` span. Sliced sources go
/// through the per-slice executor cache, so repeated queries over the same
/// committed snapshot reuse already-decoded column vectors.
fn scan_batches(
    scan: &ScanNode,
    ctx: &ExecContext,
    node: &str,
    cols: &[usize],
) -> SqResult<Vec<Arc<ColumnarBatch>>> {
    let timer = start_node(ctx, "scan", node.to_string());
    let slices = scan.table.scan_partitions(&scan.hints, ctx)?;
    let batches = match slices {
        TableSlices::Whole(rows) => ColumnarBatch::from_rows_chunked_cols(&rows, cols)
            .into_iter()
            .map(Arc::new)
            .collect(),
        TableSlices::Sliced(sl) => {
            let mut out = Vec::new();
            for s in 0..sl.slice_count() {
                out.extend(slice_batches_cached(&*sl, s, cols)?);
            }
            out
        }
    };
    let total: u64 = batches.iter().map(|b| b.len() as u64).sum();
    if let Some(t) = timer {
        t.close(total, 0);
    }
    if let Some(c) = &ctx.rows_scanned {
        c.add(total);
    }
    Ok(batches)
}

/// Single-shard build in row order (sequential execution).
fn build_single(rows: &[Vec<Value>], keys: &[usize]) -> SqResult<FrozenJoinTable> {
    let mut map: HashMap<Vec<Value>, Vec<Vec<Value>>> = HashMap::with_capacity(rows.len());
    'rows: for row in rows {
        let mut key = Vec::with_capacity(keys.len());
        for &k in keys {
            let v = row
                .get(k)
                .ok_or_else(|| SqError::Exec("join key out of range".into()))?;
            if v.is_null() {
                continue 'rows;
            }
            key.push(v.clone());
        }
        map.entry(key).or_default().push(row.clone());
    }
    Ok(FrozenJoinTable::from_single(map))
}

/// The cached value stored under the `"join"` executor-cache kind:
/// `(table, scanned rows, scan units)` — the counts let a cache hit replay
/// the scan accounting (span + rows-scanned counter) the miss path emits.
type CachedJoin = (Arc<FrozenJoinTable>, u64, u64);

/// Build — or fetch a memoized — frozen join table for `scan`, hashed by
/// `keys`. Committed-snapshot sources memoize the table in their executor
/// cache; both drivers share one entry (sequential and parallel builds
/// produce the same key → matches-in-scan-order mapping). A hit replays
/// the scan span and rows-scanned count the miss path would have emitted,
/// keeping `EXPLAIN ANALYZE` totals engine-independent.
fn build_table(
    scan: &ScanNode,
    keys: &[usize],
    ctx: &ExecContext,
    node: &str,
    parallel: bool,
) -> SqResult<Arc<FrozenJoinTable>> {
    let slices = scan.table.scan_partitions(&scan.hints, ctx)?;
    if let TableSlices::Sliced(sl) = &slices {
        if let Some(hit) = sl.cache_get("join", u32::MAX, keys) {
            if let Ok(cached) = hit.downcast::<CachedJoin>() {
                let (table, rows, units) = &*cached;
                let (kind, slices_n) = if parallel {
                    ("slice", *units)
                } else {
                    ("scan", 0)
                };
                let timer = start_node(ctx, kind, node.to_string());
                if let Some(t) = timer {
                    t.close(*rows, slices_n);
                }
                if let Some(c) = &ctx.rows_scanned {
                    c.add(*rows);
                }
                return Ok(table.clone());
            }
        }
    }
    let (table, rows, units) = if parallel {
        let (t, rows, units) = build_join_table(&slices, keys, ctx, node)?;
        (Arc::new(t), rows, units)
    } else {
        let timer = start_node(ctx, "scan", node.to_string());
        let rows = match &slices {
            TableSlices::Whole(rows) => rows.clone(),
            TableSlices::Sliced(sl) => {
                let mut out = Vec::new();
                for s in 0..sl.slice_count() {
                    out.extend(sl.scan_slice(s)?);
                }
                out
            }
        };
        if let Some(t) = timer {
            t.close(rows.len() as u64, 0);
        }
        if let Some(c) = &ctx.rows_scanned {
            c.add(rows.len() as u64);
        }
        let units = match &slices {
            TableSlices::Whole(_) => 0,
            TableSlices::Sliced(sl) => sl.slice_count() as u64,
        };
        (
            Arc::new(build_single(&rows, keys)?),
            rows.len() as u64,
            units,
        )
    };
    if let TableSlices::Sliced(sl) = &slices {
        let cached: CachedJoin = (table.clone(), rows, units);
        sl.cache_put("join", u32::MAX, keys, Arc::new(cached));
    }
    Ok(table)
}

/// The sequential (DOP 1) vectorized driver: phase-at-a-time under the same
/// span structure as the row engine's sequential path, so `EXPLAIN ANALYZE`
/// and trace-shape assertions see identical node spans.
fn run_sequential(
    plan: &PhysicalPlan,
    ctx: &ExecContext,
    lay: &Layout,
) -> SqResult<Vec<Vec<Value>>> {
    // --- scans + join -----------------------------------------------------
    let batches;
    if plan.joins.is_empty() {
        batches = scan_batches(&plan.scans[0], ctx, "scan0", &lay.probe_cols)?;
    } else {
        let join = &plan.joins[0];
        let (table, probe);
        if join.build_left {
            table = build_table(&plan.scans[0], &join.left_keys, ctx, "scan0", false)?;
            probe = scan_batches(&plan.scans[1], ctx, "scan1", &lay.probe_cols)?;
        } else {
            probe = scan_batches(&plan.scans[0], ctx, "scan0", &lay.probe_cols)?;
            table = build_table(&plan.scans[1], &join.right_keys, ctx, "scan1", false)?;
        }
        let timer = start_node(ctx, "join", "join0".into());
        let mut out = Vec::with_capacity(probe.len());
        let mut rows = 0u64;
        for b in &probe {
            let ob = probe_batch(
                b.as_ref(),
                table.as_ref(),
                &lay.probe_key_pos,
                &lay.build_cols,
            );
            rows += ob.len() as u64;
            if !ob.is_empty() {
                out.push(Arc::new(ob));
            }
        }
        if let Some(t) = timer {
            t.close(rows, 0);
        }
        batches = out;
    }

    // --- filter -----------------------------------------------------------
    let selections: Vec<Vec<u32>> = if plan.filter.is_some() {
        let timer = start_node(ctx, "filter", "filter".into());
        let mut sels = Vec::with_capacity(batches.len());
        let mut kept = 0u64;
        for b in &batches {
            let sel = filter_selection(lay, b.as_ref(), ctx)?;
            kept += sel.len() as u64;
            sels.push(sel);
        }
        if let Some(t) = timer {
            t.close(kept, 0);
        }
        sels
    } else {
        batches
            .iter()
            .map(|b| (0..b.len() as u32).collect())
            .collect()
    };

    // --- aggregate --------------------------------------------------------
    let rows = if let Some(node) = &plan.aggregate {
        let timer = start_node(ctx, "aggregate", "aggregate".into());
        let rows = match &lay.agg {
            Some((group_cols, agg_args)) => {
                let mut va = VecAgg::new(node, group_cols, agg_args);
                for (b, sel) in batches.iter().zip(&selections) {
                    va.update(b.as_ref(), sel)?;
                }
                finish_groups(va.into_partial(), node)
            }
            None => {
                let mut partial = PartialAgg::new();
                for (b, sel) in batches.iter().zip(&selections) {
                    let rows: Vec<Vec<Value>> = sel
                        .iter()
                        .map(|&i| lay.logical_row(b.as_ref(), i as usize))
                        .collect();
                    accumulate(&rows, node, ctx, &mut partial)?;
                }
                finish_groups(partial, node)
            }
        };
        if let Some(t) = timer {
            t.close(rows.len() as u64, 0);
        }
        rows
    } else {
        let mut rows = Vec::new();
        for (b, sel) in batches.iter().zip(&selections) {
            for &i in sel {
                rows.push(lay.logical_row(b.as_ref(), i as usize));
            }
        }
        rows
    };

    let projected = project_rows(plan, ctx, &rows)?;
    Ok(finish_output(plan, ctx, projected))
}

/// Probe + filter one morsel unit's batches, feeding each surviving
/// `(batch, selection)` to `f` and folding the row engine's per-unit trace
/// counts (`join0`, `filter`).
fn for_each_filtered(
    plan: &PhysicalPlan,
    lay: &Layout,
    table: Option<&FrozenJoinTable>,
    ctx: &ExecContext,
    batches: &[Arc<ColumnarBatch>],
    mut f: impl FnMut(&ColumnarBatch, &[u32]) -> SqResult<()>,
) -> SqResult<()> {
    let mut join_rows = 0u64;
    let mut kept_rows = 0u64;
    for b in batches {
        let owned;
        let cur: &ColumnarBatch = match table {
            Some(t) => {
                owned = probe_batch(b.as_ref(), t, &lay.probe_key_pos, &lay.build_cols);
                join_rows += owned.len() as u64;
                if owned.is_empty() {
                    continue;
                }
                &owned
            }
            None => b.as_ref(),
        };
        let sel = filter_selection(lay, cur, ctx)?;
        kept_rows += sel.len() as u64;
        if !sel.is_empty() {
            f(cur, &sel)?;
        }
    }
    if let Some(t) = &ctx.trace {
        if table.is_some() {
            t.add("join0", join_rows, 0, 0);
        }
        if plan.filter.is_some() {
            t.add("filter", kept_rows, 0, 0);
        }
    }
    Ok(())
}

/// The parallel vectorized driver: the same morsel/merge structure as the
/// row engine's parallel path, with per-unit work running on batches.
fn run_parallel(plan: &PhysicalPlan, ctx: &ExecContext, lay: &Layout) -> SqResult<Vec<Vec<Value>>> {
    let flipped = plan.joins.len() == 1 && plan.joins[0].build_left;
    let (base_scan, base_node) = if flipped {
        (&plan.scans[1], "scan1")
    } else {
        (&plan.scans[0], "scan0")
    };
    let base = base_scan.table.scan_partitions(&base_scan.hints, ctx)?;
    let join_table: Option<Arc<FrozenJoinTable>> = match plan.joins.first() {
        Some(join) => {
            let (build_scan, build_node, build_keys) = if flipped {
                (&plan.scans[0], "scan0", &join.left_keys)
            } else {
                (&plan.scans[1], "scan1", &join.right_keys)
            };
            let timer = start_node(ctx, "join_build", "join0".into());
            let table = build_table(build_scan, build_keys, ctx, build_node, true)?;
            if let Some(t) = timer {
                t.close(0, 0);
            }
            Some(table)
        }
        None => None,
    };
    let join_table = join_table.as_deref();

    match &plan.aggregate {
        Some(node) => {
            let partials =
                parallel_scan_batches(&base, ctx, base_node, &lay.probe_cols, |batches, _unit| {
                    let partial = match &lay.agg {
                        Some((group_cols, agg_args)) => {
                            let mut va = VecAgg::new(node, group_cols, agg_args);
                            for_each_filtered(plan, lay, join_table, ctx, batches, |b, sel| {
                                va.update(b, sel)
                            })?;
                            va.into_partial()
                        }
                        None => {
                            let mut partial = PartialAgg::new();
                            for_each_filtered(plan, lay, join_table, ctx, batches, |b, sel| {
                                let rows: Vec<Vec<Value>> = sel
                                    .iter()
                                    .map(|&i| lay.logical_row(b, i as usize))
                                    .collect();
                                accumulate(&rows, node, ctx, &mut partial)
                            })?;
                            partial
                        }
                    };
                    Ok(partial)
                })?;
            let timer = start_node(ctx, "aggregate", "aggregate".into());
            let mut merged = PartialAgg::new();
            for partial in partials {
                merged.merge(partial)?;
            }
            let rows = finish_groups(merged, node);
            if let Some(t) = timer {
                t.close(rows.len() as u64, 0);
            }
            let projected = project_rows(plan, ctx, &rows)?;
            Ok(finish_output(plan, ctx, projected))
        }
        None => {
            let chunks =
                parallel_scan_batches(&base, ctx, base_node, &lay.probe_cols, |batches, _unit| {
                    let mut rows = Vec::new();
                    for_each_filtered(plan, lay, join_table, ctx, batches, |b, sel| {
                        for &i in sel {
                            rows.push(lay.logical_row(b, i as usize));
                        }
                        Ok(())
                    })?;
                    project_rows(plan, ctx, &rows)
                })?;
            let projected: Vec<(Vec<Value>, Vec<Value>)> = chunks.into_iter().flatten().collect();
            Ok(finish_output(plan, ctx, projected))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemCatalog, MemTable};
    use crate::parser::parse;
    use crate::plan::plan;
    use squery_common::config::Parallelism;
    use squery_common::schema::{schema, KEY_COLUMN};
    use squery_common::DataType;

    fn catalog() -> MemCatalog {
        let orders = schema(vec![
            (KEY_COLUMN, DataType::Any),
            ("total", DataType::Int),
            ("zone", DataType::Str),
            ("late", DataType::Timestamp),
        ]);
        let info = schema(vec![
            (KEY_COLUMN, DataType::Any),
            ("category", DataType::Str),
        ]);
        let orders_rows = vec![
            vec![
                Value::Int(1),
                Value::Int(10),
                Value::str("north"),
                Value::Timestamp(100),
            ],
            vec![
                Value::Int(2),
                Value::Int(20),
                Value::str("north"),
                Value::Timestamp(2_000_000),
            ],
            vec![
                Value::Int(3),
                Value::Int(30),
                Value::str("south"),
                Value::Timestamp(300),
            ],
            vec![Value::Int(4), Value::Null, Value::str("south"), Value::Null],
        ];
        let info_rows = vec![
            vec![Value::Int(1), Value::str("food")],
            vec![Value::Int(2), Value::str("food")],
            vec![Value::Int(3), Value::str("pharma")],
            vec![Value::Int(9), Value::str("unmatched")],
        ];
        MemCatalog::new(vec![
            Arc::new(MemTable::new("orders", orders, orders_rows)),
            Arc::new(MemTable::new("info", info, info_rows)),
        ])
    }

    /// Row-engine vs columnar output for the same plan at several DOPs.
    fn assert_vectorized_matches_rows(sql: &str) {
        let c = catalog();
        let p = plan(&parse(sql).unwrap(), &c).unwrap();
        let row_ctx = ExecContext::live_only(1_000_000).with_vectorized(false);
        let expected = crate::exec::execute(&p, &row_ctx).unwrap();
        for dop in [1usize, 2, 4, 8] {
            let ctx = ExecContext::live_only(1_000_000)
                .with_parallelism(Parallelism {
                    degree: dop,
                    min_morsel_rows: 1,
                })
                .with_vectorized(true);
            let got = crate::exec::execute(&p, &ctx).unwrap();
            assert_eq!(got, expected, "dop {dop}: {sql}");
        }
    }

    #[test]
    fn filters_and_aggregates_match_row_engine() {
        for sql in [
            "SELECT * FROM orders",
            "SELECT total FROM orders WHERE zone = 'north'",
            "SELECT total FROM orders WHERE total > 15",
            "SELECT total FROM orders WHERE 15 < total",
            "SELECT partitionKey FROM orders WHERE late < LOCALTIMESTAMP",
            "SELECT partitionKey FROM orders WHERE zone = 'north' OR zone = 'south'",
            "SELECT partitionKey FROM orders WHERE NOT (zone = 'north')",
            "SELECT partitionKey FROM orders WHERE total IS NULL",
            "SELECT partitionKey FROM orders WHERE total IS NOT NULL",
            "SELECT partitionKey FROM orders WHERE total IN (10, 30)",
            "SELECT partitionKey FROM orders WHERE total NOT IN (10, 30)",
            "SELECT partitionKey FROM orders WHERE total BETWEEN 15 AND 25",
            "SELECT partitionKey FROM orders WHERE zone LIKE 'n%'",
            "SELECT partitionKey FROM orders WHERE zone NOT LIKE 'n%'",
            "SELECT zone, COUNT(*) FROM orders GROUP BY zone",
            "SELECT zone, COUNT(*), SUM(total) FROM orders GROUP BY zone",
            "SELECT AVG(total), MIN(total), MAX(total), COUNT(total) FROM orders",
            "SELECT COUNT(*) FROM orders WHERE zone = 'nowhere'",
            "SELECT zone, SUM(total) FROM orders GROUP BY zone HAVING SUM(total) > 25",
            "SELECT total FROM orders WHERE total IS NOT NULL ORDER BY total DESC LIMIT 2",
        ] {
            assert_vectorized_matches_rows(sql);
        }
    }

    #[test]
    fn joins_match_row_engine() {
        for sql in [
            "SELECT partitionKey, total, category FROM orders JOIN info USING(partitionKey)",
            "SELECT category, COUNT(*) FROM orders JOIN info USING(partitionKey) \
             WHERE zone = 'north' GROUP BY category",
            "SELECT o.zone FROM orders o JOIN orders p ON o.total = p.total",
        ] {
            assert_vectorized_matches_rows(sql);
        }
    }

    #[test]
    fn mixed_type_batches_fall_back_per_batch() {
        // `v` mixes Int and Float, so the column degrades to Any and the
        // comparison kernel refuses it; the row fallback must agree with
        // the pure row engine (including Int/Float coercion).
        let s = schema(vec![("v", DataType::Any)]);
        let rows = vec![
            vec![Value::Int(1)],
            vec![Value::Float(2.5)],
            vec![Value::Int(3)],
            vec![Value::Null],
        ];
        let c = MemCatalog::new(vec![Arc::new(MemTable::new("t", s, rows))]);
        let p = plan(&parse("SELECT v FROM t WHERE v > 1.5").unwrap(), &c).unwrap();
        let expected =
            crate::exec::execute(&p, &ExecContext::live_only(0).with_vectorized(false)).unwrap();
        let got = crate::exec::execute(&p, &ExecContext::live_only(0)).unwrap();
        assert_eq!(got, expected);
        assert_eq!(got, vec![vec![Value::Float(2.5)], vec![Value::Int(3)]]);
    }

    #[test]
    fn incomparable_types_error_like_row_engine() {
        // Str column vs Int literal: the kernel refuses the batch and the
        // row fallback raises the row engine's comparison error.
        let c = catalog();
        let p = plan(
            &parse("SELECT zone FROM orders WHERE zone > 5").unwrap(),
            &c,
        )
        .unwrap();
        assert!(crate::exec::execute(&p, &ExecContext::live_only(0)).is_err());
        assert!(
            crate::exec::execute(&p, &ExecContext::live_only(0).with_vectorized(false)).is_err()
        );
    }

    #[test]
    fn short_circuit_false_and_error_still_passes() {
        // `zone = 5` would error, but AND short-circuits on a false LHS in
        // the row engine (the IS NOT NULL guard makes the LHS false on every
        // row, including the NULL-total one). The kernel path falls back per
        // batch (Str vs Int is incomparable) and must reproduce the
        // short-circuit instead of erroring.
        let c = catalog();
        let p = plan(
            &parse(
                "SELECT partitionKey FROM orders \
                 WHERE total IS NOT NULL AND total < 0 AND zone = 5",
            )
            .unwrap(),
            &c,
        )
        .unwrap();
        let got = crate::exec::execute(&p, &ExecContext::live_only(0)).unwrap();
        assert!(got.is_empty());
        // Without the guard the UNKNOWN LHS forces RHS evaluation and both
        // engines raise the same comparison error.
        let p = plan(
            &parse("SELECT partitionKey FROM orders WHERE total < 0 AND zone = 5").unwrap(),
            &c,
        )
        .unwrap();
        assert!(crate::exec::execute(&p, &ExecContext::live_only(0)).is_err());
        assert!(
            crate::exec::execute(&p, &ExecContext::live_only(0).with_vectorized(false)).is_err()
        );
    }

    #[test]
    fn compile_covers_paper_query_shapes() {
        let c = catalog();
        // Query 1 shape: equality + timestamp-vs-LOCALTIMESTAMP under AND.
        let p = plan(
            &parse(
                "SELECT COUNT(*), zone FROM orders \
                 WHERE (zone = 'north' AND late < LOCALTIMESTAMP) GROUP BY zone",
            )
            .unwrap(),
            &c,
        )
        .unwrap();
        assert!(compile_pred(p.filter.as_ref().unwrap(), 0).is_some());
        // Scalar functions stay on the row engine.
        let p = plan(
            &parse("SELECT zone FROM orders WHERE LENGTH(zone) > 4").unwrap(),
            &c,
        )
        .unwrap();
        assert!(compile_pred(p.filter.as_ref().unwrap(), 0).is_none());
    }

    #[test]
    fn cost_model_flip_matches_row_engine_order() {
        // Force build_left on a hand-built plan and check the columnar
        // output matches the row engine's (both become probe-major).
        let c = catalog();
        let mut p = plan(
            &parse(
                "SELECT partitionKey, total, category FROM orders JOIN info USING(partitionKey)",
            )
            .unwrap(),
            &c,
        )
        .unwrap();
        p.joins[0].build_left = true;
        p.joins[0].build_est = Some((4, 4));
        let row_ctx = ExecContext::live_only(0).with_vectorized(false);
        let expected = crate::exec::execute(&p, &row_ctx).unwrap();
        for dop in [1usize, 2, 4] {
            let ctx = ExecContext::live_only(0).with_parallelism(Parallelism {
                degree: dop,
                min_morsel_rows: 1,
            });
            let got = crate::exec::execute(&p, &ctx).unwrap();
            assert_eq!(got, expected, "dop {dop}");
            // The row engine parallel path must agree too.
            let got_rows = crate::exec::execute(&p, &ctx.with_vectorized(false)).unwrap();
            assert_eq!(got_rows, expected, "row engine dop {dop}");
        }
    }
}
