//! Catalog abstractions: tables, scan hints, execution context.

use parking_lot::Mutex;
use squery_common::config::Parallelism;
use squery_common::metrics::SharedHistogram;
use squery_common::schema::Schema;
use squery_common::telemetry::Counter;
use squery_common::trace::{SpanCollector, SpanGuard};
use squery_common::{SnapshotId, SqResult, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Which snapshot version(s) a snapshot-table scan should resolve.
///
/// Derived by the planner from the query's `ssid` predicates:
/// * no mention of `ssid` → [`SsidMode::Latest`] (paper §II: "By default, the
///   latest snapshot id is implied"),
/// * `ssid = <n>` equality → [`SsidMode::Exact`],
/// * any other `ssid` predicate (range, `IN`, …) → [`SsidMode::AllRetained`]:
///   every retained version is scanned with its `ssid` column materialized
///   and the predicate filters rows (the multi-version result sets of §VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SsidMode {
    /// Resolve the latest committed snapshot, fixed once per query.
    Latest,
    /// Resolve one explicitly requested snapshot id.
    Exact(SnapshotId),
    /// Scan every retained committed version.
    AllRetained,
}

/// Planner-extracted hints a table scan may exploit.
#[derive(Debug, Clone)]
pub struct ScanHints {
    /// Snapshot resolution mode (ignored by live tables).
    pub ssid: SsidMode,
    /// Equality constraint on the key column, enabling a point read.
    pub key_eq: Option<Value>,
}

impl Default for ScanHints {
    fn default() -> Self {
        ScanHints {
            ssid: SsidMode::Latest,
            key_eq: None,
        }
    }
}

/// Per-query execution context.
///
/// Built once per query so that every snapshot table in a join reads the
/// *same* snapshot id — the consistency the paper's 2PC publication
/// guarantees — and so `LOCALTIMESTAMP` is a single instant.
#[derive(Debug, Clone)]
pub struct ExecContext {
    /// The latest committed snapshot at query start, if any.
    pub query_ssid: Option<SnapshotId>,
    /// All retained committed snapshot ids at query start, ascending.
    pub retained_ssids: Vec<SnapshotId>,
    /// Microsecond timestamp for `LOCALTIMESTAMP`.
    pub now_micros: i64,
    /// Telemetry counter bumped with every row a scan materializes
    /// (`None` when the engine runs without a metrics registry).
    pub rows_scanned: Option<Counter>,
    /// Degree of parallelism for this query (1 = sequential execution).
    pub parallelism: Parallelism,
    /// Per-worker slice-scan latency histogram (`sql_worker_scan_us`),
    /// recorded once per claimed slice by parallel workers.
    pub worker_scan_us: Option<SharedHistogram>,
    /// Span/per-node-statistics sink, present when the query is traced
    /// (collector enabled) or profiled (`EXPLAIN ANALYZE`).
    pub trace: Option<ExecTrace>,
    /// Whether the executor may use the columnar batch kernels for plan
    /// shapes they cover. `false` forces the row engine everywhere —
    /// the fallback path, and the baseline of the equivalence tests and
    /// the vectorized-vs-row benchmarks.
    pub vectorized: bool,
}

impl ExecContext {
    /// A context with no snapshots (live-only catalogs, unit tests).
    pub fn live_only(now_micros: i64) -> ExecContext {
        ExecContext {
            query_ssid: None,
            retained_ssids: Vec::new(),
            now_micros,
            rows_scanned: None,
            parallelism: Parallelism::sequential(),
            worker_scan_us: None,
            trace: None,
            vectorized: true,
        }
    }

    /// The same context with a different degree of parallelism.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> ExecContext {
        self.parallelism = parallelism;
        self
    }

    /// The same context with the columnar kernels enabled or disabled.
    pub fn with_vectorized(mut self, vectorized: bool) -> ExecContext {
        self.vectorized = vectorized;
        self
    }
}

/// Aggregated execution statistics for one plan node.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NodeStat {
    /// Rows the node produced (scans: rows materialized).
    pub rows: u64,
    /// Wall time spent in the node, summed over its spans (parallel nodes
    /// sum per-slice work, so this can exceed elapsed query time).
    pub wall_us: u64,
    /// Parallel slices claimed (0 for purely sequential nodes).
    pub slices: u64,
}

struct ExecTraceInner {
    collector: SpanCollector,
    root: u64,
    forced: bool,
    stats: Mutex<BTreeMap<String, NodeStat>>,
}

/// Per-query tracing: a handle every executor stage uses to open child
/// spans under the query's root span and fold per-node statistics
/// (`EXPLAIN ANALYZE`'s row counts, slices, and wall time).
///
/// Cloneable and thread-safe: parallel workers record concurrently.
#[derive(Clone)]
pub struct ExecTrace {
    inner: Arc<ExecTraceInner>,
}

impl fmt::Debug for ExecTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ExecTrace(root={})", self.inner.root)
    }
}

impl ExecTrace {
    /// A trace rooted at span `root` in `collector`. With `forced`, child
    /// spans record even while the collector is disabled (`EXPLAIN
    /// ANALYZE` on an untraced deployment).
    pub fn new(collector: SpanCollector, root: u64, forced: bool) -> ExecTrace {
        ExecTrace {
            inner: Arc::new(ExecTraceInner {
                collector,
                root,
                forced,
                stats: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// The query's root span id.
    pub fn root(&self) -> u64 {
        self.inner.root
    }

    /// Open a span directly under the query root.
    pub fn span(&self, kind: &'static str) -> SpanGuard {
        self.span_under(kind, self.inner.root)
    }

    /// Open a span under an explicit parent span.
    pub fn span_under(&self, kind: &'static str, parent: u64) -> SpanGuard {
        if self.inner.forced {
            self.inner.collector.forced(kind, Some(parent))
        } else {
            self.inner.collector.child(kind, parent)
        }
    }

    /// Close a node's span (labelling it with `rows`) and fold its duration
    /// plus the given counts into the node's statistics.
    pub fn close_node(&self, key: &str, mut guard: SpanGuard, rows: u64, slices: u64) {
        guard.label("rows", rows);
        let wall_us = guard.finish().map_or(0, |s| s.duration_us());
        self.add(key, rows, wall_us, slices);
    }

    /// Fold counts into a node's statistics without a span.
    pub fn add(&self, key: &str, rows: u64, wall_us: u64, slices: u64) {
        let mut stats = self.inner.stats.lock();
        let entry = stats.entry(key.to_string()).or_default();
        entry.rows += rows;
        entry.wall_us += wall_us;
        entry.slices += slices;
    }

    /// The node statistics accumulated so far, keyed by plan-node key
    /// (`scan0`, `join1`, `filter`, `aggregate`, `sort`, …).
    pub fn stats(&self) -> BTreeMap<String, NodeStat> {
        self.inner.stats.lock().clone()
    }
}

/// The partition-sliced form of a table scan.
///
/// Partitioned tables return [`TableSlices::Sliced`] so parallel workers can
/// claim independent slices; tables without exploitable structure (sys
/// tables, point reads, test tables) return everything at once. Sequential
/// execution treats both uniformly by concatenating slices in slice order —
/// which is exactly what the parallel merge reproduces, so the two paths
/// return row-for-row identical output by construction.
pub enum TableSlices {
    /// All rows materialized in one piece.
    Whole(Vec<Vec<Value>>),
    /// Independently scannable slices (usually one per grid partition).
    Sliced(Arc<dyn ScanSlices>),
}

/// A set of independently scannable slices of one table scan.
///
/// Implementations must be safe to call from several threads at once and
/// must resolve *all* per-query state (notably snapshot ids) before
/// construction, so every worker reads the same pinned snapshot.
pub trait ScanSlices: Send + Sync {
    /// Number of slices. Slice order is the table's canonical row order:
    /// concatenating `scan_slice(0..slice_count())` equals a sequential scan.
    fn slice_count(&self) -> u32;

    /// Materialize one slice's rows.
    fn scan_slice(&self, slice: u32) -> SqResult<Vec<Vec<Value>>>;

    /// Materialize one slice as columnar batches (the vectorized scan
    /// boundary), restricted to the given schema columns. `cols` is a
    /// strictly ascending subset of the table's column indices; batch
    /// column `j` holds schema column `cols[j]`. Concatenating the batches
    /// row-wise must equal [`ScanSlices::scan_slice`] projected to `cols`.
    /// The default converts the row scan; partitioned tables override it to
    /// build typed columns directly from storage without materializing the
    /// pruned cells at all.
    fn scan_slice_batches(
        &self,
        slice: u32,
        cols: &[usize],
    ) -> SqResult<Vec<crate::batch::ColumnarBatch>> {
        Ok(crate::batch::ColumnarBatch::from_rows_chunked_cols(
            &self.scan_slice(slice)?,
            cols,
        ))
    }

    /// Look up a memoized executor structure for `(kind, slice, cols)`.
    ///
    /// Sources whose scanned state is immutable (committed snapshots) may
    /// memoize derived read-only structures — decoded column batches, frozen
    /// join tables — across queries. `slice` is a slice index for per-slice
    /// structures or `u32::MAX` for whole-scan ones; `cols` is whatever
    /// column fingerprint the structure was derived under. Mutable sources
    /// keep the default no-op, which disables caching entirely.
    fn cache_get(
        &self,
        kind: &str,
        slice: u32,
        cols: &[usize],
    ) -> Option<Arc<dyn std::any::Any + Send + Sync>> {
        let _ = (kind, slice, cols);
        None
    }

    /// Store a memoized executor structure; see [`ScanSlices::cache_get`].
    fn cache_put(
        &self,
        kind: &str,
        slice: u32,
        cols: &[usize],
        value: Arc<dyn std::any::Any + Send + Sync>,
    ) {
        let _ = (kind, slice, cols, value);
    }
}

/// One slice's decoded column batches, shared via the slice source's
/// executor cache when the underlying state is immutable. Cache misses
/// decode through [`ScanSlices::scan_slice_batches`] and populate the cache;
/// sources without caching (the default hooks) just decode every time.
pub(crate) fn slice_batches_cached(
    sl: &dyn ScanSlices,
    slice: u32,
    cols: &[usize],
) -> SqResult<Vec<Arc<crate::batch::ColumnarBatch>>> {
    if let Some(hit) = sl.cache_get("batches", slice, cols) {
        if let Ok(batches) = hit.downcast::<Vec<Arc<crate::batch::ColumnarBatch>>>() {
            return Ok((*batches).clone());
        }
    }
    let batches: Vec<Arc<crate::batch::ColumnarBatch>> = sl
        .scan_slice_batches(slice, cols)?
        .into_iter()
        .map(Arc::new)
        .collect();
    sl.cache_put("batches", slice, cols, Arc::new(batches.clone()));
    Ok(batches)
}

/// A queryable table.
pub trait Table: Send + Sync {
    /// The table's name.
    fn name(&self) -> &str;

    /// The table's schema.
    fn schema(&self) -> Arc<Schema>;

    /// Materialize the rows visible to this scan. Row arity must match
    /// [`Table::schema`].
    fn scan(&self, hints: &ScanHints, ctx: &ExecContext) -> SqResult<Vec<Vec<Value>>>;

    /// Partition-aware scan entry point for parallel execution.
    ///
    /// The default materializes the whole scan as one slice; partitioned
    /// tables override it to expose per-partition slices.
    fn scan_partitions(&self, hints: &ScanHints, ctx: &ExecContext) -> SqResult<TableSlices> {
        Ok(TableSlices::Whole(self.scan(hints, ctx)?))
    }

    /// Estimated row count this scan would materialize, from whatever
    /// statistics the table keeps (the stats catalog's write-path
    /// accounting for grid tables). `None` (the default) means no estimate
    /// is available and `EXPLAIN` omits the annotation.
    fn estimated_rows(&self, _hints: &ScanHints) -> Option<u64> {
        None
    }

    /// Whether this table reads pinned snapshot versions (so its scans can
    /// carry a per-snapshot staleness bound). Live and sys tables keep the
    /// default.
    fn is_snapshot(&self) -> bool {
        false
    }
}

/// A source of tables plus the snapshot metadata queries need.
pub trait Catalog: Send + Sync {
    /// Resolve a table by name.
    fn table(&self, name: &str) -> Option<Arc<dyn Table>>;

    /// Names of all tables (for error messages and discovery).
    fn table_names(&self) -> Vec<String>;

    /// Snapshot metadata captured at query start; live-only catalogs return
    /// an empty context.
    fn snapshot_context(&self) -> (Option<SnapshotId>, Vec<SnapshotId>) {
        (None, Vec::new())
    }

    /// Event-time staleness bound of a committed snapshot, in microseconds:
    /// how far behind real time a scan pinned to `ssid` reads. `None` (the
    /// default, and the answer for unknown or pre-watermark snapshots)
    /// omits the `EXPLAIN ANALYZE` annotation.
    fn snapshot_staleness_us(&self, _ssid: SnapshotId) -> Option<u64> {
        None
    }
}

/// An in-memory table for tests and examples.
pub struct MemTable {
    name: String,
    schema: Arc<Schema>,
    rows: Vec<Vec<Value>>,
}

impl MemTable {
    /// Build from a schema and rows; panics on arity mismatch (programming
    /// error in test setup).
    pub fn new(name: impl Into<String>, schema: Arc<Schema>, rows: Vec<Vec<Value>>) -> MemTable {
        for r in &rows {
            assert_eq!(r.len(), schema.len(), "row arity must match schema");
        }
        MemTable {
            name: name.into(),
            schema,
            rows,
        }
    }
}

impl Table for MemTable {
    fn name(&self) -> &str {
        &self.name
    }

    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn scan(&self, _hints: &ScanHints, _ctx: &ExecContext) -> SqResult<Vec<Vec<Value>>> {
        Ok(self.rows.clone())
    }
}

/// A catalog over a fixed set of [`MemTable`]s.
pub struct MemCatalog {
    tables: Vec<Arc<dyn Table>>,
}

impl MemCatalog {
    /// Build from tables.
    pub fn new(tables: Vec<Arc<dyn Table>>) -> MemCatalog {
        MemCatalog { tables }
    }
}

impl Catalog for MemCatalog {
    fn table(&self, name: &str) -> Option<Arc<dyn Table>> {
        self.tables.iter().find(|t| t.name() == name).cloned()
    }

    fn table_names(&self) -> Vec<String> {
        self.tables.iter().map(|t| t.name().to_string()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squery_common::schema::schema;
    use squery_common::DataType;

    #[test]
    fn mem_table_scans_its_rows() {
        let s = schema(vec![("a", DataType::Int)]);
        let t = MemTable::new("t", s, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        let rows = t
            .scan(&ScanHints::default(), &ExecContext::live_only(0))
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(t.name(), "t");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn mem_table_rejects_bad_rows() {
        let s = schema(vec![("a", DataType::Int), ("b", DataType::Int)]);
        MemTable::new("t", s, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn mem_catalog_resolves_by_name() {
        let s = schema(vec![("a", DataType::Int)]);
        let t: Arc<dyn Table> = Arc::new(MemTable::new("orders", s, vec![]));
        let c = MemCatalog::new(vec![t]);
        assert!(c.table("orders").is_some());
        assert!(c.table("nope").is_none());
        assert_eq!(c.table_names(), vec!["orders"]);
        assert_eq!(c.snapshot_context(), (None, Vec::new()));
    }

    #[test]
    fn default_hints_scan_latest() {
        let h = ScanHints::default();
        assert_eq!(h.ssid, SsidMode::Latest);
        assert!(h.key_eq.is_none());
    }
}
