//! Pretty-printing of parsed queries back to SQL text.
//!
//! Useful for logging and debugging planner issues, and — because printing
//! then re-parsing must yield the same AST — a strong property-based check
//! on the parser itself (`tests/property_tests.rs` in the workspace root
//! exercises it; `roundtrips` below covers the corpus).

use crate::ast::{
    AggregateFunc, BinaryOp, Expr, Join, JoinCondition, Query, SelectItem, TableRef, UnaryOp,
};
use squery_common::Value;
use std::fmt;

fn quote_ident(name: &str) -> String {
    let plain = !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_alphanumeric() || c == '_');
    if plain {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\"\""))
    }
}

fn quote_str(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match item {
                SelectItem::Wildcard => write!(f, "*")?,
                SelectItem::Expr { expr, alias } => {
                    write!(f, "{expr}")?;
                    if let Some(a) = alias {
                        write!(f, " AS {}", quote_ident(a))?;
                    }
                }
            }
        }
        write!(f, " FROM {}", self.from)?;
        for join in &self.joins {
            write!(f, " {join}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, k) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", k.expr)?;
                if k.desc {
                    write!(f, " DESC")?;
                }
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", quote_ident(&self.name))?;
        if let Some(a) = &self.alias {
            write!(f, " AS {}", quote_ident(a))?;
        }
        Ok(())
    }
}

impl fmt::Display for Join {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JOIN {}", self.table)?;
        match &self.condition {
            JoinCondition::Using(cols) => {
                write!(f, " USING(")?;
                for (i, c) in cols.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", quote_ident(c))?;
                }
                write!(f, ")")
            }
            JoinCondition::On(e) => write!(f, " ON {e}"),
        }
    }
}

fn op_str(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::Or => "OR",
        BinaryOp::And => "AND",
        BinaryOp::Eq => "=",
        BinaryOp::NotEq => "<>",
        BinaryOp::Lt => "<",
        BinaryOp::LtEq => "<=",
        BinaryOp::Gt => ">",
        BinaryOp::GtEq => ">=",
        BinaryOp::Add => "+",
        BinaryOp::Sub => "-",
        BinaryOp::Mul => "*",
        BinaryOp::Div => "/",
        BinaryOp::Mod => "%",
    }
}

fn literal_sql(v: &Value) -> String {
    match v {
        Value::Null => "NULL".into(),
        Value::Bool(true) => "TRUE".into(),
        Value::Bool(false) => "FALSE".into(),
        Value::Int(i) => {
            if *i < 0 {
                format!("({i})")
            } else {
                i.to_string()
            }
        }
        Value::Float(x) => {
            let s = if x.fract() == 0.0 && x.is_finite() {
                format!("{x:.1}")
            } else {
                x.to_string()
            };
            if *x < 0.0 {
                format!("({s})")
            } else {
                s
            }
        }
        Value::Str(s) => quote_str(s),
        // Remaining kinds have no literal syntax; show a readable stand-in
        // (they cannot appear in parsed queries, only constructed ASTs).
        other => format!("/*{}*/NULL", other.type_name()),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { qualifier, name } => {
                if let Some(q) = qualifier {
                    write!(f, "{}.{}", quote_ident(q), quote_ident(name))
                } else {
                    write!(f, "{}", quote_ident(name))
                }
            }
            Expr::Literal(v) => write!(f, "{}", literal_sql(v)),
            Expr::LocalTimestamp => write!(f, "LOCALTIMESTAMP"),
            Expr::Binary { left, op, right } => {
                write!(f, "({left} {} {right})", op_str(*op))
            }
            Expr::Unary { op, operand } => match op {
                UnaryOp::Not => write!(f, "(NOT {operand})"),
                UnaryOp::Neg => write!(f, "(- {operand})"),
            },
            Expr::IsNull { operand, negated } => {
                write!(
                    f,
                    "({operand} IS {}NULL)",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::InList {
                operand,
                list,
                negated,
            } => {
                write!(f, "({operand} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            Expr::Between {
                operand,
                low,
                high,
                negated,
            } => write!(
                f,
                "({operand} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Like {
                operand,
                pattern,
                negated,
            } => write!(
                f,
                "({operand} {}LIKE {pattern})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Case {
                operand,
                branches,
                else_result,
            } => {
                write!(f, "CASE")?;
                if let Some(o) = operand {
                    write!(f, " {o}")?;
                }
                for (w, t) in branches {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_result {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Func { func, args } => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Aggregate { func, arg } => {
                let name = match func {
                    AggregateFunc::Count => "COUNT",
                    AggregateFunc::Sum => "SUM",
                    AggregateFunc::Avg => "AVG",
                    AggregateFunc::Min => "MIN",
                    AggregateFunc::Max => "MAX",
                };
                match arg {
                    None => write!(f, "{name}(*)"),
                    Some(a) => write!(f, "{name}({a})"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;
    use squery_qcommerce_corpus::*;

    /// A corpus of queries covering the whole dialect; printing then
    /// re-parsing must reproduce the identical AST.
    mod squery_qcommerce_corpus {
        pub const CORPUS: &[&str] = &[
            "SELECT * FROM orders",
            "SELECT a, b AS bee, a + b FROM t",
            r#"SELECT COUNT(*), deliveryZone FROM "snapshot_orderinfo"
               JOIN "snapshot_orderstate" USING(partitionKey)
               WHERE (orderState='VENDOR_ACCEPTED' AND lateTimestamp<LOCALTIMESTAMP)
               GROUP BY deliveryZone"#,
            "SELECT count, total FROM snapshot_average WHERE ssid=9 AND key=2",
            "SELECT x FROM t WHERE a BETWEEN 1 AND 10 OR b NOT LIKE 'x%'",
            "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t",
            "SELECT CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM t",
            "SELECT ABS(a), COALESCE(a, b, 0), UPPER(z) FROM t",
            "SELECT o.total FROM orders o JOIN info i ON o.k = i.k WHERE i.c IS NOT NULL",
            "SELECT zone, SUM(x) AS s FROM t GROUP BY zone HAVING SUM(x) > 5 ORDER BY s DESC, zone LIMIT 3",
            "SELECT a FROM t WHERE a IN (1, 2, 3) AND b NOT IN (4)",
            "SELECT -5, (-2.5), 'it''s', TRUE, FALSE, NULL FROM t",
            "SELECT a FROM \"weird table\" WHERE \"odd col\" = 1",
        ];
    }

    #[test]
    fn roundtrips() {
        for sql in CORPUS {
            let once = parse(sql).unwrap_or_else(|e| panic!("corpus parse failed: {e}\n{sql}"));
            let printed = once.to_string();
            let twice = parse(&printed).unwrap_or_else(|e| {
                panic!("reparse failed: {e}\noriginal: {sql}\nprinted: {printed}")
            });
            assert_eq!(once, twice, "roundtrip changed the AST\nprinted: {printed}");
        }
    }

    #[test]
    fn printing_is_stable() {
        // print(parse(print(q))) == print(q): printing is a fixpoint.
        for sql in CORPUS {
            let once = parse(sql).unwrap().to_string();
            let twice = parse(&once).unwrap().to_string();
            assert_eq!(once, twice);
        }
    }
}
