//! The SQL entry point and result sets.

use crate::ast::Statement;
use crate::catalog::{Catalog, ExecContext, ExecTrace, SsidMode};
use crate::exec::execute;
use crate::explain::{render_plan, render_plan_analyzed};
use crate::parser::parse_statement;
use crate::plan::plan;
use parking_lot::Mutex;
use squery_common::config::Parallelism;
use squery_common::metrics::SharedHistogram;
use squery_common::schema::{schema, Schema};
use squery_common::telemetry::{Counter, EventKind, MetricsRegistry};
use squery_common::time::Clock;
use squery_common::trace::SpanCollector;
use squery_common::{DataType, SqResult, Value};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// A query result: schema plus rows.
#[derive(Clone, Debug)]
pub struct ResultSet {
    schema: Arc<Schema>,
    rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Build a result set (row arity is trusted to match the schema).
    pub fn new(schema: Arc<Schema>, rows: Vec<Vec<Value>>) -> ResultSet {
        ResultSet { schema, rows }
    }

    /// Output schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Consume into rows.
    pub fn into_rows(self) -> Vec<Vec<Value>> {
        self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All values of the named column.
    pub fn column(&self, name: &str) -> Option<Vec<Value>> {
        let i = self.schema.index_of(name)?;
        Some(self.rows.iter().map(|r| r[i].clone()).collect())
    }

    /// The single value of a one-row result, by column name.
    pub fn scalar(&self, name: &str) -> Option<&Value> {
        if self.rows.len() != 1 {
            return None;
        }
        let i = self.schema.index_of(name)?;
        self.rows.first().map(|r| &r[i])
    }

    /// Rows sorted by total value order (handy for order-insensitive asserts).
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }
}

impl fmt::Display for ResultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self
            .schema
            .fields()
            .iter()
            .map(|x| x.name.as_str())
            .collect();
        writeln!(f, "{}", names.join(" | "))?;
        writeln!(f, "{}", "-".repeat(names.join(" | ").len().max(4)))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        write!(f, "({} rows)", self.rows.len())
    }
}

/// Default number of entries the query log retains.
pub const DEFAULT_QUERY_LOG_CAPACITY: usize = 1024;

/// One completed (or failed) query, as exposed by `sys_query_log`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryLogEntry {
    /// Monotonic sequence number (assigned at record time).
    pub seq: u64,
    /// SQL text, truncated to the event prefix length.
    pub sql: String,
    /// `"ok"` or `"error: …"`.
    pub status: String,
    /// Result rows (0 on error).
    pub rows: u64,
    /// Parse phase wall time.
    pub parse_us: u64,
    /// Plan phase wall time.
    pub plan_us: u64,
    /// Execute phase wall time (0 on error or plain `EXPLAIN`).
    pub exec_us: u64,
    /// End-to-end wall time inside the engine.
    pub total_us: u64,
    /// Degree of parallelism the query ran with.
    pub dop: u64,
    /// Engine-clock microsecond timestamp at query start.
    pub started_at_us: u64,
}

struct QueryLogState {
    next_seq: u64,
    capacity: usize,
    entries: VecDeque<QueryLogEntry>,
}

/// A bounded, shareable ring of per-query records — the backing store of the
/// `sys_query_log` virtual table. Oldest entries are evicted at capacity.
#[derive(Clone)]
pub struct QueryLog {
    inner: Arc<Mutex<QueryLogState>>,
}

impl QueryLog {
    /// A log retaining up to `capacity` entries (min 1).
    pub fn new(capacity: usize) -> QueryLog {
        QueryLog {
            inner: Arc::new(Mutex::new(QueryLogState {
                next_seq: 0,
                capacity: capacity.max(1),
                entries: VecDeque::new(),
            })),
        }
    }

    /// Record one query, assigning its sequence number.
    pub fn record(&self, mut entry: QueryLogEntry) {
        let mut state = self.inner.lock();
        entry.seq = state.next_seq;
        state.next_seq += 1;
        if state.entries.len() == state.capacity {
            state.entries.pop_front();
        }
        state.entries.push_back(entry);
    }

    /// All retained entries, oldest first.
    pub fn snapshot(&self) -> Vec<QueryLogEntry> {
        self.inner.lock().entries.iter().cloned().collect()
    }
}

impl Default for QueryLog {
    fn default() -> Self {
        QueryLog::new(DEFAULT_QUERY_LOG_CAPACITY)
    }
}

/// Per-engine query telemetry handles, resolved once at attach time.
struct EngineTelemetry {
    queries: Counter,
    query_errors: Counter,
    rows_scanned: Counter,
    rows_returned: Counter,
    parse_us: SharedHistogram,
    plan_us: SharedHistogram,
    exec_us: SharedHistogram,
    parallel_workers: SharedHistogram,
    worker_scan_us: SharedHistogram,
    registry: MetricsRegistry,
}

/// Longest SQL prefix kept in `query_started`/`query_finished` event details.
const EVENT_SQL_PREFIX: usize = 120;

fn sql_prefix(sql: &str) -> String {
    let trimmed = sql.trim();
    let mut end = trimmed.len().min(EVENT_SQL_PREFIX);
    while !trimmed.is_char_boundary(end) {
        end -= 1;
    }
    if end < trimmed.len() {
        format!("{}…", &trimmed[..end])
    } else {
        trimmed.to_string()
    }
}

/// The SQL engine: parse → plan → execute against a catalog.
pub struct SqlEngine<C: Catalog> {
    catalog: C,
    clock: Clock,
    telemetry: Option<EngineTelemetry>,
    parallelism: Parallelism,
    query_log: Option<QueryLog>,
    vectorized: bool,
}

impl<C: Catalog> SqlEngine<C> {
    /// An engine over `catalog` with a wall clock for `LOCALTIMESTAMP`.
    pub fn new(catalog: C) -> SqlEngine<C> {
        SqlEngine {
            catalog,
            clock: Clock::wall(),
            telemetry: None,
            parallelism: Parallelism::sequential(),
            query_log: None,
            vectorized: true,
        }
    }

    /// An engine with an explicit clock (deterministic tests).
    pub fn with_clock(catalog: C, clock: Clock) -> SqlEngine<C> {
        SqlEngine {
            catalog,
            clock,
            telemetry: None,
            parallelism: Parallelism::sequential(),
            query_log: None,
            vectorized: true,
        }
    }

    /// Enable or disable the columnar batch kernels for every query this
    /// engine runs (default enabled; plan shapes the kernels don't cover
    /// fall back to the row engine either way).
    pub fn with_vectorized(mut self, vectorized: bool) -> SqlEngine<C> {
        self.vectorized = vectorized;
        self
    }

    /// Record every query (including failures) into `log`.
    pub fn with_query_log(mut self, log: QueryLog) -> SqlEngine<C> {
        self.query_log = Some(log);
        self
    }

    /// Set the default degree of parallelism for every query this engine
    /// runs (overridable per query via [`SqlEngine::query_with_dop`]).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> SqlEngine<C> {
        self.parallelism = parallelism;
        self
    }

    /// The engine's default parallelism.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Attach a metrics registry: per-phase latency histograms
    /// (`query_parse_us`/`query_plan_us`/`query_exec_us`), query and row
    /// counters, and `query_started`/`query_finished` events.
    pub fn with_telemetry(mut self, registry: &MetricsRegistry) -> SqlEngine<C> {
        self.telemetry = Some(EngineTelemetry {
            queries: registry.counter("queries_total", &[]),
            query_errors: registry.counter("query_errors_total", &[]),
            rows_scanned: registry.counter("query_rows_scanned_total", &[]),
            rows_returned: registry.counter("query_rows_returned_total", &[]),
            parse_us: registry.histogram("query_parse_us", &[]),
            plan_us: registry.histogram("query_plan_us", &[]),
            exec_us: registry.histogram("query_exec_us", &[]),
            parallel_workers: registry.histogram("sql_parallel_workers", &[]),
            worker_scan_us: registry.histogram("sql_worker_scan_us", &[]),
            registry: registry.clone(),
        });
        self
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &C {
        &self.catalog
    }

    /// Run one `SELECT` statement.
    ///
    /// The snapshot context (latest committed id + retained ids) and
    /// `LOCALTIMESTAMP` are captured once, before execution, so every table
    /// in the query reads one consistent snapshot.
    pub fn query(&self, sql: &str) -> SqResult<ResultSet> {
        self.query_at(sql, self.parallelism, self.vectorized)
    }

    /// Run one `SELECT` with an explicit degree of parallelism, overriding
    /// the engine default for this query only. `dop == 1` is sequential
    /// execution; the morsel size is inherited from the engine default.
    pub fn query_with_dop(&self, sql: &str, dop: usize) -> SqResult<ResultSet> {
        self.query_at(
            sql,
            Parallelism {
                degree: dop.max(1),
                ..self.parallelism
            },
            self.vectorized,
        )
    }

    /// Run one `SELECT` with both the degree of parallelism and the
    /// vectorized-execution toggle chosen per query. `vectorized: false`
    /// forces the row engine even where the batch kernels would apply —
    /// used by the equivalence tests and the bench gate to compare paths.
    pub fn query_with_opts(&self, sql: &str, dop: usize, vectorized: bool) -> SqResult<ResultSet> {
        self.query_at(
            sql,
            Parallelism {
                degree: dop.max(1),
                ..self.parallelism
            },
            vectorized,
        )
    }

    fn query_at(
        &self,
        sql: &str,
        parallelism: Parallelism,
        vectorized: bool,
    ) -> SqResult<ResultSet> {
        match &self.telemetry {
            None => self.run(sql, None, parallelism, vectorized),
            Some(tel) => {
                tel.queries.inc();
                tel.parallel_workers.record(parallelism.degree as u64);
                tel.registry
                    .event(EventKind::QueryStarted, None, None, None, sql_prefix(sql));
                let started = Instant::now();
                let result = self.run(sql, Some(tel), parallelism, vectorized);
                let elapsed = started.elapsed().as_micros() as u64;
                match &result {
                    Ok(rs) => {
                        tel.rows_returned.add(rs.len() as u64);
                        tel.registry.event(
                            EventKind::QueryFinished,
                            None,
                            None,
                            Some(elapsed),
                            format!("{} rows", rs.len()),
                        );
                    }
                    Err(e) => {
                        tel.query_errors.inc();
                        tel.registry.event(
                            EventKind::QueryFinished,
                            None,
                            None,
                            Some(elapsed),
                            format!("error: {e}"),
                        );
                    }
                }
                result
            }
        }
    }

    fn run(
        &self,
        sql: &str,
        tel: Option<&EngineTelemetry>,
        parallelism: Parallelism,
        vectorized: bool,
    ) -> SqResult<ResultSet> {
        let started_at_us = self.clock.now_micros();
        let t0 = Instant::now();
        let mut phases = Phases::default();
        let result = self.run_statement(sql, tel, parallelism, vectorized, &mut phases);
        if let Some(log) = &self.query_log {
            let (status, rows) = match &result {
                Ok(rs) => ("ok".to_string(), rs.len() as u64),
                Err(e) => (format!("error: {e}"), 0),
            };
            log.record(QueryLogEntry {
                seq: 0,
                sql: sql_prefix(sql),
                status,
                rows,
                parse_us: phases.parse_us,
                plan_us: phases.plan_us,
                exec_us: phases.exec_us,
                total_us: t0.elapsed().as_micros() as u64,
                dop: parallelism.degree as u64,
                started_at_us,
            });
        }
        result
    }

    fn run_statement(
        &self,
        sql: &str,
        tel: Option<&EngineTelemetry>,
        parallelism: Parallelism,
        vectorized: bool,
        phases: &mut Phases,
    ) -> SqResult<ResultSet> {
        let t0 = Instant::now();
        let stmt = parse_statement(sql)?;
        let t1 = Instant::now();
        phases.parse_us = (t1 - t0).as_micros() as u64;
        let (explain, analyze, ast) = match stmt {
            Statement::Select(q) => (false, false, q),
            Statement::Explain { analyze, query } => (true, analyze, query),
        };
        let physical = plan(&ast, &self.catalog)?;
        let t2 = Instant::now();
        phases.plan_us = (t2 - t1).as_micros() as u64;

        if explain && !analyze {
            if let Some(t) = tel {
                t.parse_us.record(phases.parse_us);
                t.plan_us.record(phases.plan_us);
                t.exec_us.record(0);
            }
            return Ok(plan_result(render_plan(&physical)));
        }

        // A traced query (collector enabled) gets a root "query" span; an
        // `EXPLAIN ANALYZE` gets a *forced* one that records even while the
        // deployment is untraced — into the shared collector when the engine
        // has telemetry (so `sys_spans` sees the profile), else a throwaway.
        let trace_root = if analyze {
            let collector = tel
                .map(|t| t.registry.spans().clone())
                .unwrap_or_else(|| SpanCollector::new(self.clock.clone()));
            let mut root = collector.forced("query", None);
            root.label("sql", sql_prefix(sql));
            root.label("dop", parallelism.degree);
            let id = root.id().expect("forced span is active");
            Some((ExecTrace::new(collector, id, true), root))
        } else {
            tel.map(|t| t.registry.spans().clone())
                .filter(|c| c.is_enabled())
                .and_then(|collector| {
                    let mut root = collector.start("query");
                    root.label("sql", sql_prefix(sql));
                    root.label("dop", parallelism.degree);
                    root.id()
                        .map(|id| (ExecTrace::new(collector, id, false), root))
                })
        };

        let (query_ssid, retained_ssids) = self.catalog.snapshot_context();
        let ctx = ExecContext {
            query_ssid,
            retained_ssids,
            now_micros: self.clock.now_micros() as i64,
            rows_scanned: tel.map(|t| t.rows_scanned.clone()),
            parallelism,
            worker_scan_us: tel.map(|t| t.worker_scan_us.clone()),
            trace: trace_root.as_ref().map(|(t, _)| t.clone()),
            vectorized,
        };
        let exec_result = execute(&physical, &ctx);
        phases.exec_us = t2.elapsed().as_micros() as u64;
        let rows = match exec_result {
            Ok(rows) => rows,
            Err(e) => {
                if let Some((_, mut root)) = trace_root {
                    root.label("error", &e);
                }
                return Err(e);
            }
        };
        if let Some(t) = tel {
            t.parse_us.record(phases.parse_us);
            t.plan_us.record(phases.plan_us);
            t.exec_us.record(phases.exec_us);
        }
        if let Some((trace, mut root)) = trace_root {
            root.label("rows", rows.len());
            drop(root);
            if analyze {
                // Per-scan staleness bounds: every snapshot scan reports how
                // far behind real time the version it pinned reads. An
                // ssid-range scan reads several versions; its result is as
                // fresh as the latest one, so that bound annotates it.
                let mut staleness = std::collections::BTreeMap::new();
                for (i, scan) in physical.scans.iter().enumerate() {
                    if !scan.table.is_snapshot() {
                        continue;
                    }
                    let ssid = match scan.hints.ssid {
                        SsidMode::Exact(s) => Some(s),
                        SsidMode::Latest | SsidMode::AllRetained => ctx.query_ssid,
                    };
                    if let Some(st) = ssid.and_then(|s| self.catalog.snapshot_staleness_us(s)) {
                        staleness.insert(format!("scan{i}"), st);
                    }
                }
                return Ok(plan_result(render_plan_analyzed(
                    &physical,
                    &trace.stats(),
                    &staleness,
                )));
            }
        }
        Ok(ResultSet::new(Arc::clone(&physical.output_schema), rows))
    }
}

/// Per-query phase timings, captured for the query log.
#[derive(Default)]
struct Phases {
    parse_us: u64,
    plan_us: u64,
    exec_us: u64,
}

/// An `EXPLAIN` result: one `plan` text column, one row per plan line.
fn plan_result(lines: Vec<String>) -> ResultSet {
    let schema = schema(vec![("plan", DataType::Str)]);
    let rows = lines.into_iter().map(|l| vec![Value::str(l)]).collect();
    ResultSet::new(schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemCatalog, MemTable};
    use squery_common::schema::schema;
    use squery_common::DataType;

    fn engine() -> SqlEngine<MemCatalog> {
        let t = schema(vec![("a", DataType::Int), ("b", DataType::Str)]);
        let rows = vec![
            vec![Value::Int(1), Value::str("x")],
            vec![Value::Int(2), Value::str("y")],
        ];
        SqlEngine::new(MemCatalog::new(vec![Arc::new(MemTable::new("t", t, rows))]))
    }

    #[test]
    fn end_to_end_query() {
        let rs = engine().query("SELECT a FROM t WHERE b = 'y'").unwrap();
        assert_eq!(rs.rows(), &[vec![Value::Int(2)]]);
        assert_eq!(rs.len(), 1);
        assert!(!rs.is_empty());
    }

    #[test]
    fn column_and_scalar_accessors() {
        let rs = engine().query("SELECT a, b FROM t").unwrap();
        assert_eq!(rs.column("a").unwrap(), vec![Value::Int(1), Value::Int(2)]);
        assert!(rs.column("nope").is_none());
        assert!(rs.scalar("a").is_none(), "two rows: no scalar");
        let rs = engine().query("SELECT COUNT(*) AS n FROM t").unwrap();
        assert_eq!(rs.scalar("n"), Some(&Value::Int(2)));
    }

    #[test]
    fn display_renders_table() {
        let rs = engine().query("SELECT a FROM t ORDER BY a").unwrap();
        let text = rs.to_string();
        assert!(text.contains('a'), "{text}");
        assert!(text.contains("(2 rows)"), "{text}");
    }

    #[test]
    fn parse_errors_bubble_up() {
        assert!(engine().query("SELEC a FROM t").is_err());
        assert!(engine().query("SELECT a FROM missing").is_err());
    }

    #[test]
    fn localtimestamp_uses_engine_clock() {
        let t = schema(vec![("a", DataType::Int)]);
        let clock = Clock::manual();
        clock.advance(42);
        let e = SqlEngine::with_clock(
            MemCatalog::new(vec![Arc::new(MemTable::new(
                "t",
                t,
                vec![vec![Value::Int(1)]],
            ))]),
            clock,
        );
        let rs = e.query("SELECT LOCALTIMESTAMP AS now FROM t").unwrap();
        assert_eq!(rs.scalar("now"), Some(&Value::Timestamp(42)));
    }

    #[test]
    fn telemetry_records_phases_counters_and_events() {
        use squery_common::telemetry::MetricsRegistry;
        let registry = MetricsRegistry::new();
        let t = schema(vec![("a", DataType::Int), ("b", DataType::Str)]);
        let rows = vec![
            vec![Value::Int(1), Value::str("x")],
            vec![Value::Int(2), Value::str("y")],
        ];
        let e = SqlEngine::new(MemCatalog::new(vec![Arc::new(MemTable::new("t", t, rows))]))
            .with_telemetry(&registry);

        let rs = e.query("SELECT a FROM t WHERE b = 'y'").unwrap();
        assert_eq!(rs.len(), 1);
        assert!(e.query("SELECT nope FROM missing").is_err());

        assert_eq!(registry.counter_value("queries_total", &[]), Some(2));
        assert_eq!(registry.counter_value("query_errors_total", &[]), Some(1));
        // Scan saw both base rows; only one survived the filter.
        assert_eq!(
            registry.counter_value("query_rows_scanned_total", &[]),
            Some(2)
        );
        assert_eq!(
            registry.counter_value("query_rows_returned_total", &[]),
            Some(1)
        );
        let phase_counts: Vec<u64> = registry
            .histograms()
            .into_iter()
            .filter(|(k, _)| k.name.starts_with("query_"))
            .map(|(_, h)| h.count())
            .collect();
        assert_eq!(phase_counts, vec![1, 1, 1], "parse/plan/exec each once");
        let kinds: Vec<&str> = registry
            .events()
            .snapshot()
            .iter()
            .map(|ev| ev.kind.as_str())
            .collect();
        assert_eq!(
            kinds,
            vec![
                "query_started",
                "query_finished",
                "query_started",
                "query_finished"
            ]
        );
        let events = registry.events().snapshot();
        assert!(events[1].detail.contains("1 rows"), "{}", events[1].detail);
        assert!(
            events[3].detail.starts_with("error:"),
            "{}",
            events[3].detail
        );
    }

    #[test]
    fn event_sql_detail_is_truncated() {
        let long = format!("SELECT a FROM t WHERE b = '{}'", "x".repeat(500));
        let prefix = super::sql_prefix(&long);
        assert!(prefix.chars().count() <= super::EVENT_SQL_PREFIX + 1);
        assert!(prefix.ends_with('…'));
        assert_eq!(super::sql_prefix("SELECT 1 FROM t"), "SELECT 1 FROM t");
    }

    #[test]
    fn sorted_rows_helper() {
        let rs = engine().query("SELECT a FROM t ORDER BY a DESC").unwrap();
        assert_eq!(rs.rows()[0], vec![Value::Int(2)]);
        assert_eq!(rs.sorted_rows()[0], vec![Value::Int(1)]);
    }

    #[test]
    fn explain_renders_plan_without_executing() {
        use squery_common::telemetry::MetricsRegistry;
        let registry = MetricsRegistry::new();
        let t = schema(vec![("a", DataType::Int), ("b", DataType::Str)]);
        let rows = vec![vec![Value::Int(1), Value::str("x")]];
        let e = SqlEngine::new(MemCatalog::new(vec![Arc::new(MemTable::new("t", t, rows))]))
            .with_telemetry(&registry);
        let rs = e.query("EXPLAIN SELECT a FROM t WHERE b = 'x'").unwrap();
        assert_eq!(rs.schema().fields()[0].name, "plan");
        let lines: Vec<String> = rs.rows().iter().map(|r| r[0].to_string()).collect();
        assert!(lines[0].contains("Project [a]"), "{lines:?}");
        assert!(lines.iter().any(|l| l.contains("Filter")), "{lines:?}");
        assert!(lines.iter().any(|l| l.contains("Scan t")), "{lines:?}");
        // Plan-only: nothing was scanned.
        assert_eq!(
            registry.counter_value("query_rows_scanned_total", &[]),
            Some(0)
        );
    }

    #[test]
    fn explain_analyze_annotates_nodes_and_records_spans() {
        use squery_common::telemetry::MetricsRegistry;
        let registry = MetricsRegistry::new();
        assert!(!registry.spans().is_enabled(), "tracing off by default");
        let t = schema(vec![("a", DataType::Int), ("b", DataType::Str)]);
        let rows = vec![
            vec![Value::Int(1), Value::str("x")],
            vec![Value::Int(2), Value::str("y")],
        ];
        let e = SqlEngine::new(MemCatalog::new(vec![Arc::new(MemTable::new("t", t, rows))]))
            .with_telemetry(&registry);
        let rs = e
            .query("EXPLAIN ANALYZE SELECT a FROM t WHERE b = 'y'")
            .unwrap();
        let lines: Vec<String> = rs.rows().iter().map(|r| r[0].to_string()).collect();
        let scan = lines.iter().find(|l| l.contains("Scan t")).unwrap();
        assert!(scan.contains("rows=2"), "{scan}");
        let filter = lines.iter().find(|l| l.contains("Filter")).unwrap();
        assert!(filter.contains("rows=1"), "{filter}");

        // Forced spans landed in the shared (disabled) collector, and the
        // reported wall time is exactly the scan span's duration.
        let spans = registry.spans().snapshot();
        let root = spans.iter().find(|s| s.kind == "query").unwrap();
        let scan_span = spans
            .iter()
            .find(|s| s.kind == "scan" && s.label("node") == Some("scan0"))
            .unwrap();
        assert_eq!(scan_span.parent, Some(root.id));
        assert!(
            scan.contains(&format!("wall={}us", scan_span.duration_us())),
            "{scan} vs span {}us",
            scan_span.duration_us()
        );
    }

    #[test]
    fn explain_analyze_works_without_telemetry() {
        let rs = engine()
            .query("EXPLAIN ANALYZE SELECT a, b FROM t ORDER BY a LIMIT 1")
            .unwrap();
        let lines: Vec<String> = rs.rows().iter().map(|r| r[0].to_string()).collect();
        assert!(lines[0].contains("Sort (keys: 1, limit: 1)"), "{lines:?}");
        assert!(lines[0].contains("rows=1"), "{lines:?}");
        assert!(
            lines.iter().any(|l| l.contains("Scan t (rows=2")),
            "{lines:?}"
        );
    }

    #[test]
    fn enabled_collector_traces_plain_queries() {
        use squery_common::telemetry::MetricsRegistry;
        let registry = MetricsRegistry::new();
        registry.spans().set_enabled(true);
        let t = schema(vec![("a", DataType::Int), ("b", DataType::Str)]);
        let rows = vec![vec![Value::Int(1), Value::str("x")]];
        let e = SqlEngine::new(MemCatalog::new(vec![Arc::new(MemTable::new("t", t, rows))]))
            .with_telemetry(&registry);
        e.query("SELECT a FROM t").unwrap();
        let spans = registry.spans().snapshot();
        let root = spans.iter().find(|s| s.kind == "query").unwrap();
        assert_eq!(root.label("dop"), Some("1"));
        assert_eq!(root.label("rows"), Some("1"));
        assert!(spans
            .iter()
            .any(|s| s.kind == "scan" && s.parent == Some(root.id)));
    }

    #[test]
    fn query_log_records_successes_and_failures() {
        let log = QueryLog::new(2);
        let e = engine().with_query_log(log.clone());
        e.query("SELECT a FROM t").unwrap();
        assert!(e.query("SELECT nope FROM t").is_err());
        e.query("SELECT b FROM t WHERE a = 2").unwrap();
        // Capacity 2: the first entry was evicted.
        let entries = log.snapshot();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].seq, 1);
        assert!(entries[0].status.starts_with("error:"), "{:?}", entries[0]);
        assert_eq!(entries[0].rows, 0);
        assert_eq!(entries[1].seq, 2);
        assert_eq!(entries[1].status, "ok");
        assert_eq!(entries[1].rows, 1);
        assert_eq!(entries[1].dop, 1);
        assert_eq!(entries[1].sql, "SELECT b FROM t WHERE a = 2");
    }
}
