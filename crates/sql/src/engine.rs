//! The SQL entry point and result sets.

use crate::catalog::{Catalog, ExecContext};
use crate::exec::execute;
use crate::parser::parse;
use crate::plan::plan;
use squery_common::config::Parallelism;
use squery_common::metrics::SharedHistogram;
use squery_common::schema::Schema;
use squery_common::telemetry::{Counter, EventKind, MetricsRegistry};
use squery_common::time::Clock;
use squery_common::{SqResult, Value};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// A query result: schema plus rows.
#[derive(Clone, Debug)]
pub struct ResultSet {
    schema: Arc<Schema>,
    rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Build a result set (row arity is trusted to match the schema).
    pub fn new(schema: Arc<Schema>, rows: Vec<Vec<Value>>) -> ResultSet {
        ResultSet { schema, rows }
    }

    /// Output schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Consume into rows.
    pub fn into_rows(self) -> Vec<Vec<Value>> {
        self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All values of the named column.
    pub fn column(&self, name: &str) -> Option<Vec<Value>> {
        let i = self.schema.index_of(name)?;
        Some(self.rows.iter().map(|r| r[i].clone()).collect())
    }

    /// The single value of a one-row result, by column name.
    pub fn scalar(&self, name: &str) -> Option<&Value> {
        if self.rows.len() != 1 {
            return None;
        }
        let i = self.schema.index_of(name)?;
        self.rows.first().map(|r| &r[i])
    }

    /// Rows sorted by total value order (handy for order-insensitive asserts).
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }
}

impl fmt::Display for ResultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self
            .schema
            .fields()
            .iter()
            .map(|x| x.name.as_str())
            .collect();
        writeln!(f, "{}", names.join(" | "))?;
        writeln!(f, "{}", "-".repeat(names.join(" | ").len().max(4)))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        write!(f, "({} rows)", self.rows.len())
    }
}

/// Per-engine query telemetry handles, resolved once at attach time.
struct EngineTelemetry {
    queries: Counter,
    query_errors: Counter,
    rows_scanned: Counter,
    rows_returned: Counter,
    parse_us: SharedHistogram,
    plan_us: SharedHistogram,
    exec_us: SharedHistogram,
    parallel_workers: SharedHistogram,
    worker_scan_us: SharedHistogram,
    registry: MetricsRegistry,
}

/// Longest SQL prefix kept in `query_started`/`query_finished` event details.
const EVENT_SQL_PREFIX: usize = 120;

fn sql_prefix(sql: &str) -> String {
    let trimmed = sql.trim();
    let mut end = trimmed.len().min(EVENT_SQL_PREFIX);
    while !trimmed.is_char_boundary(end) {
        end -= 1;
    }
    if end < trimmed.len() {
        format!("{}…", &trimmed[..end])
    } else {
        trimmed.to_string()
    }
}

/// The SQL engine: parse → plan → execute against a catalog.
pub struct SqlEngine<C: Catalog> {
    catalog: C,
    clock: Clock,
    telemetry: Option<EngineTelemetry>,
    parallelism: Parallelism,
}

impl<C: Catalog> SqlEngine<C> {
    /// An engine over `catalog` with a wall clock for `LOCALTIMESTAMP`.
    pub fn new(catalog: C) -> SqlEngine<C> {
        SqlEngine {
            catalog,
            clock: Clock::wall(),
            telemetry: None,
            parallelism: Parallelism::sequential(),
        }
    }

    /// An engine with an explicit clock (deterministic tests).
    pub fn with_clock(catalog: C, clock: Clock) -> SqlEngine<C> {
        SqlEngine {
            catalog,
            clock,
            telemetry: None,
            parallelism: Parallelism::sequential(),
        }
    }

    /// Set the default degree of parallelism for every query this engine
    /// runs (overridable per query via [`SqlEngine::query_with_dop`]).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> SqlEngine<C> {
        self.parallelism = parallelism;
        self
    }

    /// The engine's default parallelism.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Attach a metrics registry: per-phase latency histograms
    /// (`query_parse_us`/`query_plan_us`/`query_exec_us`), query and row
    /// counters, and `query_started`/`query_finished` events.
    pub fn with_telemetry(mut self, registry: &MetricsRegistry) -> SqlEngine<C> {
        self.telemetry = Some(EngineTelemetry {
            queries: registry.counter("queries_total", &[]),
            query_errors: registry.counter("query_errors_total", &[]),
            rows_scanned: registry.counter("query_rows_scanned_total", &[]),
            rows_returned: registry.counter("query_rows_returned_total", &[]),
            parse_us: registry.histogram("query_parse_us", &[]),
            plan_us: registry.histogram("query_plan_us", &[]),
            exec_us: registry.histogram("query_exec_us", &[]),
            parallel_workers: registry.histogram("sql_parallel_workers", &[]),
            worker_scan_us: registry.histogram("sql_worker_scan_us", &[]),
            registry: registry.clone(),
        });
        self
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &C {
        &self.catalog
    }

    /// Run one `SELECT` statement.
    ///
    /// The snapshot context (latest committed id + retained ids) and
    /// `LOCALTIMESTAMP` are captured once, before execution, so every table
    /// in the query reads one consistent snapshot.
    pub fn query(&self, sql: &str) -> SqResult<ResultSet> {
        self.query_at(sql, self.parallelism)
    }

    /// Run one `SELECT` with an explicit degree of parallelism, overriding
    /// the engine default for this query only. `dop == 1` is sequential
    /// execution; the morsel size is inherited from the engine default.
    pub fn query_with_dop(&self, sql: &str, dop: usize) -> SqResult<ResultSet> {
        self.query_at(
            sql,
            Parallelism {
                degree: dop.max(1),
                ..self.parallelism
            },
        )
    }

    fn query_at(&self, sql: &str, parallelism: Parallelism) -> SqResult<ResultSet> {
        match &self.telemetry {
            None => self.run(sql, None, parallelism),
            Some(tel) => {
                tel.queries.inc();
                tel.parallel_workers.record(parallelism.degree as u64);
                tel.registry
                    .event(EventKind::QueryStarted, None, None, None, sql_prefix(sql));
                let started = Instant::now();
                let result = self.run(sql, Some(tel), parallelism);
                let elapsed = started.elapsed().as_micros() as u64;
                match &result {
                    Ok(rs) => {
                        tel.rows_returned.add(rs.len() as u64);
                        tel.registry.event(
                            EventKind::QueryFinished,
                            None,
                            None,
                            Some(elapsed),
                            format!("{} rows", rs.len()),
                        );
                    }
                    Err(e) => {
                        tel.query_errors.inc();
                        tel.registry.event(
                            EventKind::QueryFinished,
                            None,
                            None,
                            Some(elapsed),
                            format!("error: {e}"),
                        );
                    }
                }
                result
            }
        }
    }

    fn run(
        &self,
        sql: &str,
        tel: Option<&EngineTelemetry>,
        parallelism: Parallelism,
    ) -> SqResult<ResultSet> {
        let t0 = Instant::now();
        let ast = parse(sql)?;
        let t1 = Instant::now();
        let physical = plan(&ast, &self.catalog)?;
        let t2 = Instant::now();
        let (query_ssid, retained_ssids) = self.catalog.snapshot_context();
        let ctx = ExecContext {
            query_ssid,
            retained_ssids,
            now_micros: self.clock.now_micros() as i64,
            rows_scanned: tel.map(|t| t.rows_scanned.clone()),
            parallelism,
            worker_scan_us: tel.map(|t| t.worker_scan_us.clone()),
        };
        let rows = execute(&physical, &ctx)?;
        if let Some(t) = tel {
            t.parse_us.record((t1 - t0).as_micros() as u64);
            t.plan_us.record((t2 - t1).as_micros() as u64);
            t.exec_us.record(t2.elapsed().as_micros() as u64);
        }
        Ok(ResultSet::new(Arc::clone(&physical.output_schema), rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemCatalog, MemTable};
    use squery_common::schema::schema;
    use squery_common::DataType;

    fn engine() -> SqlEngine<MemCatalog> {
        let t = schema(vec![("a", DataType::Int), ("b", DataType::Str)]);
        let rows = vec![
            vec![Value::Int(1), Value::str("x")],
            vec![Value::Int(2), Value::str("y")],
        ];
        SqlEngine::new(MemCatalog::new(vec![Arc::new(MemTable::new("t", t, rows))]))
    }

    #[test]
    fn end_to_end_query() {
        let rs = engine().query("SELECT a FROM t WHERE b = 'y'").unwrap();
        assert_eq!(rs.rows(), &[vec![Value::Int(2)]]);
        assert_eq!(rs.len(), 1);
        assert!(!rs.is_empty());
    }

    #[test]
    fn column_and_scalar_accessors() {
        let rs = engine().query("SELECT a, b FROM t").unwrap();
        assert_eq!(rs.column("a").unwrap(), vec![Value::Int(1), Value::Int(2)]);
        assert!(rs.column("nope").is_none());
        assert!(rs.scalar("a").is_none(), "two rows: no scalar");
        let rs = engine().query("SELECT COUNT(*) AS n FROM t").unwrap();
        assert_eq!(rs.scalar("n"), Some(&Value::Int(2)));
    }

    #[test]
    fn display_renders_table() {
        let rs = engine().query("SELECT a FROM t ORDER BY a").unwrap();
        let text = rs.to_string();
        assert!(text.contains('a'), "{text}");
        assert!(text.contains("(2 rows)"), "{text}");
    }

    #[test]
    fn parse_errors_bubble_up() {
        assert!(engine().query("SELEC a FROM t").is_err());
        assert!(engine().query("SELECT a FROM missing").is_err());
    }

    #[test]
    fn localtimestamp_uses_engine_clock() {
        let t = schema(vec![("a", DataType::Int)]);
        let clock = Clock::manual();
        clock.advance(42);
        let e = SqlEngine::with_clock(
            MemCatalog::new(vec![Arc::new(MemTable::new(
                "t",
                t,
                vec![vec![Value::Int(1)]],
            ))]),
            clock,
        );
        let rs = e.query("SELECT LOCALTIMESTAMP AS now FROM t").unwrap();
        assert_eq!(rs.scalar("now"), Some(&Value::Timestamp(42)));
    }

    #[test]
    fn telemetry_records_phases_counters_and_events() {
        use squery_common::telemetry::MetricsRegistry;
        let registry = MetricsRegistry::new();
        let t = schema(vec![("a", DataType::Int), ("b", DataType::Str)]);
        let rows = vec![
            vec![Value::Int(1), Value::str("x")],
            vec![Value::Int(2), Value::str("y")],
        ];
        let e = SqlEngine::new(MemCatalog::new(vec![Arc::new(MemTable::new("t", t, rows))]))
            .with_telemetry(&registry);

        let rs = e.query("SELECT a FROM t WHERE b = 'y'").unwrap();
        assert_eq!(rs.len(), 1);
        assert!(e.query("SELECT nope FROM missing").is_err());

        assert_eq!(registry.counter_value("queries_total", &[]), Some(2));
        assert_eq!(registry.counter_value("query_errors_total", &[]), Some(1));
        // Scan saw both base rows; only one survived the filter.
        assert_eq!(
            registry.counter_value("query_rows_scanned_total", &[]),
            Some(2)
        );
        assert_eq!(
            registry.counter_value("query_rows_returned_total", &[]),
            Some(1)
        );
        let phase_counts: Vec<u64> = registry
            .histograms()
            .into_iter()
            .filter(|(k, _)| k.name.starts_with("query_"))
            .map(|(_, h)| h.count())
            .collect();
        assert_eq!(phase_counts, vec![1, 1, 1], "parse/plan/exec each once");
        let kinds: Vec<&str> = registry
            .events()
            .snapshot()
            .iter()
            .map(|ev| ev.kind.as_str())
            .collect();
        assert_eq!(
            kinds,
            vec![
                "query_started",
                "query_finished",
                "query_started",
                "query_finished"
            ]
        );
        let events = registry.events().snapshot();
        assert!(events[1].detail.contains("1 rows"), "{}", events[1].detail);
        assert!(
            events[3].detail.starts_with("error:"),
            "{}",
            events[3].detail
        );
    }

    #[test]
    fn event_sql_detail_is_truncated() {
        let long = format!("SELECT a FROM t WHERE b = '{}'", "x".repeat(500));
        let prefix = super::sql_prefix(&long);
        assert!(prefix.chars().count() <= super::EVENT_SQL_PREFIX + 1);
        assert!(prefix.ends_with('…'));
        assert_eq!(super::sql_prefix("SELECT 1 FROM t"), "SELECT 1 FROM t");
    }

    #[test]
    fn sorted_rows_helper() {
        let rs = engine().query("SELECT a FROM t ORDER BY a DESC").unwrap();
        assert_eq!(rs.rows()[0], vec![Value::Int(2)]);
        assert_eq!(rs.sorted_rows()[0], vec![Value::Int(1)]);
    }
}
