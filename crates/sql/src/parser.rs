//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::lexer::{tokenize, Token};
use squery_common::{SqError, SqResult, Value};

/// Parse a single `SELECT` statement.
pub fn parse(sql: &str) -> SqResult<Query> {
    match parse_statement(sql)? {
        Statement::Select(q) => Ok(q),
        Statement::Explain { .. } => Err(SqError::Parse(
            "EXPLAIN is a statement, not a query; use the engine's query entry point".into(),
        )),
    }
}

/// Parse a top-level statement: `SELECT …` or `EXPLAIN [ANALYZE] SELECT …`.
pub fn parse_statement(sql: &str) -> SqResult<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let explain = p.eat_keyword("EXPLAIN");
    let analyze = explain && p.eat_keyword("ANALYZE");
    let q = p.parse_query()?;
    p.eat_if(&Token::Semicolon);
    if let Some(tok) = p.peek() {
        return Err(SqError::Parse(format!("unexpected trailing token '{tok}'")));
    }
    Ok(if explain {
        Statement::Explain { analyze, query: q }
    } else {
        Statement::Select(q)
    })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> SqResult<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| SqError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_if(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) && {
            self.pos += 1;
            true
        }
    }

    fn expect(&mut self, t: &Token) -> SqResult<()> {
        let got = self.next()?;
        if &got == t {
            Ok(())
        } else {
            Err(SqError::Parse(format!("expected '{t}', found '{got}'")))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> SqResult<()> {
        let got = self.next()?;
        match got {
            Token::Keyword(k) if k == kw => Ok(()),
            other => Err(SqError::Parse(format!("expected {kw}, found '{other}'"))),
        }
    }

    fn parse_query(&mut self) -> SqResult<Query> {
        self.expect_keyword("SELECT")?;
        let items = self.parse_select_items()?;
        self.expect_keyword("FROM")?;
        let from = self.parse_table_ref()?;
        let mut joins = Vec::new();
        loop {
            let inner = self.eat_keyword("INNER");
            if self.eat_keyword("JOIN") {
                joins.push(self.parse_join()?);
            } else if inner {
                return Err(SqError::Parse("expected JOIN after INNER".into()));
            } else {
                break;
            }
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let group_by = if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            self.parse_expr_list()?
        } else {
            Vec::new()
        };
        let having = if self.eat_keyword("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let order_by = if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            let mut keys = Vec::new();
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                keys.push(OrderKey { expr, desc });
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            keys
        } else {
            Vec::new()
        };
        let limit = if self.eat_keyword("LIMIT") {
            match self.next()? {
                Token::IntLit(n) if n >= 0 => Some(n as u64),
                other => {
                    return Err(SqError::Parse(format!(
                        "LIMIT expects a non-negative integer, found '{other}'"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Query {
            items,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn parse_select_items(&mut self) -> SqResult<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            if self.eat_if(&Token::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.parse_expr()?;
                let alias = self.parse_alias()?;
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        Ok(items)
    }

    /// `AS ident`, or a bare identifier alias.
    fn parse_alias(&mut self) -> SqResult<Option<String>> {
        if self.eat_keyword("AS") {
            match self.next()? {
                Token::Ident(name) | Token::QuotedIdent(name) => Ok(Some(name)),
                other => Err(SqError::Parse(format!(
                    "expected alias identifier, found '{other}'"
                ))),
            }
        } else if let Some(Token::Ident(name)) = self.peek() {
            let name = name.clone();
            self.pos += 1;
            Ok(Some(name))
        } else {
            Ok(None)
        }
    }

    fn parse_table_ref(&mut self) -> SqResult<TableRef> {
        let name = match self.next()? {
            Token::Ident(n) | Token::QuotedIdent(n) => n,
            other => {
                return Err(SqError::Parse(format!(
                    "expected table name, found '{other}'"
                )))
            }
        };
        let alias = self.parse_alias()?;
        Ok(TableRef { name, alias })
    }

    fn parse_join(&mut self) -> SqResult<Join> {
        let table = self.parse_table_ref()?;
        if self.eat_keyword("USING") {
            self.expect(&Token::LParen)?;
            let mut cols = Vec::new();
            loop {
                match self.next()? {
                    Token::Ident(n) | Token::QuotedIdent(n) => cols.push(n),
                    other => {
                        return Err(SqError::Parse(format!(
                            "expected column in USING, found '{other}'"
                        )))
                    }
                }
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            Ok(Join {
                table,
                condition: JoinCondition::Using(cols),
            })
        } else if self.eat_keyword("ON") {
            let expr = self.parse_expr()?;
            Ok(Join {
                table,
                condition: JoinCondition::On(expr),
            })
        } else {
            Err(SqError::Parse("JOIN requires USING(...) or ON".into()))
        }
    }

    fn parse_expr_list(&mut self) -> SqResult<Vec<Expr>> {
        let mut list = vec![self.parse_expr()?];
        while self.eat_if(&Token::Comma) {
            list.push(self.parse_expr()?);
        }
        Ok(list)
    }

    fn parse_expr(&mut self) -> SqResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> SqResult<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("OR") {
            let right = self.parse_and()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> SqResult<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("AND") {
            let right = self.parse_not()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> SqResult<Expr> {
        if self.eat_keyword("NOT") {
            let operand = self.parse_not()?;
            Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(operand),
            })
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> SqResult<Expr> {
        let left = self.parse_additive()?;
        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                operand: Box::new(left),
                negated,
            });
        }
        // [NOT] IN / BETWEEN / LIKE.
        let negated = if matches!(self.peek(), Some(Token::Keyword(k)) if k == "NOT") {
            // Only treat NOT as a negator when a postfix predicate follows.
            let next = self.tokens.get(self.pos + 1);
            if matches!(next, Some(Token::Keyword(k)) if k == "IN" || k == "BETWEEN" || k == "LIKE")
            {
                self.pos += 1;
                true
            } else {
                false
            }
        } else {
            false
        };
        if self.eat_keyword("IN") {
            self.expect(&Token::LParen)?;
            let list = self.parse_expr_list()?;
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList {
                operand: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_keyword("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_keyword("AND")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                operand: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword("LIKE") {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                operand: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(SqError::Parse(
                "expected IN, BETWEEN or LIKE after NOT".into(),
            ));
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinaryOp::Eq),
            Some(Token::NotEq) => Some(BinaryOp::NotEq),
            Some(Token::Lt) => Some(BinaryOp::Lt),
            Some(Token::LtEq) => Some(BinaryOp::LtEq),
            Some(Token::Gt) => Some(BinaryOp::Gt),
            Some(Token::GtEq) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive()?;
            Ok(Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            })
        } else {
            Ok(left)
        }
    }

    fn parse_additive(&mut self) -> SqResult<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> SqResult<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                Some(Token::Percent) => BinaryOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> SqResult<Expr> {
        if self.eat_if(&Token::Minus) {
            let operand = self.parse_unary()?;
            // Constant-fold negative literals for nicer ASTs.
            if let Expr::Literal(Value::Int(n)) = operand {
                return Ok(Expr::Literal(Value::Int(-n)));
            }
            if let Expr::Literal(Value::Float(f)) = operand {
                return Ok(Expr::Literal(Value::Float(-f)));
            }
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                operand: Box::new(operand),
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> SqResult<Expr> {
        let token = self.next()?;
        match token {
            Token::IntLit(n) => Ok(Expr::Literal(Value::Int(n))),
            Token::FloatLit(f) => Ok(Expr::Literal(Value::Float(f))),
            Token::StringLit(s) => Ok(Expr::Literal(Value::str(s))),
            Token::LParen => {
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Keyword(kw) => match kw.as_str() {
                "NULL" => Ok(Expr::Literal(Value::Null)),
                "TRUE" => Ok(Expr::Literal(Value::Bool(true))),
                "FALSE" => Ok(Expr::Literal(Value::Bool(false))),
                "LOCALTIMESTAMP" => Ok(Expr::LocalTimestamp),
                "CASE" => self.parse_case(),
                other => Err(SqError::Parse(format!(
                    "unexpected keyword '{other}' in expression"
                ))),
            },
            Token::Ident(name) | Token::QuotedIdent(name) => {
                // Aggregate call? Only when the (unquoted) name is followed by
                // a parenthesis — `count` on its own is a plain column, as in
                // the paper's Figure 4 (`SELECT count, total FROM average`).
                let func = match name.to_ascii_uppercase().as_str() {
                    "COUNT" => Some(AggregateFunc::Count),
                    "SUM" => Some(AggregateFunc::Sum),
                    "AVG" => Some(AggregateFunc::Avg),
                    "MIN" => Some(AggregateFunc::Min),
                    "MAX" => Some(AggregateFunc::Max),
                    _ => None,
                };
                if func.is_none() && self.peek() == Some(&Token::LParen) {
                    if let Some(scalar) = crate::ast::ScalarFunc::by_name(&name) {
                        self.expect(&Token::LParen)?;
                        let args = if self.eat_if(&Token::RParen) {
                            Vec::new()
                        } else {
                            let args = self.parse_expr_list()?;
                            self.expect(&Token::RParen)?;
                            args
                        };
                        return Ok(Expr::Func { func: scalar, args });
                    }
                }
                if let Some(func) = func {
                    if self.eat_if(&Token::LParen) {
                        if func == AggregateFunc::Count && self.eat_if(&Token::Star) {
                            self.expect(&Token::RParen)?;
                            return Ok(Expr::Aggregate { func, arg: None });
                        }
                        if self.eat_keyword("DISTINCT") {
                            return Err(SqError::Parse(
                                "DISTINCT aggregates are not supported".into(),
                            ));
                        }
                        let arg = self.parse_expr()?;
                        self.expect(&Token::RParen)?;
                        return Ok(Expr::Aggregate {
                            func,
                            arg: Some(Box::new(arg)),
                        });
                    }
                }
                if self.eat_if(&Token::Dot) {
                    match self.next()? {
                        Token::Ident(col) | Token::QuotedIdent(col) => Ok(Expr::Column {
                            qualifier: Some(name),
                            name: col,
                        }),
                        other => Err(SqError::Parse(format!(
                            "expected column after '{name}.', found '{other}'"
                        ))),
                    }
                } else {
                    Ok(Expr::Column {
                        qualifier: None,
                        name,
                    })
                }
            }
            other => Err(SqError::Parse(format!(
                "unexpected token '{other}' in expression"
            ))),
        }
    }

    /// `CASE [operand] WHEN … THEN … [WHEN …]* [ELSE …] END`.
    fn parse_case(&mut self) -> SqResult<Expr> {
        let operand = if matches!(self.peek(), Some(Token::Keyword(k)) if k == "WHEN") {
            None
        } else {
            Some(Box::new(self.parse_expr()?))
        };
        let mut branches = Vec::new();
        while self.eat_keyword("WHEN") {
            let when = self.parse_expr()?;
            self.expect_keyword("THEN")?;
            let then = self.parse_expr()?;
            branches.push((when, then));
        }
        if branches.is_empty() {
            return Err(SqError::Parse("CASE requires at least one WHEN".into()));
        }
        let else_result = if self.eat_keyword("ELSE") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword("END")?;
        Ok(Expr::Case {
            operand,
            branches,
            else_result,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_select() {
        let q = parse("SELECT * FROM orders").unwrap();
        assert_eq!(q.items, vec![SelectItem::Wildcard]);
        assert_eq!(q.from.name, "orders");
        assert!(q.joins.is_empty());
        assert!(q.where_clause.is_none());
    }

    #[test]
    fn projections_with_aliases() {
        let q = parse("SELECT count AS c, total t, count + total FROM average").unwrap();
        assert_eq!(q.items.len(), 3);
        match &q.items[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("c")),
            _ => panic!(),
        }
        match &q.items[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("t")),
            _ => panic!(),
        }
    }

    #[test]
    fn paper_query_1_parses() {
        let q = parse(
            r#"SELECT COUNT(*), deliveryZone FROM "snapshot_orderinfo"
               JOIN "snapshot_orderstate" USING(partitionKey)
               WHERE (orderState='VENDOR_ACCEPTED' AND lateTimestamp<LOCALTIMESTAMP)
               GROUP BY deliveryZone;"#,
        )
        .unwrap();
        assert_eq!(q.from.name, "snapshot_orderinfo");
        assert_eq!(q.joins.len(), 1);
        assert_eq!(
            q.joins[0].condition,
            JoinCondition::Using(vec!["partitionKey".into()])
        );
        assert_eq!(q.group_by, vec![Expr::col("deliveryZone")]);
        assert!(q.where_clause.is_some());
        assert_eq!(
            q.items[0],
            SelectItem::Expr {
                expr: Expr::Aggregate {
                    func: AggregateFunc::Count,
                    arg: None
                },
                alias: None
            }
        );
    }

    #[test]
    fn paper_query_4_or_chain_parses() {
        let q = parse(
            r#"SELECT COUNT(*), deliveryZone FROM "snapshot_orderinfo"
               JOIN "snapshot_orderstate" USING(partitionKey)
               WHERE orderState='PICKED_UP' OR orderState='LEFT_PICKUP'
                  OR orderState='NEAR_CUSTOMER'
               GROUP BY deliveryZone;"#,
        )
        .unwrap();
        // OR is left-associative: ((a OR b) OR c).
        match q.where_clause.unwrap() {
            Expr::Binary {
                op: BinaryOp::Or, ..
            } => {}
            other => panic!("expected OR, got {other:?}"),
        }
    }

    #[test]
    fn figure_4_snapshot_query_parses() {
        let q = parse("SELECT count, total FROM snapshot_average WHERE ssid=9 AND key=2").unwrap();
        assert_eq!(q.from.name, "snapshot_average");
        let w = q.where_clause.unwrap();
        assert!(matches!(
            w,
            Expr::Binary {
                op: BinaryOp::And,
                ..
            }
        ));
    }

    #[test]
    fn operator_precedence() {
        let q = parse("SELECT 1 + 2 * 3 FROM t").unwrap();
        match &q.items[0] {
            SelectItem::Expr { expr, .. } => match expr {
                Expr::Binary {
                    op: BinaryOp::Add,
                    right,
                    ..
                } => assert!(matches!(
                    **right,
                    Expr::Binary {
                        op: BinaryOp::Mul,
                        ..
                    }
                )),
                other => panic!("expected Add at top, got {other:?}"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let q = parse("SELECT * FROM t WHERE a=1 OR b=2 AND c=3").unwrap();
        match q.where_clause.unwrap() {
            Expr::Binary {
                op: BinaryOp::Or,
                right,
                ..
            } => assert!(matches!(
                *right,
                Expr::Binary {
                    op: BinaryOp::And,
                    ..
                }
            )),
            other => panic!("expected OR at top, got {other:?}"),
        }
    }

    #[test]
    fn is_null_and_in_list() {
        let q = parse("SELECT * FROM t WHERE a IS NOT NULL AND b IN (1, 2, 3)").unwrap();
        let w = q.where_clause.unwrap();
        let mut found_isnull = false;
        let mut found_in = false;
        fn walk(e: &Expr, isnull: &mut bool, inlist: &mut bool) {
            match e {
                Expr::IsNull { negated: true, .. } => *isnull = true,
                Expr::InList { list, .. } => {
                    assert_eq!(list.len(), 3);
                    *inlist = true;
                }
                Expr::Binary { left, right, .. } => {
                    walk(left, isnull, inlist);
                    walk(right, isnull, inlist);
                }
                _ => {}
            }
        }
        walk(&w, &mut found_isnull, &mut found_in);
        assert!(found_isnull && found_in);
    }

    #[test]
    fn order_by_and_limit() {
        let q = parse("SELECT * FROM t ORDER BY a DESC, b LIMIT 10").unwrap();
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].desc);
        assert!(!q.order_by[1].desc);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn having_clause() {
        let q = parse("SELECT COUNT(*), zone FROM t GROUP BY zone HAVING COUNT(*) > 5").unwrap();
        assert!(q.having.is_some());
        assert!(q.having.unwrap().contains_aggregate());
    }

    #[test]
    fn qualified_columns_and_on_join() {
        let q =
            parse("SELECT o.total FROM orders o JOIN info i ON o.partitionKey = i.partitionKey")
                .unwrap();
        assert_eq!(q.from.alias.as_deref(), Some("o"));
        match &q.joins[0].condition {
            JoinCondition::On(Expr::Binary {
                op: BinaryOp::Eq, ..
            }) => {}
            other => panic!("expected ON equality, got {other:?}"),
        }
    }

    #[test]
    fn negative_literals_fold() {
        let q = parse("SELECT -5, -2.5 FROM t").unwrap();
        assert_eq!(
            q.items[0],
            SelectItem::Expr {
                expr: Expr::Literal(Value::Int(-5)),
                alias: None
            }
        );
        assert_eq!(
            q.items[1],
            SelectItem::Expr {
                expr: Expr::Literal(Value::Float(-2.5)),
                alias: None
            }
        );
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(
            parse("SELECT * FROM t JOIN u").is_err(),
            "join needs USING/ON"
        );
        assert!(parse("SELECT * FROM t LIMIT x").is_err());
        assert!(parse("SELECT * FROM t extra garbage ,").is_err());
        assert!(parse("SELECT COUNT(DISTINCT a) FROM t").is_err());
        assert!(parse("SELECT * FROM t INNER WHERE a=1").is_err());
    }

    #[test]
    fn between_and_like() {
        let q = parse("SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b NOT LIKE 'x%'").unwrap();
        let w = q.where_clause.unwrap();
        let mut saw_between = false;
        let mut saw_like = false;
        fn walk(e: &Expr, b: &mut bool, l: &mut bool) {
            match e {
                Expr::Between { negated: false, .. } => *b = true,
                Expr::Like { negated: true, .. } => *l = true,
                Expr::Binary { left, right, .. } => {
                    walk(left, b, l);
                    walk(right, b, l);
                }
                _ => {}
            }
        }
        walk(&w, &mut saw_between, &mut saw_like);
        assert!(saw_between && saw_like, "{w:?}");
        assert!(parse("SELECT * FROM t WHERE a NOT BETWEEN 1 AND 2").is_ok());
        assert!(parse("SELECT * FROM t WHERE a BETWEEN 1").is_err());
    }

    #[test]
    fn case_expressions() {
        let q = parse("SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t").unwrap();
        match &q.items[0] {
            SelectItem::Expr {
                expr:
                    Expr::Case {
                        operand: None,
                        branches,
                        else_result: Some(_),
                    },
                ..
            } => assert_eq!(branches.len(), 1),
            other => panic!("expected searched CASE, got {other:?}"),
        }
        // Simple CASE with operand, no ELSE.
        let q = parse("SELECT CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM t").unwrap();
        match &q.items[0] {
            SelectItem::Expr {
                expr:
                    Expr::Case {
                        operand: Some(_),
                        branches,
                        else_result: None,
                    },
                ..
            } => assert_eq!(branches.len(), 2),
            other => panic!("expected simple CASE, got {other:?}"),
        }
        assert!(parse("SELECT CASE END FROM t").is_err(), "WHEN required");
        assert!(
            parse("SELECT CASE WHEN a THEN 1 FROM t").is_err(),
            "END required"
        );
    }

    #[test]
    fn scalar_functions() {
        let q = parse("SELECT ABS(a), UPPER(b), COALESCE(a, b, 0) FROM t").unwrap();
        assert_eq!(q.items.len(), 3);
        match &q.items[2] {
            SelectItem::Expr {
                expr: Expr::Func { func, args },
                ..
            } => {
                assert_eq!(*func, ScalarFunc::Coalesce);
                assert_eq!(args.len(), 3);
            }
            other => panic!("expected COALESCE, got {other:?}"),
        }
        // An unknown name with parens is not silently a function: it errors
        // at plan time (unknown column here at parse it's a column? it parses
        // as aggregate/func check fails -> falls through to column + parens
        // mismatch).
        assert!(parse("SELECT nosuchfn(a) FROM t").is_err());
    }

    #[test]
    fn count_star_vs_multiplication() {
        let q = parse("SELECT COUNT(*), a * b FROM t").unwrap();
        assert_eq!(q.items.len(), 2);
        match &q.items[1] {
            SelectItem::Expr {
                expr: Expr::Binary {
                    op: BinaryOp::Mul, ..
                },
                ..
            } => {}
            other => panic!("expected multiplication, got {other:?}"),
        }
    }
}
