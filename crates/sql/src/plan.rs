//! Binder and planner: AST → physical plan.
//!
//! Responsibilities:
//! * resolve tables against the catalog and columns against table schemas
//!   (with alias qualification and ambiguity detection),
//! * decompose joins into hash-join key pairs (`USING` columns are merged;
//!   `ON` must be an equality conjunction),
//! * extract scan hints — `ssid` handling per [`crate::catalog::SsidMode`]
//!   and `partitionKey = <literal>` point reads,
//! * split aggregation from scalar projection, rewriting post-aggregate
//!   expressions over the `[group keys… , aggregates…]` intermediate row.

use crate::ast::{AggregateFunc, BinaryOp, Expr, Join, JoinCondition, Query, SelectItem, TableRef};
use crate::catalog::{Catalog, ScanHints, SsidMode, Table};
use crate::expr::BoundExpr;
use squery_common::schema::{Field, Schema, KEY_COLUMN, SSID_COLUMN};
use squery_common::{DataType, SnapshotId, SqError, SqResult, Value};
use std::sync::Arc;

/// One table scan in the plan.
pub struct ScanNode {
    /// The table to scan.
    pub table: Arc<dyn Table>,
    /// Planner-extracted hints.
    pub hints: ScanHints,
    /// Column count of the table's rows.
    pub width: usize,
    /// Catalog row estimate for this scan under its final hints
    /// ([`Table::estimated_rows`]); `None` when the table keeps no
    /// statistics. Rendered by `EXPLAIN` as `[est_rows=N]`.
    pub est_rows: Option<u64>,
}

/// One hash join step, combining the accumulated left row with a scan.
pub struct JoinNode {
    /// Key column indexes into the combined left row.
    pub left_keys: Vec<usize>,
    /// Key column indexes into the right table's row.
    pub right_keys: Vec<usize>,
    /// Right columns dropped from the output (the `USING` columns), sorted.
    pub right_drop: Vec<usize>,
    /// Cost-model decision: build the hash table on the *left* scan and
    /// probe with the right one. `false` (the default, and the only choice
    /// when no statistics exist) keeps query-text order: build right,
    /// probe left. Either way the output row layout is
    /// `[left columns… , kept right columns…]`; only the *order of output
    /// rows* follows the probe side.
    pub build_left: bool,
    /// The `(left, right)` row estimates the decision was made from;
    /// `None` when either side has no statistics (decision defaulted).
    /// Rendered by `EXPLAIN` as `[build=… est_rows=N]`.
    pub build_est: Option<(u64, u64)>,
}

/// Grouping and aggregate evaluation.
pub struct AggregateNode {
    /// Group-key expressions over the combined source row.
    pub group_exprs: Vec<BoundExpr>,
    /// Distinct aggregate calls; `None` argument means `COUNT(*)`.
    pub aggs: Vec<(AggregateFunc, Option<BoundExpr>)>,
}

/// One output column.
pub struct ProjItem {
    /// Bound over the combined source row, or over the post-aggregate row
    /// (`[group keys…, aggregate results…]`) when the plan aggregates.
    pub expr: BoundExpr,
    /// Output column name.
    pub name: String,
}

/// A fully bound physical plan.
pub struct PhysicalPlan {
    /// Scans; the first is the `FROM` table, the rest join in order.
    pub scans: Vec<ScanNode>,
    /// Join steps (`scans.len() - 1` of them).
    pub joins: Vec<JoinNode>,
    /// `WHERE`, bound over the combined row.
    pub filter: Option<BoundExpr>,
    /// Aggregation, if the query groups or uses aggregate functions.
    pub aggregate: Option<AggregateNode>,
    /// Output projections.
    pub projections: Vec<ProjItem>,
    /// `HAVING`, bound over the post-aggregate row.
    pub having: Option<BoundExpr>,
    /// Sort keys, bound like the projections, plus descending flags.
    pub order_by: Vec<(BoundExpr, bool)>,
    /// Row-count cap.
    pub limit: Option<u64>,
    /// Schema of the produced rows.
    pub output_schema: Arc<Schema>,
}

#[derive(Clone)]
struct BindEntry {
    alias: String,
    name: String,
    index: usize,
    dtype: DataType,
}

/// Column-name resolution over the combined row.
#[derive(Clone, Default)]
struct Binder {
    entries: Vec<BindEntry>,
}

impl Binder {
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> SqResult<usize> {
        let mut indexes: Vec<usize> = self
            .entries
            .iter()
            .filter(|e| e.name == name && qualifier.is_none_or(|q| e.alias == q))
            .map(|e| e.index)
            .collect();
        indexes.sort_unstable();
        indexes.dedup();
        match indexes.len() {
            0 => Err(SqError::Plan(format!(
                "unknown column '{}{}'",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default(),
                name
            ))),
            1 => Ok(indexes[0]),
            _ => Err(SqError::Plan(format!("ambiguous column '{name}'"))),
        }
    }

    fn width(&self) -> usize {
        self.entries.iter().map(|e| e.index + 1).max().unwrap_or(0)
    }

    /// Output fields in combined-row order (first entry per index wins).
    fn output_fields(&self) -> Vec<Field> {
        let width = self.width();
        let mut fields: Vec<Option<Field>> = vec![None; width];
        let mut name_counts: std::collections::HashMap<&str, usize> =
            std::collections::HashMap::new();
        for e in &self.entries {
            *name_counts.entry(e.name.as_str()).or_insert(0) += 1;
        }
        for e in &self.entries {
            if fields[e.index].is_none() {
                // Qualify names that appear in more than one table.
                let unique = self
                    .entries
                    .iter()
                    .filter(|o| o.name == e.name)
                    .map(|o| o.index)
                    .collect::<std::collections::HashSet<_>>()
                    .len()
                    == 1;
                let name = if unique {
                    e.name.clone()
                } else {
                    format!("{}.{}", e.alias, e.name)
                };
                fields[e.index] = Some(Field {
                    name,
                    dtype: e.dtype,
                });
            }
        }
        fields
            .into_iter()
            .map(|f| f.expect("dense binder"))
            .collect()
    }
}

/// Plan a parsed query against a catalog.
pub fn plan(query: &Query, catalog: &dyn Catalog) -> SqResult<PhysicalPlan> {
    // --- resolve scans and build the combined binder --------------------
    let mut scans = Vec::new();
    let mut joins = Vec::new();
    let mut combined = Binder::default();
    let mut local_binders: Vec<(String, Binder)> = Vec::new(); // (alias, binder over the scan's own row)

    let base = resolve_table(catalog, &query.from)?;
    let base_alias = alias_of(&query.from);
    let base_schema = base.schema();
    let mut offset = 0usize;
    let mut local = Binder::default();
    for (i, f) in base_schema.fields().iter().enumerate() {
        let entry = BindEntry {
            alias: base_alias.clone(),
            name: f.name.clone(),
            index: i,
            dtype: f.dtype,
        };
        combined.entries.push(entry.clone());
        local.entries.push(BindEntry { index: i, ..entry });
    }
    scans.push(ScanNode {
        table: base,
        hints: ScanHints::default(),
        width: base_schema.len(),
        est_rows: None,
    });
    local_binders.push((base_alias, local));
    offset += base_schema.len();

    for join in &query.joins {
        let table = resolve_table(catalog, &join.table)?;
        let alias = alias_of(&join.table);
        let schema = table.schema();
        let mut right_local = Binder::default();
        for (i, f) in schema.fields().iter().enumerate() {
            right_local.entries.push(BindEntry {
                alias: alias.clone(),
                name: f.name.clone(),
                index: i,
                dtype: f.dtype,
            });
        }
        let node = build_join(join, &combined, &right_local)?;
        // Extend the combined binder with the kept right columns.
        let mut kept_offset = offset;
        for (i, f) in schema.fields().iter().enumerate() {
            if node.right_drop.contains(&i) {
                // The USING column: alias-qualified references to the right
                // table's copy resolve to the (already present) left index.
                let left_idx = node.left_keys[node
                    .right_keys
                    .iter()
                    .position(|rk| *rk == i)
                    .expect("dropped columns are join keys")];
                combined.entries.push(BindEntry {
                    alias: alias.clone(),
                    name: f.name.clone(),
                    index: left_idx,
                    dtype: f.dtype,
                });
            } else {
                combined.entries.push(BindEntry {
                    alias: alias.clone(),
                    name: f.name.clone(),
                    index: kept_offset,
                    dtype: f.dtype,
                });
                kept_offset += 1;
            }
        }
        offset = kept_offset;
        scans.push(ScanNode {
            table,
            hints: ScanHints::default(),
            width: schema.len(),
            est_rows: None,
        });
        local_binders.push((alias, right_local));
        joins.push(node);
    }

    // --- scan hints ------------------------------------------------------
    extract_hints(query, &mut scans, &local_binders);

    // Row estimates come after hint extraction: a key-equality hint turns a
    // full-scan estimate into a point-read estimate.
    for scan in &mut scans {
        scan.est_rows = scan.table.estimated_rows(&scan.hints);
    }

    // --- join build-side cost model --------------------------------------
    // With statistics on both sides of a single join, build the hash table
    // on the smaller scan instead of blindly following query-text order
    // (build right). Restricted to single-join plans: in a chain the left
    // input of later joins is an intermediate whose size we do not estimate.
    if joins.len() == 1 {
        if let (Some(l), Some(r)) = (scans[0].est_rows, scans[1].est_rows) {
            joins[0].build_left = l < r;
            joins[0].build_est = Some((l, r));
        }
    }

    // --- filter ----------------------------------------------------------
    let filter = query
        .where_clause
        .as_ref()
        .map(|e| bind_scalar(e, &combined))
        .transpose()?;

    // --- aggregation decision --------------------------------------------
    let any_agg = query.items.iter().any(|it| match it {
        SelectItem::Wildcard => false,
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
    }) || query.having.as_ref().is_some_and(Expr::contains_aggregate)
        || query.order_by.iter().any(|k| k.expr.contains_aggregate());
    let aggregating = any_agg || !query.group_by.is_empty();

    let mut projections = Vec::new();
    let mut having = None;
    let mut order_by = Vec::new();
    let aggregate;

    if aggregating {
        if query
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Wildcard))
        {
            return Err(SqError::Plan(
                "SELECT * cannot be combined with GROUP BY / aggregates".into(),
            ));
        }
        let group_bound: Vec<BoundExpr> = query
            .group_by
            .iter()
            .map(|e| bind_scalar(e, &combined))
            .collect::<SqResult<_>>()?;
        let mut aggs: Vec<(AggregateFunc, Option<BoundExpr>)> = Vec::new();
        for item in &query.items {
            let SelectItem::Expr { expr, alias } = item else {
                unreachable!("wildcard rejected above")
            };
            let bound = rewrite_post_agg(expr, &combined, &group_bound, &mut aggs)?;
            projections.push(ProjItem {
                expr: bound,
                name: alias.clone().unwrap_or_else(|| expr.default_name()),
            });
        }
        if let Some(h) = &query.having {
            having = Some(rewrite_post_agg(h, &combined, &group_bound, &mut aggs)?);
        }
        for key in &query.order_by {
            let bound = if let Some(proj) = alias_match(&key.expr, query, &projections) {
                proj
            } else {
                rewrite_post_agg(&key.expr, &combined, &group_bound, &mut aggs)?
            };
            order_by.push((bound, key.desc));
        }
        aggregate = Some(AggregateNode {
            group_exprs: group_bound,
            aggs,
        });
    } else {
        for item in &query.items {
            match item {
                SelectItem::Wildcard => {
                    for (i, f) in combined.output_fields().into_iter().enumerate() {
                        projections.push(ProjItem {
                            expr: BoundExpr::Column(i),
                            name: f.name,
                        });
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    projections.push(ProjItem {
                        expr: bind_scalar(expr, &combined)?,
                        name: alias.clone().unwrap_or_else(|| expr.default_name()),
                    });
                }
            }
        }
        if query.having.is_some() {
            return Err(SqError::Plan(
                "HAVING requires GROUP BY or aggregates".into(),
            ));
        }
        for key in &query.order_by {
            let bound = if let Some(proj) = alias_match(&key.expr, query, &projections) {
                proj
            } else {
                bind_scalar(&key.expr, &combined)?
            };
            order_by.push((bound, key.desc));
        }
        aggregate = None;
    }

    // --- output schema -----------------------------------------------------
    let fields = unique_fields(&projections, &combined, aggregate.is_some());
    let output_schema = Arc::new(Schema::from_fields(fields));

    Ok(PhysicalPlan {
        scans,
        joins,
        filter,
        aggregate,
        projections,
        having,
        order_by,
        limit: query.limit,
        output_schema,
    })
}

fn alias_of(t: &TableRef) -> String {
    t.alias.clone().unwrap_or_else(|| t.name.clone())
}

fn resolve_table(catalog: &dyn Catalog, t: &TableRef) -> SqResult<Arc<dyn Table>> {
    catalog.table(&t.name).ok_or_else(|| {
        let known = catalog.table_names().join(", ");
        SqError::Plan(format!("unknown table '{}' (known: {known})", t.name))
    })
}

fn build_join(join: &Join, left: &Binder, right: &Binder) -> SqResult<JoinNode> {
    match &join.condition {
        JoinCondition::Using(cols) => {
            let mut left_keys = Vec::new();
            let mut right_keys = Vec::new();
            for col in cols {
                left_keys.push(left.resolve(None, col)?);
                right_keys.push(right.resolve(None, col)?);
            }
            let mut right_drop = right_keys.clone();
            right_drop.sort_unstable();
            Ok(JoinNode {
                left_keys,
                right_keys,
                right_drop,
                build_left: false,
                build_est: None,
            })
        }
        JoinCondition::On(expr) => {
            let mut left_keys = Vec::new();
            let mut right_keys = Vec::new();
            collect_equi_pairs(expr, left, right, &mut left_keys, &mut right_keys)?;
            Ok(JoinNode {
                left_keys,
                right_keys,
                right_drop: Vec::new(),
                build_left: false,
                build_est: None,
            })
        }
    }
}

fn collect_equi_pairs(
    expr: &Expr,
    left: &Binder,
    right: &Binder,
    left_keys: &mut Vec<usize>,
    right_keys: &mut Vec<usize>,
) -> SqResult<()> {
    match expr {
        Expr::Binary {
            left: l,
            op: BinaryOp::And,
            right: r,
        } => {
            collect_equi_pairs(l, left, right, left_keys, right_keys)?;
            collect_equi_pairs(r, left, right, left_keys, right_keys)
        }
        Expr::Binary {
            left: l,
            op: BinaryOp::Eq,
            right: r,
        } => {
            let (lc, rc) = match (l.as_ref(), r.as_ref()) {
                (
                    Expr::Column {
                        qualifier: lq,
                        name: ln,
                    },
                    Expr::Column {
                        qualifier: rq,
                        name: rn,
                    },
                ) => ((lq, ln), (rq, rn)),
                _ => {
                    return Err(SqError::Plan(
                        "JOIN ON supports only column = column equalities".into(),
                    ))
                }
            };
            // Try left.col = right.col, then the flipped attribution.
            if let (Ok(li), Ok(ri)) = (
                left.resolve(lc.0.as_deref(), lc.1),
                right.resolve(rc.0.as_deref(), rc.1),
            ) {
                left_keys.push(li);
                right_keys.push(ri);
                return Ok(());
            }
            if let (Ok(li), Ok(ri)) = (
                left.resolve(rc.0.as_deref(), rc.1),
                right.resolve(lc.0.as_deref(), lc.1),
            ) {
                left_keys.push(li);
                right_keys.push(ri);
                return Ok(());
            }
            Err(SqError::Plan(format!(
                "JOIN ON condition does not relate the joined tables: {} = {}",
                lc.1, rc.1
            )))
        }
        _ => Err(SqError::Plan(
            "JOIN ON supports only equality conjunctions".into(),
        )),
    }
}

fn bind_scalar(expr: &Expr, binder: &Binder) -> SqResult<BoundExpr> {
    match expr {
        Expr::Column { qualifier, name } => Ok(BoundExpr::Column(
            binder.resolve(qualifier.as_deref(), name)?,
        )),
        Expr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
        Expr::LocalTimestamp => Ok(BoundExpr::LocalTimestamp),
        Expr::Binary { left, op, right } => Ok(BoundExpr::Binary {
            left: Box::new(bind_scalar(left, binder)?),
            op: *op,
            right: Box::new(bind_scalar(right, binder)?),
        }),
        Expr::Unary { op, operand } => Ok(BoundExpr::Unary {
            op: *op,
            operand: Box::new(bind_scalar(operand, binder)?),
        }),
        Expr::IsNull { operand, negated } => Ok(BoundExpr::IsNull {
            operand: Box::new(bind_scalar(operand, binder)?),
            negated: *negated,
        }),
        Expr::InList {
            operand,
            list,
            negated,
        } => Ok(BoundExpr::InList {
            operand: Box::new(bind_scalar(operand, binder)?),
            list: list
                .iter()
                .map(|e| bind_scalar(e, binder))
                .collect::<SqResult<_>>()?,
            negated: *negated,
        }),
        Expr::Between {
            operand,
            low,
            high,
            negated,
        } => Ok(BoundExpr::Between {
            operand: Box::new(bind_scalar(operand, binder)?),
            low: Box::new(bind_scalar(low, binder)?),
            high: Box::new(bind_scalar(high, binder)?),
            negated: *negated,
        }),
        Expr::Like {
            operand,
            pattern,
            negated,
        } => Ok(BoundExpr::Like {
            operand: Box::new(bind_scalar(operand, binder)?),
            pattern: Box::new(bind_scalar(pattern, binder)?),
            negated: *negated,
        }),
        Expr::Case {
            operand,
            branches,
            else_result,
        } => bind_case(operand, branches, else_result, &mut |e| {
            bind_scalar(e, binder)
        }),
        Expr::Func { func, args } => Ok(BoundExpr::Func {
            func: *func,
            args: args
                .iter()
                .map(|a| bind_scalar(a, binder))
                .collect::<SqResult<_>>()?,
        }),
        Expr::Aggregate { .. } => Err(SqError::Plan(
            "aggregate function in a scalar-only position".into(),
        )),
    }
}

/// Desugar and bind a CASE expression: the simple form (`CASE x WHEN v …`)
/// becomes the searched form with `x = v` conditions.
fn bind_case(
    operand: &Option<Box<Expr>>,
    branches: &[(Expr, Expr)],
    else_result: &Option<Box<Expr>>,
    bind: &mut impl FnMut(&Expr) -> SqResult<BoundExpr>,
) -> SqResult<BoundExpr> {
    let operand_bound = operand.as_deref().map(&mut *bind).transpose()?;
    let mut bound_branches = Vec::with_capacity(branches.len());
    for (when, then) in branches {
        let condition = match &operand_bound {
            Some(op) => BoundExpr::Binary {
                left: Box::new(op.clone()),
                op: crate::ast::BinaryOp::Eq,
                right: Box::new(bind(when)?),
            },
            None => bind(when)?,
        };
        bound_branches.push((condition, bind(then)?));
    }
    Ok(BoundExpr::Case {
        branches: bound_branches,
        else_result: else_result.as_deref().map(bind).transpose()?.map(Box::new),
    })
}

/// Bind a post-aggregation expression: group expressions become references to
/// the group-key columns, aggregates become references to aggregate slots,
/// and anything else must be composed of those (standard GROUP BY typing).
fn rewrite_post_agg(
    expr: &Expr,
    binder: &Binder,
    group_bound: &[BoundExpr],
    aggs: &mut Vec<(AggregateFunc, Option<BoundExpr>)>,
) -> SqResult<BoundExpr> {
    // A whole-expression match against a GROUP BY key?
    if let Ok(bound) = bind_scalar_no_agg(expr, binder) {
        if let Some(i) = group_bound.iter().position(|g| *g == bound) {
            return Ok(BoundExpr::Column(i));
        }
    }
    match expr {
        Expr::Aggregate { func, arg } => {
            let bound_arg = arg.as_ref().map(|a| bind_scalar(a, binder)).transpose()?;
            let slot = match aggs.iter().position(|(f, a)| f == func && *a == bound_arg) {
                Some(i) => i,
                None => {
                    aggs.push((*func, bound_arg));
                    aggs.len() - 1
                }
            };
            Ok(BoundExpr::Column(group_bound.len() + slot))
        }
        Expr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
        Expr::LocalTimestamp => Ok(BoundExpr::LocalTimestamp),
        Expr::Binary { left, op, right } => Ok(BoundExpr::Binary {
            left: Box::new(rewrite_post_agg(left, binder, group_bound, aggs)?),
            op: *op,
            right: Box::new(rewrite_post_agg(right, binder, group_bound, aggs)?),
        }),
        Expr::Unary { op, operand } => Ok(BoundExpr::Unary {
            op: *op,
            operand: Box::new(rewrite_post_agg(operand, binder, group_bound, aggs)?),
        }),
        Expr::IsNull { operand, negated } => Ok(BoundExpr::IsNull {
            operand: Box::new(rewrite_post_agg(operand, binder, group_bound, aggs)?),
            negated: *negated,
        }),
        Expr::InList {
            operand,
            list,
            negated,
        } => Ok(BoundExpr::InList {
            operand: Box::new(rewrite_post_agg(operand, binder, group_bound, aggs)?),
            list: list
                .iter()
                .map(|e| rewrite_post_agg(e, binder, group_bound, aggs))
                .collect::<SqResult<_>>()?,
            negated: *negated,
        }),
        Expr::Between {
            operand,
            low,
            high,
            negated,
        } => Ok(BoundExpr::Between {
            operand: Box::new(rewrite_post_agg(operand, binder, group_bound, aggs)?),
            low: Box::new(rewrite_post_agg(low, binder, group_bound, aggs)?),
            high: Box::new(rewrite_post_agg(high, binder, group_bound, aggs)?),
            negated: *negated,
        }),
        Expr::Like {
            operand,
            pattern,
            negated,
        } => Ok(BoundExpr::Like {
            operand: Box::new(rewrite_post_agg(operand, binder, group_bound, aggs)?),
            pattern: Box::new(rewrite_post_agg(pattern, binder, group_bound, aggs)?),
            negated: *negated,
        }),
        Expr::Case {
            operand,
            branches,
            else_result,
        } => bind_case(operand, branches, else_result, &mut |e| {
            rewrite_post_agg(e, binder, group_bound, aggs)
        }),
        Expr::Func { func, args } => Ok(BoundExpr::Func {
            func: *func,
            args: args
                .iter()
                .map(|a| rewrite_post_agg(a, binder, group_bound, aggs))
                .collect::<SqResult<_>>()?,
        }),
        Expr::Column { qualifier, name } => Err(SqError::Plan(format!(
            "column '{}{}' must appear in GROUP BY or inside an aggregate",
            qualifier
                .as_ref()
                .map(|q| format!("{q}."))
                .unwrap_or_default(),
            name
        ))),
    }
}

fn bind_scalar_no_agg(expr: &Expr, binder: &Binder) -> SqResult<BoundExpr> {
    if expr.contains_aggregate() {
        return Err(SqError::Plan("aggregate not allowed here".into()));
    }
    bind_scalar(expr, binder)
}

/// Resolve an ORDER BY expression that names a projection alias.
fn alias_match(expr: &Expr, _query: &Query, projections: &[ProjItem]) -> Option<BoundExpr> {
    if let Expr::Column {
        qualifier: None,
        name,
    } = expr
    {
        if let Some(p) = projections.iter().find(|p| &p.name == name) {
            // Only safe when the projection is already bound to the same row
            // the order keys will be evaluated against — always true here.
            return Some(p.expr.clone());
        }
    }
    None
}

fn unique_fields(projections: &[ProjItem], binder: &Binder, aggregated: bool) -> Vec<Field> {
    let mut names: Vec<String> = Vec::new();
    let mut fields = Vec::new();
    for p in projections {
        let mut name = p.name.clone();
        let mut n = 1;
        while names.contains(&name) {
            n += 1;
            name = format!("{}_{n}", p.name);
        }
        names.push(name.clone());
        let dtype = if aggregated {
            DataType::Any
        } else if let BoundExpr::Column(i) = p.expr {
            binder
                .entries
                .iter()
                .find(|e| e.index == i)
                .map(|e| e.dtype)
                .unwrap_or(DataType::Any)
        } else {
            DataType::Any
        };
        fields.push(Field { name, dtype });
    }
    fields
}

/// Pull `ssid` and key-equality hints out of the WHERE clause.
fn extract_hints(query: &Query, scans: &mut [ScanNode], locals: &[(String, Binder)]) {
    let Some(where_clause) = &query.where_clause else {
        return;
    };
    // Any mention of `ssid` anywhere in the predicate puts the mentioned
    // table(s) in AllRetained mode; top-level equality conjuncts then refine
    // back to Exact.
    where_clause.visit_columns(&mut |qualifier, name| {
        if name != SSID_COLUMN {
            return;
        }
        for (i, (alias, local)) in locals.iter().enumerate() {
            let qualifier_ok = qualifier.as_deref().is_none_or(|q| q == alias);
            if qualifier_ok && local.resolve(None, name).is_ok() {
                scans[i].hints.ssid = SsidMode::AllRetained;
            }
        }
    });
    let mut conjuncts = Vec::new();
    collect_conjuncts(where_clause, &mut conjuncts);
    for c in conjuncts {
        let Expr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } = c
        else {
            continue;
        };
        let (column, literal) = match (left.as_ref(), right.as_ref()) {
            (Expr::Column { qualifier, name }, Expr::Literal(v)) => ((qualifier, name), v),
            (Expr::Literal(v), Expr::Column { qualifier, name }) => ((qualifier, name), v),
            _ => continue,
        };
        // Attribute to every scan whose local schema has the column and whose
        // alias matches the qualifier (USING-joined key columns legitimately
        // attribute to both sides).
        for (i, (alias, local)) in locals.iter().enumerate() {
            let qualifier_ok = column.0.as_deref().is_none_or(|q| q == alias);
            if !qualifier_ok || local.resolve(None, column.1).is_err() {
                continue;
            }
            if column.1 == SSID_COLUMN {
                if let Value::Int(n) = literal {
                    if *n >= 0 {
                        scans[i].hints.ssid = SsidMode::Exact(SnapshotId(*n as u64));
                    }
                }
            } else if column.1 == KEY_COLUMN {
                scans[i].hints.key_eq = Some(literal.clone());
            }
        }
    }
}

fn collect_conjuncts<'a>(expr: &'a Expr, out: &mut Vec<&'a Expr>) {
    if let Expr::Binary {
        left,
        op: BinaryOp::And,
        right,
    } = expr
    {
        collect_conjuncts(left, out);
        collect_conjuncts(right, out);
    } else {
        out.push(expr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{MemCatalog, MemTable};
    use crate::parser::parse;
    use squery_common::schema::schema;

    fn catalog() -> MemCatalog {
        let orders = schema(vec![
            (KEY_COLUMN, DataType::Any),
            ("total", DataType::Int),
            ("zone", DataType::Str),
        ]);
        let info = schema(vec![
            (KEY_COLUMN, DataType::Any),
            ("category", DataType::Str),
        ]);
        let snap = schema(vec![
            (KEY_COLUMN, DataType::Any),
            (SSID_COLUMN, DataType::Int),
            ("total", DataType::Int),
        ]);
        MemCatalog::new(vec![
            Arc::new(MemTable::new("orders", orders, vec![])),
            Arc::new(MemTable::new("info", info, vec![])),
            Arc::new(MemTable::new("snapshot_orders", snap, vec![])),
        ])
    }

    fn plan_sql(sql: &str) -> SqResult<PhysicalPlan> {
        plan(&parse(sql)?, &catalog())
    }

    #[test]
    fn simple_select_star() {
        let p = plan_sql("SELECT * FROM orders").unwrap();
        assert_eq!(p.scans.len(), 1);
        assert_eq!(p.projections.len(), 3);
        assert_eq!(p.output_schema.fields()[0].name, KEY_COLUMN);
        assert!(p.aggregate.is_none());
    }

    #[test]
    fn unknown_table_and_column_errors() {
        assert!(matches!(
            plan_sql("SELECT * FROM nope"),
            Err(SqError::Plan(_))
        ));
        assert!(matches!(
            plan_sql("SELECT missing FROM orders"),
            Err(SqError::Plan(_))
        ));
    }

    #[test]
    fn using_join_merges_key_column() {
        let p =
            plan_sql("SELECT total, category FROM orders JOIN info USING(partitionKey)").unwrap();
        assert_eq!(p.scans.len(), 2);
        assert_eq!(p.joins.len(), 1);
        assert_eq!(p.joins[0].left_keys, vec![0]);
        assert_eq!(p.joins[0].right_keys, vec![0]);
        assert_eq!(p.joins[0].right_drop, vec![0]);
        // category lands after orders' 3 columns.
        match p.projections[1].expr {
            BoundExpr::Column(i) => assert_eq!(i, 3),
            _ => panic!(),
        }
    }

    #[test]
    fn qualified_using_column_resolves_to_left_index() {
        let p =
            plan_sql("SELECT info.partitionKey FROM orders JOIN info USING(partitionKey)").unwrap();
        match p.projections[0].expr {
            BoundExpr::Column(0) => {}
            ref other => panic!("expected merged column 0, got {other:?}"),
        }
    }

    #[test]
    fn on_join_requires_equality() {
        let p =
            plan_sql("SELECT total FROM orders o JOIN info i ON o.partitionKey = i.partitionKey")
                .unwrap();
        assert_eq!(p.joins[0].left_keys, vec![0]);
        assert_eq!(p.joins[0].right_keys, vec![0]);
        assert!(p.joins[0].right_drop.is_empty());
        assert!(
            plan_sql("SELECT total FROM orders o JOIN info i ON o.total < i.partitionKey").is_err()
        );
    }

    #[test]
    fn duplicate_column_names_need_qualifiers() {
        // `total` exists only in orders, fine unqualified even with a join.
        assert!(plan_sql("SELECT total FROM orders JOIN info USING(partitionKey)").is_ok());
        // partitionKey is merged by USING so it stays unambiguous.
        assert!(plan_sql("SELECT partitionKey FROM orders JOIN info USING(partitionKey)").is_ok());
    }

    #[test]
    fn group_by_splits_aggregates() {
        let p = plan_sql("SELECT COUNT(*), zone FROM orders GROUP BY zone").unwrap();
        let agg = p.aggregate.as_ref().unwrap();
        assert_eq!(agg.group_exprs.len(), 1);
        assert_eq!(agg.aggs.len(), 1);
        // COUNT(*) is post-agg column 1 (after the single group key).
        match p.projections[0].expr {
            BoundExpr::Column(1) => {}
            ref other => panic!("expected agg slot, got {other:?}"),
        }
        match p.projections[1].expr {
            BoundExpr::Column(0) => {}
            ref other => panic!("expected group key, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_aggregates_share_a_slot() {
        let p =
            plan_sql("SELECT SUM(total), SUM(total) / COUNT(*) FROM orders GROUP BY zone").unwrap();
        let agg = p.aggregate.as_ref().unwrap();
        assert_eq!(agg.aggs.len(), 2, "SUM(total) deduped, COUNT(*) separate");
    }

    #[test]
    fn bare_column_outside_group_by_rejected() {
        assert!(matches!(
            plan_sql("SELECT total FROM orders GROUP BY zone"),
            Err(SqError::Plan(_))
        ));
        assert!(matches!(
            plan_sql("SELECT zone, COUNT(*) FROM orders"),
            Err(SqError::Plan(_))
        ));
    }

    #[test]
    fn having_without_group_rejected() {
        assert!(plan_sql("SELECT total FROM orders HAVING total > 1").is_err());
    }

    #[test]
    fn wildcard_with_group_by_rejected() {
        assert!(plan_sql("SELECT * FROM orders GROUP BY zone").is_err());
    }

    #[test]
    fn ssid_equality_becomes_exact_hint() {
        let p = plan_sql("SELECT total FROM snapshot_orders WHERE ssid = 9").unwrap();
        assert_eq!(p.scans[0].hints.ssid, SsidMode::Exact(SnapshotId(9)));
    }

    #[test]
    fn ssid_range_becomes_all_retained() {
        let p = plan_sql("SELECT total FROM snapshot_orders WHERE ssid > 3").unwrap();
        assert_eq!(p.scans[0].hints.ssid, SsidMode::AllRetained);
        let p = plan_sql("SELECT total FROM snapshot_orders WHERE ssid IN (1, 2)").unwrap();
        assert_eq!(p.scans[0].hints.ssid, SsidMode::AllRetained);
    }

    #[test]
    fn no_ssid_mention_defaults_to_latest() {
        let p = plan_sql("SELECT total FROM snapshot_orders").unwrap();
        assert_eq!(p.scans[0].hints.ssid, SsidMode::Latest);
    }

    #[test]
    fn key_equality_becomes_point_hint() {
        let p = plan_sql("SELECT total FROM orders WHERE partitionKey = 7").unwrap();
        assert_eq!(p.scans[0].hints.key_eq, Some(Value::Int(7)));
        // Under OR it is not a conjunct: no hint.
        let p = plan_sql("SELECT total FROM orders WHERE partitionKey = 7 OR total = 1").unwrap();
        assert_eq!(p.scans[0].hints.key_eq, None);
    }

    #[test]
    fn key_hint_applies_to_both_sides_of_using_join() {
        let p = plan_sql(
            "SELECT total FROM orders JOIN info USING(partitionKey) WHERE partitionKey = 7",
        )
        .unwrap();
        assert_eq!(p.scans[0].hints.key_eq, Some(Value::Int(7)));
        assert_eq!(p.scans[1].hints.key_eq, Some(Value::Int(7)));
    }

    #[test]
    fn order_by_alias_reuses_projection() {
        let p = plan_sql("SELECT COUNT(*) AS c, zone FROM orders GROUP BY zone ORDER BY c DESC")
            .unwrap();
        assert_eq!(p.order_by.len(), 1);
        assert!(p.order_by[0].1, "descending");
        assert_eq!(p.order_by[0].0, p.projections[0].expr);
    }

    #[test]
    fn output_schema_dedupes_names() {
        let p = plan_sql("SELECT total, total FROM orders").unwrap();
        let names: Vec<&str> = p
            .output_schema
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, vec!["total", "total_2"]);
    }
}
