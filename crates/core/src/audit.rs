//! Auditing & compliance over queryable state (paper §III).
//!
//! The paper argues queryable state makes streaming systems auditable:
//! under GDPR, *"'processing' means any operation that operates on personal
//! data … individuals also have the right to request their personal data as
//! defined in article 15 … organizations using streaming systems need to
//! provide even their internal state on request."*
//!
//! This module turns that argument into an API:
//!
//! * [`SubjectReport`] / [`SQuery::subject_report`] — a data-subject access
//!   request: everything stored under a key, across every operator's live
//!   state *and* every retained snapshot version (article 15);
//! * [`SQuery::erase_subject`] — the right to erasure (article 17):
//!   physically removes the key from every live map and from every retained
//!   version of every snapshot store.
//!
//! Internal bookkeeping tables (names starting with `__`, e.g. the source
//! offsets store) are excluded — they hold engine positions, not personal
//! data.

use crate::system::SQuery;
use squery_common::{SnapshotId, SqResult, Value};
use std::fmt;

/// One operator's live-state entry for the subject.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveEntry {
    /// Operator (live table) name.
    pub operator: String,
    /// The state object stored under the subject's key.
    pub value: Value,
}

/// One retained snapshot version of the subject's state at one operator.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryEntry {
    /// Operator name (the store is `snapshot_<operator>`).
    pub operator: String,
    /// Which retained snapshot version.
    pub ssid: SnapshotId,
    /// The state object at that version.
    pub value: Value,
}

/// A data-subject access report (GDPR article 15).
#[derive(Debug, Clone, PartialEq)]
pub struct SubjectReport {
    /// The subject's key.
    pub key: Value,
    /// Live state per operator.
    pub live: Vec<LiveEntry>,
    /// Snapshot history per operator per retained version, ascending ssid.
    pub history: Vec<HistoryEntry>,
}

impl SubjectReport {
    /// Whether the system holds any data for the subject at all.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty() && self.history.is_empty()
    }
}

impl fmt::Display for SubjectReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "subject access report for key {}", self.key)?;
        writeln!(f, "  live state ({} operators):", self.live.len())?;
        for e in &self.live {
            writeln!(f, "    {}: {}", e.operator, e.value)?;
        }
        writeln!(f, "  snapshot history ({} versions):", self.history.len())?;
        for e in &self.history {
            writeln!(f, "    {} @ {}: {}", e.operator, e.ssid, e.value)?;
        }
        Ok(())
    }
}

/// Result of an erasure request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErasureReceipt {
    /// Live map entries removed.
    pub live_removed: usize,
    /// Stored snapshot entries removed (across versions and operators).
    pub snapshot_entries_removed: usize,
}

fn is_internal(operator: &str) -> bool {
    operator.starts_with("__")
}

impl SQuery {
    /// Collect everything stored under `key` across all operators' live state
    /// and all retained snapshot versions (GDPR article 15).
    pub fn subject_report(&self, key: &Value) -> SqResult<SubjectReport> {
        let grid = self.grid();
        let mut live = Vec::new();
        for name in grid.map_names() {
            if is_internal(&name) {
                continue;
            }
            if let Some(map) = grid.get_map(&name) {
                if let Some(value) = map.get(key) {
                    live.push(LiveEntry {
                        operator: name,
                        value,
                    });
                }
            }
        }
        let retained = grid.registry().committed_ssids();
        let mut history = Vec::new();
        for table in grid.snapshot_table_names() {
            let operator = table
                .strip_prefix("snapshot_")
                .unwrap_or(&table)
                .to_string();
            if is_internal(&operator) {
                continue;
            }
            let Some(store) = grid.get_snapshot_store(&operator) else {
                continue;
            };
            for &ssid in &retained {
                if let Some(value) = store.read_at(ssid, key)? {
                    history.push(HistoryEntry {
                        operator: operator.clone(),
                        ssid,
                        value,
                    });
                }
            }
        }
        Ok(SubjectReport {
            key: key.clone(),
            live,
            history,
        })
    }

    /// Physically erase `key` from every operator's live state and from
    /// every retained snapshot version (GDPR article 17).
    ///
    /// Note that a *running* job may re-create the key from future events;
    /// erasure covers the stored state, as the paper's compliance use case
    /// requires — stopping the upstream data flow is an application decision.
    pub fn erase_subject(&self, key: &Value) -> SqResult<ErasureReceipt> {
        let grid = self.grid();
        let mut live_removed = 0;
        for name in grid.map_names() {
            if is_internal(&name) {
                continue;
            }
            if let Some(map) = grid.get_map(&name) {
                if map.remove(key).is_some() {
                    live_removed += 1;
                }
            }
        }
        let mut snapshot_entries_removed = 0;
        for table in grid.snapshot_table_names() {
            let operator = table.strip_prefix("snapshot_").unwrap_or(&table);
            if is_internal(operator) {
                continue;
            }
            if let Some(store) = grid.get_snapshot_store(operator) {
                snapshot_entries_removed += store.erase_key(key);
            }
        }
        Ok(ErasureReceipt {
            live_removed,
            snapshot_entries_removed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SQueryConfig;

    /// A system with two operators holding data for keys 1 and 2, live and
    /// across two committed snapshots.
    fn populated() -> SQuery {
        let system = SQuery::new(SQueryConfig::default()).unwrap();
        let grid = system.grid();
        for op in ["orders", "riders"] {
            let live = grid.map(op);
            live.put(Value::Int(1), Value::str(format!("{op}-live-1")));
            live.put(Value::Int(2), Value::str(format!("{op}-live-2")));
        }
        for round in 1..=2 {
            let ssid = grid.registry().begin().unwrap();
            for op in ["orders", "riders"] {
                let store = grid.snapshot_store(op);
                for key in [1i64, 2] {
                    store.write_partition(
                        ssid,
                        store.partition_of(&Value::Int(key)),
                        vec![(
                            Value::Int(key),
                            Some(Value::str(format!("{op}-v{round}-{key}"))),
                        )],
                        true,
                    );
                }
            }
            // The offsets store is internal and must never leak into reports.
            let offsets = grid.snapshot_store("__offsets");
            offsets.write_partition(
                ssid,
                offsets.partition_of(&Value::Int(1)),
                vec![(Value::Int(1), Some(Value::Int(999)))],
                true,
            );
            grid.registry().commit(ssid).unwrap();
        }
        system
    }

    #[test]
    fn subject_report_collects_live_and_history() {
        let system = populated();
        let report = system.subject_report(&Value::Int(1)).unwrap();
        assert_eq!(report.live.len(), 2, "both operators hold live data");
        assert_eq!(report.history.len(), 4, "2 operators × 2 retained versions");
        assert!(report
            .live
            .iter()
            .any(|e| e.operator == "orders" && e.value == Value::str("orders-live-1")));
        assert!(report.history.iter().all(|e| e.operator != "__offsets"));
        let text = report.to_string();
        assert!(text.contains("orders-v1-1"), "{text}");
        assert!(text.contains("riders-v2-1"), "{text}");
        assert!(!report.is_empty());
    }

    #[test]
    fn unknown_subject_yields_empty_report() {
        let system = populated();
        let report = system.subject_report(&Value::Int(42)).unwrap();
        assert!(report.is_empty());
    }

    #[test]
    fn erasure_removes_subject_everywhere() {
        let system = populated();
        let receipt = system.erase_subject(&Value::Int(1)).unwrap();
        assert_eq!(receipt.live_removed, 2);
        assert_eq!(receipt.snapshot_entries_removed, 4);
        assert!(system.subject_report(&Value::Int(1)).unwrap().is_empty());
        // The other subject is untouched.
        let other = system.subject_report(&Value::Int(2)).unwrap();
        assert_eq!(other.live.len(), 2);
        assert_eq!(other.history.len(), 4);
        // SQL over the snapshot table confirms the erasure.
        let rs = system
            .query("SELECT COUNT(*) AS n FROM snapshot_orders")
            .unwrap();
        assert_eq!(rs.scalar("n"), Some(&Value::Int(1)));
        // Erasing again is a no-op.
        let receipt = system.erase_subject(&Value::Int(1)).unwrap();
        assert_eq!(receipt.live_removed, 0);
        assert_eq!(receipt.snapshot_entries_removed, 0);
    }

    #[test]
    fn internal_tables_excluded_from_erasure() {
        let system = populated();
        system.erase_subject(&Value::Int(1)).unwrap();
        // The engine's offset bookkeeping survives subject erasure.
        let offsets = system.grid().get_snapshot_store("__offsets").unwrap();
        assert_eq!(
            offsets
                .read_at(system.latest_snapshot().unwrap(), &Value::Int(1))
                .unwrap(),
            Some(Value::Int(999))
        );
    }
}
