//! The S-QUERY system facade: stream processor + state store + query system.

use crate::config::SQueryConfig;
use crate::direct::DirectQuery;
use crate::stats::StatsCatalog;
use crate::systables::{register_sys_tables, JobLog};
use parking_lot::Mutex;
use squery_common::fault::{FaultInjector, FaultPlan};
use squery_common::lockorder::{self, LockClass};
use squery_common::telemetry::MetricsRegistry;
use squery_common::time::Clock;
use squery_common::{SnapshotId, SqResult};
use squery_sql::{GridCatalog, QueryLog, ResultSet, SqlEngine};
use squery_storage::{Grid, WalManager};
use squery_streaming::{JobHandle, JobSpec, RestartPolicy, StreamEnv, SupervisedJob};
use std::sync::Arc;

/// A complete S-QUERY deployment (the paper's Figure 1): a stream processor
/// whose operators store their live and snapshot state in a partitioned KV
/// grid, plus the query system exposing both through SQL and direct object
/// interfaces.
pub struct SQuery {
    grid: Arc<Grid>,
    env: StreamEnv,
    sql: SqlEngine<GridCatalog>,
    config: SQueryConfig,
    jobs: JobLog,
    query_log: QueryLog,
}

impl SQuery {
    /// Bring up a deployment for `config`.
    pub fn new(config: SQueryConfig) -> SqResult<SQuery> {
        config.validate()?;
        let telemetry = MetricsRegistry::with_capacity(config.event_capacity, Clock::wall());
        telemetry.spans().set_enabled(config.tracing);
        let grid = Grid::new_with_telemetry(config.cluster, telemetry)?;
        grid.registry()
            .set_retained_versions(config.retained_versions);
        grid.stats().set_hot_key_capacity(config.stats_hot_keys);
        if let Some(wal_dir) = &config.wal_dir {
            // Durable snapshots: every checkpoint's phase-1 writes land in
            // the WAL and phase 2 seals them; any sealed rounds already on
            // disk are replayed now, before the first query can run.
            grid.attach_wal(Arc::new(WalManager::new(
                wal_dir,
                config.wal_fsync,
                config.wal_retention,
            )));
            grid.recover_from_wal()?;
        }
        let env = StreamEnv::new(Arc::clone(&grid), config.engine_config());
        let jobs: JobLog = Arc::new(Mutex::new(Vec::new()));
        let query_log = QueryLog::default();
        let catalog = GridCatalog::new(Arc::clone(&grid));
        register_sys_tables(
            &catalog,
            Arc::clone(&grid),
            Arc::clone(&jobs),
            query_log.clone(),
        );
        let sql = SqlEngine::new(catalog)
            .with_telemetry(grid.telemetry())
            .with_parallelism(config.query_parallelism)
            .with_query_log(query_log.clone());
        Ok(SQuery {
            grid,
            env,
            sql,
            config,
            jobs,
            query_log,
        })
    }

    /// The underlying state store.
    pub fn grid(&self) -> &Arc<Grid> {
        &self.grid
    }

    /// The engine-wide metrics/event registry (also behind `sys_metrics`
    /// and `sys_events`).
    pub fn telemetry(&self) -> &MetricsRegistry {
        self.grid.telemetry()
    }

    /// The per-query log (also behind `sys_query_log`).
    pub fn query_log(&self) -> &QueryLog {
        &self.query_log
    }

    /// The continuous state-statistics catalog (also behind
    /// `sys_partitions`, `sys_state_stats`, and `sys_hot_keys`).
    pub fn stats(&self) -> StatsCatalog {
        StatsCatalog::new(Arc::clone(&self.grid))
    }

    /// Run one synchronous statistics sampling pass — for deterministic
    /// tests and on-demand refreshes; the background sampler (enabled with
    /// [`SQueryConfig::with_stats_interval`]) does the same on a timer.
    pub fn sample_stats_now(&self) -> usize {
        self.stats().sample_now()
    }

    /// The configuration this deployment runs with.
    pub fn config(&self) -> &SQueryConfig {
        &self.config
    }

    /// Submit a streaming job. The job's checkpoint log is retained for
    /// `sys_checkpoints`.
    pub fn submit(&self, spec: JobSpec) -> SqResult<JobHandle> {
        let name = spec.name.clone();
        let handle = self.env.submit(spec)?;
        let _lo = lockorder::acquired(LockClass::CoreJobs);
        self.jobs.lock().push((name, handle.checkpoint_stats()));
        Ok(handle)
    }

    /// Submit a streaming job resuming from the latest committed snapshot —
    /// used after a cold start whose WAL recovery restored one ([`SQuery::new`]
    /// with a WAL directory): operator state is restored and sources rewind
    /// to their recovered offsets, so exactly-once holds across the process
    /// kill. Falls back to a plain submit when nothing was recovered.
    pub fn submit_recovered(&self, spec: JobSpec) -> SqResult<JobHandle> {
        let name = spec.name.clone();
        let handle = self.env.submit_restored(spec)?;
        let _lo = lockorder::acquired(LockClass::CoreJobs);
        self.jobs.lock().push((name, handle.checkpoint_stats()));
        Ok(handle)
    }

    /// Submit a streaming job under supervision: worker deaths and killed
    /// coordinators are detected and recovered automatically per `policy`,
    /// while queries keep serving the last committed snapshot.
    pub fn submit_supervised(
        &self,
        spec: JobSpec,
        policy: RestartPolicy,
    ) -> SqResult<SupervisedJob> {
        Ok(SupervisedJob::supervise(self.submit(spec)?, policy))
    }

    /// Arm a deterministic fault plan. Jobs submitted *after* this call
    /// thread the injector through their workers; the checkpoint
    /// coordinator, replicator, and node-failure paths consult it
    /// immediately. Every firing lands in `sys_faults`.
    pub fn inject_faults(&self, plan: FaultPlan) -> Arc<FaultInjector> {
        let injector = Arc::new(FaultInjector::new(plan));
        self.grid.attach_fault_injector(Arc::clone(&injector));
        injector
    }

    /// Run a SQL query against the live and snapshot state tables.
    ///
    /// Live tables are named after their operator; snapshot tables are
    /// `snapshot_<operator>` with an extra `ssid` column defaulting to the
    /// latest committed snapshot (paper §V).
    pub fn query(&self, sql: &str) -> SqResult<ResultSet> {
        self.sql.query(sql)
    }

    /// Run a SQL query with an explicit degree of parallelism, overriding
    /// the configured `query_parallelism` for this query only.
    pub fn query_with_dop(&self, sql: &str, dop: usize) -> SqResult<ResultSet> {
        self.sql.query_with_dop(sql, dop)
    }

    /// Run a SQL query with explicit parallelism and vectorized-execution
    /// choices. `vectorized: false` forces the row engine even where the
    /// columnar kernels apply — the equivalence tests and bench gate use
    /// this to compare both paths over identical state.
    pub fn query_with_opts(&self, sql: &str, dop: usize, vectorized: bool) -> SqResult<ResultSet> {
        self.sql.query_with_opts(sql, dop, vectorized)
    }

    /// The direct object interface (point/multi-key reads, Figure 14).
    /// Multi-key reads inherit the configured `query_parallelism`.
    pub fn direct(&self) -> DirectQuery {
        DirectQuery::new(Arc::clone(&self.grid)).with_parallelism(self.config.query_parallelism)
    }

    /// The latest committed snapshot id, if any checkpoint has completed.
    pub fn latest_snapshot(&self) -> Option<SnapshotId> {
        let latest = self.grid.registry().latest_committed();
        latest.is_some().then_some(latest)
    }

    /// All committed snapshot ids currently retained (oldest first).
    pub fn retained_snapshots(&self) -> Vec<SnapshotId> {
        self.grid.registry().committed_ssids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::StateView;
    use squery_common::schema::schema;
    use squery_common::{DataType, Value};
    use squery_streaming::dag::adapters::{FnStateful, FnStatefulOp, NullSinkFactory};
    use squery_streaming::dag::{SourceFactory, Stateful};
    use squery_streaming::source::{Source, SourceStatus};
    use squery_streaming::state::KeyedState;
    use squery_streaming::{EdgeKind, Record, StateConfig};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    /// A source whose production is gated by a shared allowance counter —
    /// lets tests decide exactly how many records exist before/after a
    /// checkpoint (needed for the Figure 5/6 scenarios).
    pub struct GatedSource {
        index: u64,
        allowance: Arc<AtomicU64>,
    }

    impl Source for GatedSource {
        fn next_batch(&mut self, max: usize, _now: u64, out: &mut Vec<Record>) -> SourceStatus {
            let allowed = self.allowance.load(Ordering::Acquire);
            let budget = (allowed.saturating_sub(self.index)).min(max as u64);
            if budget == 0 {
                return SourceStatus::Idle;
            }
            for _ in 0..budget {
                // A constant-keyed counter increment stream.
                out.push(Record::new(0i64, 1i64));
                self.index += 1;
            }
            SourceStatus::Active
        }

        fn offset(&self) -> Value {
            Value::Int(self.index as i64)
        }

        fn rewind(&mut self, offset: &Value) {
            self.index = offset.as_int().unwrap() as u64;
        }
    }

    struct GatedFactory(Arc<AtomicU64>);
    impl SourceFactory for GatedFactory {
        fn create(&self, _i: u32, _n: u32) -> Box<dyn Source> {
            Box::new(GatedSource {
                index: 0,
                allowance: Arc::clone(&self.0),
            })
        }
    }

    fn counter_factory() -> Arc<FnStateful<impl Fn(u32, u32) -> Box<dyn Stateful> + Send + Sync>> {
        Arc::new(FnStateful(|_, _| {
            Box::new(FnStatefulOp(
                |r: Record, state: &mut dyn KeyedState, out: &mut Vec<Record>| {
                    let prev = state.get(&r.key).and_then(|v| v.as_int()).unwrap_or(0);
                    state.put(r.key.clone(), Value::Int(prev + 1));
                    out.push(Record {
                        key: r.key,
                        value: Value::Int(prev + 1),
                        src_ts: r.src_ts,
                        port: 0,
                    });
                },
            )) as Box<dyn Stateful>
        }))
    }

    /// A count job over a gated source; returns (system, job, allowance).
    fn counter_system(
        config: SQueryConfig,
    ) -> (SQuery, squery_streaming::JobHandle, Arc<AtomicU64>) {
        let system = SQuery::new(config).unwrap();
        let allowance = Arc::new(AtomicU64::new(0));
        let mut b = JobSpec::builder("counter-job");
        let src = b.source("src", 1, Arc::new(GatedFactory(Arc::clone(&allowance))));
        let op = b.stateful_with_schema(
            "count",
            1,
            counter_factory(),
            schema(vec![("this", DataType::Int)]),
        );
        let sink = b.sink("sink", 1, Arc::new(NullSinkFactory));
        b.edge(src, op, EdgeKind::Keyed);
        b.edge(op, sink, EdgeKind::Forward);
        let job = system.submit(b.build().unwrap()).unwrap();
        (system, job, allowance)
    }

    fn live_count(system: &SQuery) -> Option<i64> {
        system
            .direct()
            .get("count", &Value::Int(0), StateView::Live)
            .unwrap()
            .and_then(|v| v.as_int())
    }

    /// The paper's Figure 5: a live-state query observes an uncommitted
    /// value that a failure subsequently rolls back — a dirty read,
    /// demonstrating the read-uncommitted level of live queries.
    #[test]
    fn figure5_live_state_dirty_read() {
        let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
        let (system, mut job, allowance) = counter_system(config);

        // Counter reaches 4; checkpoint captures it (snapshot id 1).
        allowance.store(4, Ordering::Release);
        job.wait_for_sink_count(4, Duration::from_secs(10)).unwrap();
        let ssid = job.checkpoint_now().unwrap();

        // One more increment: live shows 5 (uncommitted).
        allowance.store(5, Ordering::Release);
        job.wait_for_sink_count(5, Duration::from_secs(10)).unwrap();
        assert_eq!(live_count(&system), Some(5), "Figure 5b: live query sees 5");

        // The job fails before the next checkpoint; recovery rolls back.
        // Lower the gate first so the rolled-back 5th event is not instantly
        // replayed before we can observe the restored state.
        job.crash();
        allowance.store(4, Ordering::Release);
        job.recover().unwrap();
        assert_eq!(
            live_count(&system),
            Some(4),
            "Figure 5c: the earlier read of 5 was dirty"
        );
        // The snapshot query was and remains 4.
        assert_eq!(
            system
                .direct()
                .get("count", &Value::Int(0), StateView::Snapshot(ssid))
                .unwrap(),
            Some(Value::Int(4))
        );
        job.stop();
    }

    /// The paper's Figure 6: a query pinned to a snapshot id returns the
    /// same value before and after a failure — serializable isolation.
    #[test]
    fn figure6_snapshot_queries_survive_failure() {
        let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
        let (system, mut job, allowance) = counter_system(config);

        allowance.store(2, Ordering::Release);
        job.wait_for_sink_count(2, Duration::from_secs(10)).unwrap();
        let ssid = job.checkpoint_now().unwrap();

        allowance.store(3, Ordering::Release);
        job.wait_for_sink_count(3, Duration::from_secs(10)).unwrap();
        let read_before = system
            .direct()
            .get("count", &Value::Int(0), StateView::Snapshot(ssid))
            .unwrap();
        assert_eq!(read_before, Some(Value::Int(2)), "Figure 6b");

        job.crash();
        allowance.store(2, Ordering::Release);
        job.recover().unwrap();
        let read_after = system
            .direct()
            .get("count", &Value::Int(0), StateView::Snapshot(ssid))
            .unwrap();
        assert_eq!(read_after, read_before, "Figure 6c: still 2");
        job.stop();
    }

    /// End-to-end SQL over a running job's live and snapshot state.
    #[test]
    fn sql_over_live_and_snapshot_tables() {
        let config = SQueryConfig::default().with_state(StateConfig::live_and_snapshot());
        let (system, job, allowance) = counter_system(config);
        allowance.store(10, Ordering::Release);
        job.wait_for_sink_count(10, Duration::from_secs(10))
            .unwrap();
        let ssid = job.checkpoint_now().unwrap();
        allowance.store(12, Ordering::Release);
        job.wait_for_sink_count(12, Duration::from_secs(10))
            .unwrap();

        let live = system
            .query("SELECT this FROM count WHERE partitionKey = 0")
            .unwrap();
        assert_eq!(live.rows()[0][0], Value::Int(12));

        let snap = system
            .query("SELECT this, ssid FROM snapshot_count WHERE partitionKey = 0")
            .unwrap();
        assert_eq!(snap.rows()[0][0], Value::Int(10));
        assert_eq!(snap.rows()[0][1], Value::Int(ssid.0 as i64));
        job.stop();
    }

    #[test]
    fn retention_is_configurable_through_squery() {
        let config = SQueryConfig::default().with_retention(3);
        let (system, job, allowance) = counter_system(config);
        allowance.store(1, Ordering::Release);
        job.wait_for_sink_count(1, Duration::from_secs(10)).unwrap();
        for _ in 0..5 {
            job.checkpoint_now().unwrap();
        }
        assert_eq!(system.retained_snapshots().len(), 3);
        assert_eq!(system.latest_snapshot(), Some(SnapshotId(5)));
        job.stop();
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        let config = SQueryConfig {
            retained_versions: 0,
            ..SQueryConfig::default()
        };
        assert!(SQuery::new(config).is_err());
    }
}
