//! Deterministic chaos harness: a seeded fault plan against a supervised
//! counting job, with invariant checks at the end.
//!
//! One [`run_seed`] call is one soak iteration: sample a [`FaultPlan`] from
//! the seed, run a keyed counting job under supervision while the plan
//! kills workers, drops acks, fails commits, and kills the coordinator at
//! its chosen points, then verify that none of it is observable in the
//! final state:
//!
//! * exactly-once — the per-key counts equal a fault-free pass;
//! * snapshot-id monotonicity across every abort and recovery;
//! * live ≡ snapshot equivalence behind the final checkpoint barrier;
//! * every fired fault resolved (`recovered`, `recovered_by_retry`,
//!   `absorbed`, …) — nothing left `pending`;
//! * `sys_faults` (the SQL path) agrees with the injector's log.
//!
//! The same seed always produces the same plan, and a plan whose triggers
//! key off record counts and snapshot ids (not wall-clock) reproduces the
//! same fault firings run after run — the [`ChaosReport::fingerprint`] makes
//! that checkable.

use crate::config::SQueryConfig;
use crate::invariants;
use crate::system::SQuery;
use squery_common::fault::{ChaosProfile, FaultPlan, FaultRecord};
use squery_common::schema::schema;
use squery_common::{DataType, SqError, SqResult, Value};
use squery_streaming::dag::adapters::{FnStateful, FnStatefulOp, NullSinkFactory};
use squery_streaming::dag::{SourceFactory, Stateful};
use squery_streaming::source::{Source, SourceStatus};
use squery_streaming::state::KeyedState;
use squery_streaming::{EdgeKind, JobSpec, Record, RestartPolicy, StateConfig, SupervisedJob};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Workload shape for one chaos iteration.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Total records the source produces.
    pub events: u64,
    /// Distinct keys (record `i` gets key `i % keys`).
    pub keys: i64,
    /// Parallelism of the counting operator.
    pub parallelism: u32,
    /// Checkpoint rounds spread across the run.
    pub rounds: u32,
    /// Phase-1 ack timeout (short: aborted rounds must fail fast).
    pub ack_timeout: Duration,
    /// In-place checkpoint retries before the supervisor takes over.
    pub checkpoint_retries: u32,
    /// Supervisor restart budget.
    pub max_restarts: u32,
    /// Whole-iteration wall-clock budget.
    pub deadline: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            events: 120,
            keys: 6,
            parallelism: 2,
            rounds: 4,
            ack_timeout: Duration::from_millis(250),
            checkpoint_retries: 2,
            max_restarts: 8,
            deadline: Duration::from_secs(30),
        }
    }
}

impl ChaosConfig {
    /// The plan shape matching this workload: crash points spread across
    /// worker records, post-ack windows, and the checkpoint rounds the run
    /// will actually perform.
    pub fn profile(&self) -> ChaosProfile {
        ChaosProfile {
            max_fatal: 2,
            max_benign: 2,
            record_range: (
                1,
                (self.events / u64::from(self.parallelism).max(1)) / 2 + 2,
            ),
            ssid_range: (1, u64::from(self.rounds) + 1),
            operators: vec!["count".into(), "src".into()],
            instances: self.parallelism,
        }
    }
}

/// Outcome of one chaos iteration (the invariants already passed if this
/// is returned at all — violations surface as `Err`).
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The seed the plan came from (0 for explicit plans).
    pub seed: u64,
    /// Faults that actually fired, with resolved outcomes.
    pub faults: Vec<FaultRecord>,
    /// Supervisor restarts performed.
    pub restarts: u32,
    /// In-place checkpoint retries performed.
    pub checkpoint_retries: u64,
    /// Checkpoint rounds aborted along the way.
    pub aborted_checkpoints: u64,
    /// Canonical digest of final state + fault firings: identical across
    /// runs of the same plan.
    pub fingerprint: String,
}

/// Shared gate: the source produces `index` while `index < allowance`.
pub(crate) struct GatedSource {
    index: u64,
    keys: i64,
    allowance: Arc<AtomicU64>,
}

impl Source for GatedSource {
    fn next_batch(&mut self, max: usize, _now_us: u64, out: &mut Vec<Record>) -> SourceStatus {
        let allowed = self.allowance.load(Ordering::Acquire);
        let budget = allowed.saturating_sub(self.index).min(max as u64);
        if budget == 0 {
            return SourceStatus::Idle;
        }
        for _ in 0..budget {
            out.push(Record::new((self.index as i64) % self.keys, 1i64));
            self.index += 1;
        }
        SourceStatus::Active
    }

    fn offset(&self) -> Value {
        Value::Int(self.index as i64)
    }

    fn rewind(&mut self, offset: &Value) {
        self.index = offset.as_int().expect("int offset") as u64;
    }
}

pub(crate) struct GatedFactory {
    pub(crate) keys: i64,
    pub(crate) allowance: Arc<AtomicU64>,
}

impl SourceFactory for GatedFactory {
    fn create(&self, _i: u32, _n: u32) -> Box<dyn Source> {
        Box::new(GatedSource {
            index: 0,
            keys: self.keys,
            allowance: Arc::clone(&self.allowance),
        })
    }
}

pub(crate) fn counting_factory(
) -> Arc<FnStateful<impl Fn(u32, u32) -> Box<dyn Stateful> + Send + Sync>> {
    Arc::new(FnStateful(|_, _| {
        Box::new(FnStatefulOp(
            |r: Record, state: &mut dyn KeyedState, out: &mut Vec<Record>| {
                let next = state.get(&r.key).and_then(|v| v.as_int()).unwrap_or(0) + 1;
                state.put(r.key.clone(), Value::Int(next));
                out.push(Record {
                    key: r.key,
                    value: Value::Int(next),
                    src_ts: r.src_ts,
                    port: 0,
                });
            },
        )) as Box<dyn Stateful>
    }))
}

fn chaos_job(cfg: &ChaosConfig, allowance: &Arc<AtomicU64>) -> JobSpec {
    let mut b = JobSpec::builder("chaos-count");
    let src = b.source(
        "src",
        1,
        Arc::new(GatedFactory {
            keys: cfg.keys,
            allowance: Arc::clone(allowance),
        }),
    );
    let op = b.stateful_with_schema(
        "count",
        cfg.parallelism,
        counting_factory(),
        schema(vec![("this", DataType::Int)]),
    );
    let sink = b.sink("sink", 1, Arc::new(NullSinkFactory));
    b.edge(src, op, EdgeKind::Keyed);
    b.edge(op, sink, EdgeKind::Forward);
    b.build().expect("valid chaos job")
}

/// The per-key counts a fault-free pass over the input produces.
pub fn expected_counts(events: u64, keys: i64) -> Vec<(Value, Value)> {
    let mut counts = vec![0i64; keys as usize];
    for i in 0..events {
        counts[(i as i64 % keys) as usize] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .filter(|(_, c)| *c > 0)
        .map(|(k, c)| (Value::Int(k as i64), Value::Int(c)))
        .collect()
}

/// Sum of the live per-key counts — the number of *distinct* input records
/// whose effect is currently in state (replays don't inflate it).
pub(crate) fn live_progress(system: &SQuery) -> i64 {
    system
        .grid()
        .get_map("count")
        .map(|m| {
            m.entries()
                .iter()
                .filter_map(|(_, v)| v.as_int())
                .sum::<i64>()
        })
        .unwrap_or(0)
}

fn fail_if_gave_up(job: &SupervisedJob) -> SqResult<()> {
    let status = job.status();
    if status.gave_up {
        return Err(SqError::Runtime(format!(
            "supervisor gave up after {} restarts: {}",
            status.restarts,
            status.last_error.unwrap_or_default()
        )));
    }
    Ok(())
}

/// Wait until the state reflects `target` distinct records (recovery dips
/// are expected; the supervisor must bring it back).
fn wait_progress(
    system: &SQuery,
    job: &SupervisedJob,
    target: i64,
    deadline: Instant,
) -> SqResult<()> {
    loop {
        fail_if_gave_up(job)?;
        if live_progress(system) >= target {
            return Ok(());
        }
        if Instant::now() > deadline {
            return Err(SqError::Runtime(format!(
                "chaos run stalled at {}/{} records",
                live_progress(system),
                target
            )));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Trigger a checkpoint, riding out fault-induced aborts and restarts.
fn checkpoint_with_patience(job: &SupervisedJob, deadline: Instant) -> SqResult<()> {
    loop {
        fail_if_gave_up(job)?;
        match job.with_job(|j| j.checkpoint_now()) {
            Ok(_) => return Ok(()),
            Err(e) => {
                if Instant::now() > deadline {
                    return Err(SqError::Runtime(format!(
                        "no checkpoint committed before the deadline: {e}"
                    )));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Run the seeded plan for `seed` — see the module docs for what one
/// iteration does and checks.
pub fn run_seed(cfg: &ChaosConfig, seed: u64) -> SqResult<ChaosReport> {
    run_plan(cfg, FaultPlan::seeded(seed, &cfg.profile()))
}

/// Run an explicit fault plan against the chaos workload.
pub fn run_plan(cfg: &ChaosConfig, plan: FaultPlan) -> SqResult<ChaosReport> {
    let seed = plan.seed;
    let system = SQuery::new(
        SQueryConfig::default()
            .with_state(StateConfig::live_and_snapshot())
            .with_ack_timeout(cfg.ack_timeout)
            .with_checkpoint_retries(cfg.checkpoint_retries, Duration::from_millis(2)),
    )?;
    let injector = system.inject_faults(plan);
    let allowance = Arc::new(AtomicU64::new(0));
    let job = system.submit_supervised(
        chaos_job(cfg, &allowance),
        RestartPolicy {
            max_restarts: cfg.max_restarts,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
            poll_interval: Duration::from_millis(2),
            jitter_seed: seed,
        },
    )?;
    let deadline = Instant::now() + cfg.deadline;

    // Feed the input in `rounds` slices with a checkpoint after each, so
    // ssid-triggered faults land between meaningful phase-1/phase-2 rounds.
    let per_round = (cfg.events / u64::from(cfg.rounds)).max(1);
    let mut released = 0u64;
    for round in 0..cfg.rounds {
        released = if round + 1 == cfg.rounds {
            cfg.events
        } else {
            (released + per_round).min(cfg.events)
        };
        allowance.store(released, Ordering::Release);
        wait_progress(&system, &job, released as i64, deadline)?;
        checkpoint_with_patience(&job, deadline)?;
    }

    // Settle: a fault that fired during the *final* checkpoint round (e.g.
    // a post-ack worker kill with every ack already in) lets the commit
    // succeed while the supervisor is still about to act on the dead
    // worker. Wait until every fired fault has a terminal outcome and
    // progress has re-converged after any such late restart.
    while invariants::check_faults_resolved(&injector).is_err() {
        fail_if_gave_up(&job)?;
        if Instant::now() > deadline {
            return Err(SqError::Runtime(
                "faults still unresolved at the deadline".into(),
            ));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    // Blocks on the job lock, so an in-flight restore finishes first.
    job.wait_healthy(deadline.saturating_duration_since(Instant::now()))?;
    wait_progress(&system, &job, cfg.events as i64, deadline)?;

    // Converged: verify the run left no fault visible in the state.
    let grid = system.grid();
    invariants::check_exactly_once(grid, "count", &expected_counts(cfg.events, cfg.keys))?;
    let latest = grid.registry().latest_committed();
    invariants::check_live_matches_snapshot(grid, "count", latest)?;
    invariants::check_snapshot_monotonic(grid.telemetry())?;
    invariants::check_faults_resolved(&injector)?;
    invariants::check_lock_order_clean()?;

    // The SQL surface must agree with the injector's own log.
    let sys_rows = system
        .query("SELECT COUNT(*) AS n FROM sys_faults")?
        .scalar("n")
        .and_then(Value::as_int)
        .unwrap_or(-1);
    let fired = injector.records();
    if sys_rows != fired.len() as i64 {
        return Err(SqError::Runtime(format!(
            "sys_faults lists {sys_rows} rows but the injector fired {}",
            fired.len()
        )));
    }

    let status = job.status();
    let report = ChaosReport {
        seed,
        fingerprint: fingerprint(grid, &fired),
        faults: fired,
        restarts: status.restarts,
        checkpoint_retries: grid
            .telemetry()
            .counter_value("checkpoint_retries_total", &[])
            .unwrap_or(0),
        aborted_checkpoints: job.checkpoint_stats().aborted(),
    };
    job.stop();
    Ok(report)
}

/// Canonical digest of the final operator state plus the *stable* fields of
/// every fault firing (not timestamps): byte-identical across runs of the
/// same plan.
fn fingerprint(grid: &squery_storage::Grid, faults: &[FaultRecord]) -> String {
    let mut out = String::from("state:");
    if let Some(map) = grid.get_map("count") {
        let mut entries = map.entries();
        entries.sort();
        for (k, v) in entries {
            out.push_str(&format!("{k:?}={v:?};"));
        }
    }
    out.push_str("|faults:");
    for f in faults {
        out.push_str(&format!(
            "{}/{}/{}/{}/{};",
            f.point.as_str(),
            f.action.as_str(),
            f.operator.as_deref().unwrap_or("-"),
            f.instance.map(|i| i.to_string()).unwrap_or("-".into()),
            f.outcome,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use squery_common::fault::{FaultAction, FaultSpec, FaultTrigger, InjectionPoint};

    /// A quick profile so unit tests stay fast; the ≥50-seed soak lives in
    /// `tests/chaos_soak.rs`.
    fn quick() -> ChaosConfig {
        ChaosConfig {
            events: 60,
            rounds: 3,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn fault_free_plan_passes_all_invariants() {
        let report = run_plan(&quick(), FaultPlan::new(0)).unwrap();
        assert_eq!(report.restarts, 0);
        assert!(report.faults.is_empty());
        assert!(report.fingerprint.starts_with("state:"));
    }

    #[test]
    fn worker_kill_between_phases_recovers_and_reproduces() {
        // The acceptance scenario: a worker dies after acking phase 1 of
        // checkpoint 1 but before forwarding the marker (so phase 2 never
        // starts); the supervisor recovers without any manual recover().
        let plan = || {
            FaultPlan::new(0).with(FaultSpec {
                point: InjectionPoint::WorkerPostAck,
                action: FaultAction::PanicWorker,
                trigger: FaultTrigger {
                    at_ssid: Some(1),
                    operator: Some("count".into()),
                    instance: Some(0),
                    ..FaultTrigger::default()
                },
                once: true,
            })
        };
        let a = run_plan(&quick(), plan()).unwrap();
        let b = run_plan(&quick(), plan()).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint, "byte-identical reruns");
        assert!(a.restarts >= 1, "supervisor had to act");
        assert_eq!(a.faults.len(), 1);
        assert_eq!(a.faults[0].outcome, "recovered");
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let cfg = quick();
        let p1 = FaultPlan::seeded(42, &cfg.profile());
        let p2 = FaultPlan::seeded(42, &cfg.profile());
        assert_eq!(format!("{p1:?}"), format!("{p2:?}"));
    }
}
