//! # S-QUERY
//!
//! Reference implementation (reproduction) of **"S-QUERY: Opening the Black
//! Box of Internal Stream Processor State"** (ICDE 2022): making the internal
//! state of a distributed stream processor externally queryable, live or
//! through consistent snapshots, at well-defined isolation levels.
//!
//! The architecture mirrors the paper's Figure 1:
//!
//! ```text
//!   stream processor (squery-streaming)      state store (squery-storage)
//!   ┌───────────────────────────────┐        ┌──────────────────────────┐
//!   │ sources → stateful ops → sinks│ ─────▶ │ live maps   <operator>   │
//!   │    marker-aligned checkpoints │ ─────▶ │ snapshots   snapshot_<op>│
//!   └───────────────────────────────┘        │ snapshot registry (2PC)  │
//!                                            └────────────┬─────────────┘
//!                query system (this crate + squery-sql)   ▼
//!                SQL interface  ·  direct object interface
//! ```
//!
//! Entry point: [`SQuery`]. Configure which state mechanisms are active with
//! [`SQueryConfig`] (live write-through, queryable full/incremental
//! snapshots, retention), submit stream jobs, then query:
//!
//! ```
//! use squery::{SQuery, SQueryConfig};
//! use squery_common::Value;
//!
//! let system = SQuery::new(SQueryConfig::default()).unwrap();
//! // Populate an operator's live state as a running job would.
//! let map = system.grid().map("average");
//! map.put(Value::Int(1), Value::Int(30));
//! let result = system.query("SELECT this FROM average WHERE partitionKey = 1").unwrap();
//! assert_eq!(result.rows()[0][0], Value::Int(30));
//! ```
//!
//! The crate re-exports the substrate APIs a downstream user needs, so
//! `squery` alone is enough to build and query a streaming application.

pub mod audit;
pub mod chaos;
pub mod config;
pub mod direct;
pub mod durability;
pub mod invariants;
pub mod isolation;
pub mod overview;
pub mod stats;
pub mod systables;
pub mod system;

pub use audit::{ErasureReceipt, SubjectReport};
pub use chaos::{ChaosConfig, ChaosReport};
pub use config::SQueryConfig;
pub use direct::{DirectQuery, StateView};
pub use durability::{DurabilityConfig, DurabilityReport};
pub use isolation::IsolationLevel;
pub use overview::SystemOverview;
pub use stats::StatsCatalog;
pub use system::SQuery;

// Re-export the substrate surface a user programs against.
pub use squery_common::config::Parallelism;
pub use squery_sql::{ResultSet, SqlEngine};
pub use squery_storage::{
    FsyncMode, Grid, PartitionStats, SnapshotMode, StateStats, TableStats, WalManager,
};
pub use squery_streaming::{
    EdgeKind, EngineConfig, JobHandle, JobReport, JobSpec, RestartPolicy, StateConfig, StreamEnv,
    SupervisedJob, SupervisorStatus,
};
