//! Durability chaos harness: process-kill shapes against the write-ahead
//! log, each followed by a *real* cold start from the WAL directory alone.
//!
//! One [`run_durability_seed`] call is one soak iteration:
//!
//! 1. Bring up a WAL-backed deployment and run the counting workload in
//!    checkpointed slices, so round `i` seals snapshot `i` on disk.
//! 2. Fire one durability fault chosen by `seed % 4` — the WAL freezes at
//!    that point ("dead disk"), modelling a process kill whose in-memory
//!    side may be ahead of the durable one:
//!    * shape 0 — freeze **after** round 3's commit record (kill after the
//!      phase-2 seal): disk holds rounds 1–3 sealed;
//!    * shape 1 — tear a phase-1 delta record of round 3 mid-write: the
//!      round's tail is unsealed garbage recovery must truncate;
//!    * shape 2 — freeze **before** round 3's commit record (kill between
//!      phase 1 and the seal): rounds 1–2 sealed, round 3 an unsealed tail;
//!    * shape 3 — freeze mid-compaction, after the replacement segment was
//!      written but before the rename: the stray `.wal.tmp` must be ignored
//!      and cleaned up, the original segment still authoritative.
//! 3. Kill the process (drop every in-memory structure) and cold-start a
//!    brand-new deployment from the WAL directory. Verify the recovered
//!    version is exactly the shape's expected one, that queries against it
//!    (scan, SQL, direct `get_many`) are byte-identical to the same queries
//!    against the pre-kill committed snapshot, then resume the job with
//!    [`SQuery::submit_recovered`] and drain — the final state must equal a
//!    fault-free pass (exactly-once across the kill), with the monotonicity,
//!    live≡snapshot, fault-resolution, and lock-order invariants all clean.

use crate::chaos::{counting_factory, expected_counts, live_progress, GatedFactory};
use crate::config::SQueryConfig;
use crate::direct::StateView;
use crate::invariants;
use crate::system::SQuery;
use squery_common::fault::{
    FaultAction, FaultPlan, FaultRecord, FaultSpec, FaultTrigger, InjectionPoint,
};
use squery_common::schema::schema;
use squery_common::{DataType, SnapshotId, SqError, SqResult, Value};
use squery_storage::FsyncMode;
use squery_streaming::dag::adapters::NullSinkFactory;
use squery_streaming::{EdgeKind, JobSpec, StateConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Workload shape for one durability iteration.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Root directory for this iteration's WAL (created, then removed).
    pub wal_dir: PathBuf,
    /// Total records the source produces.
    pub events: u64,
    /// Distinct keys (record `i` gets key `i % keys`).
    pub keys: i64,
    /// Parallelism of the counting operator.
    pub parallelism: u32,
    /// Per-phase wait budget.
    pub timeout: Duration,
}

impl DurabilityConfig {
    /// The default workload rooted at `wal_dir`.
    pub fn new(wal_dir: impl Into<PathBuf>) -> DurabilityConfig {
        DurabilityConfig {
            wal_dir: wal_dir.into(),
            events: 120,
            keys: 6,
            parallelism: 2,
            timeout: Duration::from_secs(20),
        }
    }
}

/// Outcome of one durability iteration (invariants already passed if this
/// is returned at all — violations surface as `Err`).
#[derive(Debug, Clone)]
pub struct DurabilityReport {
    /// The seed (shape = `seed % 4`).
    pub seed: u64,
    /// Which kill shape ran (0–3, see module docs).
    pub shape: u64,
    /// The version the cold start recovered.
    pub recovered: SnapshotId,
    /// Torn tails recovery truncated (shapes 1–2 produce at least one).
    pub torn_truncations: i64,
    /// Faults that fired, with resolved outcomes.
    pub faults: Vec<FaultRecord>,
    /// Canonical digest of the recovered snapshot + final state: identical
    /// across runs of the same seed.
    pub fingerprint: String,
}

fn counting_job(keys: i64, parallelism: u32, allowance: &Arc<AtomicU64>) -> JobSpec {
    let mut b = JobSpec::builder("durability-count");
    let src = b.source(
        "src",
        1,
        Arc::new(GatedFactory {
            keys,
            allowance: Arc::clone(allowance),
        }),
    );
    let op = b.stateful_with_schema(
        "count",
        parallelism,
        counting_factory(),
        schema(vec![("this", DataType::Int)]),
    );
    let sink = b.sink("sink", 1, Arc::new(NullSinkFactory));
    b.edge(src, op, EdgeKind::Keyed);
    b.edge(op, sink, EdgeKind::Forward);
    b.build().expect("valid durability job")
}

/// The fault plan for `seed`: one durability fault at round 3, per shape.
fn shape_plan(seed: u64) -> FaultPlan {
    let at_round_3 = FaultTrigger {
        at_ssid: Some(3),
        ..FaultTrigger::default()
    };
    let (point, action, trigger) = match seed % 4 {
        0 => (
            InjectionPoint::WalSealed,
            FaultAction::FreezeWal,
            at_round_3,
        ),
        1 => (
            InjectionPoint::WalAppend,
            FaultAction::TornWrite { keep_bytes: 7 },
            at_round_3,
        ),
        2 => (InjectionPoint::WalSeal, FaultAction::FreezeWal, at_round_3),
        // Compaction carries no snapshot id: with WAL retention 1 the first
        // compaction runs during round 3's pruning, right where we want it.
        _ => (
            InjectionPoint::WalCompact,
            FaultAction::FreezeWal,
            FaultTrigger::default(),
        ),
    };
    FaultPlan::new(seed).with(FaultSpec {
        point,
        action,
        trigger,
        once: true,
    })
}

/// The snapshot version each shape must recover (checkpoint `i` = ssid `i`).
fn expected_recovered(shape: u64) -> u64 {
    match shape {
        // Sealed through round 3 (kill after the commit record / after a
        // crash-consistent compaction attempt).
        0 | 3 => 3,
        // Round 3 torn or never sealed: the previous version wins.
        _ => 2,
    }
}

/// Canonical digest of the committed snapshot at `ssid`, read through all
/// three query surfaces: sorted store scan, SQL over the snapshot table, and
/// the direct multi-key interface.
fn snapshot_fingerprint(system: &SQuery, ssid: SnapshotId, keys: i64) -> SqResult<String> {
    let store = system
        .grid()
        .get_snapshot_store("count")
        .ok_or_else(|| SqError::NotFound("no snapshot store for count".into()))?;
    let (mut scan, _) = store.scan_at(ssid)?;
    scan.sort();
    let sql = system.query(&format!(
        "SELECT partitionKey, this FROM snapshot_count WHERE ssid = {} \
         ORDER BY partitionKey",
        ssid.0
    ))?;
    let key_list: Vec<Value> = (0..keys).map(Value::Int).collect();
    let direct = system
        .direct()
        .get_many("count", &key_list, StateView::Snapshot(ssid))?;
    Ok(format!(
        "scan:{scan:?}|sql:{:?}|direct:{direct:?}",
        sql.rows()
    ))
}

/// Wait until the live per-key counts reflect `target` distinct records,
/// then trigger a checkpoint (the gated source is never "exhausted", so the
/// drain barrier is progress-based).
fn settle_and_checkpoint(
    system: &SQuery,
    job: &squery_streaming::JobHandle,
    target: i64,
    timeout: Duration,
) -> SqResult<SnapshotId> {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        if let Some(msg) = job.worker_failure() {
            return Err(SqError::WorkerDied(msg));
        }
        if live_progress(system) >= target {
            break;
        }
        if std::time::Instant::now() > deadline {
            return Err(SqError::Runtime(format!(
                "durability run stalled at {}/{target} records",
                live_progress(system)
            )));
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    job.checkpoint_now()
}

fn tmp_files_under(root: &Path) -> usize {
    let mut n = 0;
    let Ok(stores) = std::fs::read_dir(root) else {
        return 0;
    };
    for store in stores.flatten() {
        let Ok(files) = std::fs::read_dir(store.path()) else {
            continue;
        };
        n += files
            .flatten()
            .filter(|f| f.path().extension().is_some_and(|e| e == "tmp"))
            .count();
    }
    n
}

/// Run one kill-and-cold-start iteration — see the module docs for the four
/// shapes and what each must prove.
pub fn run_durability_seed(cfg: &DurabilityConfig, seed: u64) -> SqResult<DurabilityReport> {
    let shape = seed % 4;
    let _ = std::fs::remove_dir_all(&cfg.wal_dir);
    let base_config = || {
        SQueryConfig::default()
            .with_state(StateConfig::live_and_snapshot())
            .with_wal_dir(&cfg.wal_dir)
            .with_fsync(FsyncMode::OnCommit)
            // Retention 1 compacts eagerly, so shape 3's fault has a
            // compaction to interrupt within three rounds.
            .with_wal_retention(1)
    };

    // ── Incarnation 1: run in 3 checkpointed slices; the fault fires in
    // round 3 and freezes the WAL (the "kill point" for the durable state).
    let system = SQuery::new(base_config())?;
    let injector = system.inject_faults(shape_plan(seed));
    let allowance = Arc::new(AtomicU64::new(0));
    let mut job = system.submit(counting_job(cfg.keys, cfg.parallelism, &allowance))?;
    let slice = cfg.events / 3;
    for round in 1..=3u64 {
        let released = if round == 3 {
            cfg.events
        } else {
            round * slice
        };
        allowance.store(released, Ordering::Release);
        let ssid = settle_and_checkpoint(&system, &job, released as i64, cfg.timeout)?;
        if ssid.0 != round {
            return Err(SqError::Runtime(format!(
                "checkpoint {round} committed as snapshot {ssid} — aborted rounds skew \
                 the shape's expected recovery point"
            )));
        }
    }
    let expected_ssid = SnapshotId(expected_recovered(shape));
    // What the recovered snapshot must answer, captured pre-kill.
    let pre_kill = snapshot_fingerprint(&system, expected_ssid, cfg.keys)?;
    if shape == 3 && tmp_files_under(&cfg.wal_dir) == 0 {
        return Err(SqError::Runtime(
            "shape 3 expected a stray .wal.tmp from the interrupted compaction".into(),
        ));
    }

    // ── The kill: workers die, every in-memory structure is dropped. The
    // WAL directory is all that survives.
    job.crash();
    drop(job);
    drop(system);
    injector.resolve_pending("recovered");

    // ── Incarnation 2: cold start from the WAL directory alone.
    let system = SQuery::new(base_config())?;
    let recovered = system
        .latest_snapshot()
        .ok_or_else(|| SqError::Runtime("cold start recovered nothing from the WAL".into()))?;
    if recovered != expected_ssid {
        return Err(SqError::Runtime(format!(
            "shape {shape} recovered snapshot {recovered}, expected {expected_ssid}"
        )));
    }
    if tmp_files_under(&cfg.wal_dir) != 0 {
        return Err(SqError::Runtime(
            "recovery left stray .wal.tmp files behind".into(),
        ));
    }
    let post_kill = snapshot_fingerprint(&system, expected_ssid, cfg.keys)?;
    if post_kill != pre_kill {
        return Err(SqError::Runtime(format!(
            "recovered snapshot diverges from the pre-kill one:\n pre: {pre_kill}\npost: {post_kill}"
        )));
    }
    let torn = system
        .query("SELECT SUM(torn_truncations) AS t FROM sys_wal")?
        .scalar("t")
        .and_then(Value::as_int)
        .unwrap_or(0);
    if matches!(shape, 1 | 2) && torn == 0 {
        return Err(SqError::Runtime(format!(
            "shape {shape} left an unsealed tail but recovery truncated nothing"
        )));
    }

    // ── Resume: sources rewind to the recovered offsets; draining the rest
    // of the input must land on exactly the fault-free counts.
    let allowance = Arc::new(AtomicU64::new(cfg.events));
    let job = system.submit_recovered(counting_job(cfg.keys, cfg.parallelism, &allowance))?;
    settle_and_checkpoint(&system, &job, cfg.events as i64, cfg.timeout)?;
    let grid = system.grid();
    invariants::check_exactly_once(grid, "count", &expected_counts(cfg.events, cfg.keys))?;
    invariants::check_live_matches_snapshot(grid, "count", grid.registry().latest_committed())?;
    invariants::check_snapshot_monotonic(grid.telemetry())?;
    invariants::check_faults_resolved(&injector)?;
    invariants::check_lock_order_clean()?;
    job.stop();

    let faults = injector.records();
    if faults.is_empty() {
        return Err(SqError::Runtime(format!(
            "shape {shape} fault never fired — the soak proved nothing"
        )));
    }
    let mut final_state = grid
        .get_map("count")
        .map(|m| m.entries())
        .unwrap_or_default();
    final_state.sort();
    let fingerprint = format!(
        "recovered:{}|{post_kill}|final:{final_state:?}",
        recovered.0
    );
    let _ = std::fs::remove_dir_all(&cfg.wal_dir);
    Ok(DurabilityReport {
        seed,
        shape,
        recovered,
        torn_truncations: torn,
        faults,
        fingerprint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(tag: &str) -> DurabilityConfig {
        DurabilityConfig::new(std::env::temp_dir().join(format!(
            "squery-durability-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        )))
    }

    #[test]
    fn shape0_kill_after_seal_recovers_the_sealed_round() {
        let report = run_durability_seed(&cfg("s0"), 0).unwrap();
        assert_eq!(report.shape, 0);
        assert_eq!(report.recovered, SnapshotId(3));
        assert_eq!(report.faults.len(), 1);
        assert_eq!(report.faults[0].outcome, "recovered");
    }

    #[test]
    fn shape1_torn_append_truncates_and_recovers_previous_round() {
        let report = run_durability_seed(&cfg("s1"), 1).unwrap();
        assert_eq!(report.recovered, SnapshotId(2));
        assert!(report.torn_truncations >= 1, "{report:?}");
    }

    #[test]
    fn shape2_kill_before_seal_recovers_previous_round() {
        let report = run_durability_seed(&cfg("s2"), 2).unwrap();
        assert_eq!(report.recovered, SnapshotId(2));
        assert!(report.torn_truncations >= 1, "{report:?}");
    }

    #[test]
    fn shape3_kill_mid_compaction_keeps_the_original_segment() {
        let report = run_durability_seed(&cfg("s3"), 3).unwrap();
        assert_eq!(report.recovered, SnapshotId(3));
    }

    #[test]
    fn same_seed_reproduces_the_same_fingerprint() {
        let a = run_durability_seed(&cfg("fp-a"), 5).unwrap();
        let b = run_durability_seed(&cfg("fp-b"), 5).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
    }
}
