//! System overview: the monitoring face of queryable state (paper §III).
//!
//! A one-call summary of everything the state store holds — per-operator
//! live sizes, snapshot version counts and bytes, the committed snapshot
//! window — the kind of view an operator dashboard would poll.

use crate::system::SQuery;
use squery_common::SnapshotId;
use std::fmt;

/// Summary of one operator's state footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorState {
    /// Operator name.
    pub operator: String,
    /// Live entries currently held (`None` if live state is disabled).
    pub live_entries: Option<usize>,
    /// Approximate live bytes.
    pub live_bytes: Option<usize>,
    /// Retained snapshot versions in the store.
    pub snapshot_versions: usize,
    /// Stored snapshot entries across versions (incl. tombstones).
    pub snapshot_entries: usize,
    /// Approximate snapshot bytes.
    pub snapshot_bytes: usize,
}

/// A point-in-time summary of the whole deployment's state.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemOverview {
    /// Per-operator footprints, sorted by name (internal `__` tables hidden).
    pub operators: Vec<OperatorState>,
    /// Latest committed snapshot id.
    pub latest_snapshot: Option<SnapshotId>,
    /// All retained committed snapshot ids, ascending.
    pub retained_snapshots: Vec<SnapshotId>,
    /// Total live bytes across operators.
    pub total_live_bytes: usize,
    /// Total snapshot bytes across operators.
    pub total_snapshot_bytes: usize,
}

impl fmt::Display for SystemOverview {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "state store overview — latest snapshot: {}, retained: {:?}",
            self.latest_snapshot
                .map(|s| s.to_string())
                .unwrap_or_else(|| "<none>".into()),
            self.retained_snapshots
                .iter()
                .map(|s| s.0)
                .collect::<Vec<_>>()
        )?;
        writeln!(
            f,
            "{:<20} {:>12} {:>12} {:>10} {:>14} {:>14}",
            "operator", "live entries", "live bytes", "versions", "snap entries", "snap bytes"
        )?;
        for op in &self.operators {
            writeln!(
                f,
                "{:<20} {:>12} {:>12} {:>10} {:>14} {:>14}",
                op.operator,
                op.live_entries.map_or("-".into(), |n| n.to_string()),
                op.live_bytes.map_or("-".into(), |n| n.to_string()),
                op.snapshot_versions,
                op.snapshot_entries,
                op.snapshot_bytes,
            )?;
        }
        write!(
            f,
            "total: {} live bytes, {} snapshot bytes",
            self.total_live_bytes, self.total_snapshot_bytes
        )
    }
}

impl SQuery {
    /// Collect a point-in-time overview of all operator state.
    pub fn overview(&self) -> SystemOverview {
        let grid = self.grid();
        let mut names: Vec<String> = grid
            .map_names()
            .into_iter()
            .chain(
                grid.snapshot_table_names()
                    .into_iter()
                    .map(|t| t.strip_prefix("snapshot_").unwrap_or(&t).to_string()),
            )
            .filter(|n| !n.starts_with("__"))
            .collect();
        names.sort();
        names.dedup();
        let operators = names
            .into_iter()
            .map(|operator| {
                let live = grid.get_map(&operator);
                let snap = grid.get_snapshot_store(&operator);
                let stats = snap.as_ref().map(|s| s.stats());
                OperatorState {
                    live_entries: live.as_ref().map(|m| m.len()),
                    live_bytes: live.as_ref().map(|m| m.approximate_bytes()),
                    snapshot_versions: stats.map_or(0, |s| s.retained_versions),
                    snapshot_entries: stats.map_or(0, |s| s.stored_entries),
                    snapshot_bytes: stats.map_or(0, |s| s.approx_bytes),
                    operator,
                }
            })
            .collect();
        SystemOverview {
            operators,
            latest_snapshot: self.latest_snapshot(),
            retained_snapshots: self.retained_snapshots(),
            total_live_bytes: grid.total_live_bytes(),
            total_snapshot_bytes: grid.total_snapshot_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SQueryConfig;
    use squery_common::Value;

    #[test]
    fn overview_reports_operator_footprints() {
        let system = SQuery::new(SQueryConfig::default()).unwrap();
        let grid = system.grid();
        let live = grid.map("orders");
        live.put(Value::Int(1), Value::str("x"));
        live.put(Value::Int(2), Value::str("y"));
        let store = grid.snapshot_store("orders");
        let ssid = grid.registry().begin().unwrap();
        store.write_partition(
            ssid,
            store.partition_of(&Value::Int(1)),
            vec![(Value::Int(1), Some(Value::str("x")))],
            true,
        );
        grid.registry().commit(ssid).unwrap();
        grid.snapshot_store("__offsets"); // internal: must be hidden

        let overview = system.overview();
        assert_eq!(overview.operators.len(), 1);
        let orders = &overview.operators[0];
        assert_eq!(orders.operator, "orders");
        assert_eq!(orders.live_entries, Some(2));
        assert_eq!(orders.snapshot_versions, 1);
        assert_eq!(orders.snapshot_entries, 1);
        assert!(orders.live_bytes.unwrap() > 0);
        assert_eq!(overview.latest_snapshot, Some(ssid));
        let text = overview.to_string();
        assert!(text.contains("orders"), "{text}");
        assert!(!text.contains("__offsets"), "{text}");
    }

    #[test]
    fn overview_without_any_state() {
        let system = SQuery::new(SQueryConfig::default()).unwrap();
        let overview = system.overview();
        assert!(overview.operators.is_empty());
        assert!(overview.latest_snapshot.is_none());
        assert_eq!(overview.total_live_bytes, 0);
        assert!(overview.to_string().contains("<none>"));
    }

    #[test]
    fn snapshot_only_operator_shows_no_live_columns() {
        let system = SQuery::new(SQueryConfig::default()).unwrap();
        let grid = system.grid();
        grid.snapshot_store("avg");
        let overview = system.overview();
        assert_eq!(overview.operators.len(), 1);
        assert_eq!(overview.operators[0].live_entries, None);
        assert!(overview.to_string().contains('-'));
    }
}
