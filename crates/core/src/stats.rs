//! The stats catalog: the snapshot API over continuous state statistics.
//!
//! The paper opens operator state itself to queries; this module opens the
//! *shape* of that state. The storage layer keeps cheap per-partition
//! accounting on the write path and a background sampler maintains
//! distinct-count / heavy-hitter sketches per table
//! ([`squery_storage::StateStats`]). [`StatsCatalog`] is the read side:
//! point-in-time [`TableStats`] snapshots, a JSON dump for external
//! monitoring, and the row-estimate lookups the SQL planner uses to
//! annotate `EXPLAIN` output (metrics are additionally exported through the
//! regular Prometheus endpoint as `stats_*` gauges on every sample).

use squery_storage::{Grid, TableStats};
use std::sync::Arc;

/// Read-side facade over the grid's continuous state statistics.
///
/// Cloning is cheap; all clones observe the same underlying statistics.
#[derive(Clone)]
pub struct StatsCatalog {
    grid: Arc<Grid>,
}

impl StatsCatalog {
    /// A catalog over `grid`'s statistics.
    pub fn new(grid: Arc<Grid>) -> StatsCatalog {
        StatsCatalog { grid }
    }

    /// Statistics for every user-visible table, sorted by name. Counter
    /// fields (rows, bytes, writes, removes) are live; sketch fields
    /// (distinct keys, hot keys, skew, rates) are as of the last sample.
    pub fn snapshot(&self) -> Vec<TableStats> {
        self.grid
            .stats()
            .snapshot(&self.grid)
            .into_iter()
            .filter(|t| !t.table.starts_with("__"))
            .collect()
    }

    /// Statistics for one table, if it exists.
    pub fn table(&self, name: &str) -> Option<TableStats> {
        self.grid.stats().table(&self.grid, name)
    }

    /// Estimated live row count for `table` from write-path accounting
    /// (exact up to in-flight relaxed updates). `None` for unknown tables.
    pub fn estimated_rows(&self, table: &str) -> Option<u64> {
        self.table(table).map(|t| t.rows)
    }

    /// Run one synchronous sampling pass — what the background sampler does
    /// on its interval. Returns the number of tables sampled. Deterministic
    /// tests use this instead of waiting on the sampler thread.
    pub fn sample_now(&self) -> usize {
        self.grid.arm_stats(true);
        self.grid.stats().sample(&self.grid)
    }

    /// Total sampling passes completed (thread or [`Self::sample_now`]).
    pub fn samples_total(&self) -> u64 {
        self.grid.stats().samples_total()
    }

    /// Whether write-path hot-key evidence collection is armed (true when
    /// the background sampler runs or after a `sample_now` call).
    pub fn is_armed(&self) -> bool {
        self.grid.stats().is_armed()
    }

    /// The whole catalog as a JSON document, for external dashboards:
    /// `{"samples_total": N, "tables": [{...}, ...]}`.
    pub fn dump_json(&self) -> String {
        let tables = self.snapshot();
        let mut out = String::with_capacity(256 + tables.len() * 256);
        out.push_str(&format!(
            "{{\"samples_total\":{},\"tables\":[",
            self.samples_total()
        ));
        for (i, t) in tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"table\":{},\"rows\":{},\"bytes\":{},\"writes\":{},\"removes\":{},\
                 \"write_rate_per_s\":{:.3},\"remove_rate_per_s\":{:.3},\
                 \"distinct_keys\":{},\"skew\":{:.3},\"samples\":{},\"hot_keys\":[",
                jstr(&t.table),
                t.rows,
                t.bytes,
                t.writes,
                t.removes,
                t.write_rate_per_s,
                t.remove_rate_per_s,
                t.distinct_keys,
                t.skew,
                t.samples,
            ));
            for (j, h) in t.hot_keys.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"key\":{},\"count\":{},\"error\":{}}}",
                    jstr(&h.key.to_string()),
                    h.count,
                    h.error
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use crate::config::SQueryConfig;
    use crate::system::SQuery;
    use squery_common::Value;

    #[test]
    fn catalog_reports_counts_and_sketches() {
        let system = SQuery::new(SQueryConfig::default()).unwrap();
        let map = system.grid().map("orders");
        for i in 0..20 {
            map.put(Value::Int(i % 5), Value::Int(i));
        }
        let stats = system.stats();
        assert_eq!(stats.estimated_rows("orders"), Some(5));
        assert_eq!(stats.estimated_rows("nope"), None);
        // Sketches are empty until a sample runs.
        assert_eq!(stats.table("orders").unwrap().distinct_keys, 0);
        assert!(stats.sample_now() >= 1);
        let t = stats.table("orders").unwrap();
        assert_eq!(t.distinct_keys, 5);
        assert_eq!(t.writes, 20);
        assert_eq!(stats.samples_total(), 1);
        assert!(stats.is_armed());
    }

    #[test]
    fn dump_json_is_well_formed() {
        let system = SQuery::new(SQueryConfig::default()).unwrap();
        // Hot-key evidence only flows once armed, so arm before writing.
        system.grid().arm_stats(true);
        let map = system.grid().map("orders");
        map.put(Value::str("a\"b"), Value::Int(1));
        system.stats().sample_now();
        let json = system.stats().dump_json();
        assert!(json.starts_with("{\"samples_total\":1,\"tables\":["));
        assert!(json.contains("\"table\":\"orders\""), "{json}");
        assert!(json.contains("\"rows\":1"));
        assert!(json.contains("\"key\":\"a\\\"b\""), "escaped key: {json}");
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn internal_stores_are_hidden() {
        let system = SQuery::new(SQueryConfig::default()).unwrap();
        system
            .grid()
            .map("__internal")
            .put(Value::Int(1), Value::Int(1));
        assert!(system
            .stats()
            .snapshot()
            .iter()
            .all(|t| t.table != "__internal"));
    }
}
