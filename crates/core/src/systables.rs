//! The `sys_*` tables: engine internals exposed through the SQL surface.
//!
//! The paper opens operator *state* to queries; this module applies the same
//! idea to the engine's own telemetry. Fourteen virtual tables are registered
//! in every [`SQuery`](crate::SQuery) deployment's catalog and recompute
//! their rows on every scan:
//!
//! | table             | one row per…                         |
//! |-------------------|---------------------------------------|
//! | `sys_metrics`     | metric (counter, gauge, or histogram) |
//! | `sys_events`      | retained engine event                 |
//! | `sys_operators`   | operator (state + record counters)    |
//! | `sys_checkpoints` | committed checkpoint round, per job   |
//! | `sys_snapshots`   | retained snapshot version, per store  |
//! | `sys_faults`      | injected fault, with recovery outcome |
//! | `sys_spans`       | recorded trace span                   |
//! | `sys_query_log`   | completed (or failed) SQL query       |
//! | `sys_partitions`  | non-empty partition, live or snapshot |
//! | `sys_state_stats` | table's state-statistics summary      |
//! | `sys_hot_keys`    | heavy-hitter key, per table           |
//! | `sys_wal`         | operator's write-ahead-log footprint  |
//! | `sys_watermarks`  | operator instance's event-time frontier |
//! | `sys_freshness`   | committed snapshot's staleness bound  |
//!
//! Because they are ordinary [`Table`]s, sys tables compose with the full
//! dialect — joins (including self-joins), aggregation, `ORDER BY` — and
//! with the regular state tables.

use parking_lot::Mutex;
use squery_common::lockorder::{self, LockClass};
use squery_common::schema::{schema, Schema};
use squery_common::telemetry::MetricsRegistry;
use squery_common::{DataType, Value};
use squery_sql::{GridCatalog, QueryLog, SysTable, Table};
use squery_storage::Grid;
use squery_streaming::checkpoint::CheckpointStats;
use std::sync::Arc;

/// Per-job checkpoint logs, shared between [`crate::SQuery`] and the
/// `sys_checkpoints` provider. Jobs are appended at submit time.
pub(crate) type JobLog = Arc<Mutex<Vec<(String, CheckpointStats)>>>;

fn opt_str(v: Option<&str>) -> Value {
    v.map(Value::str).unwrap_or(Value::Null)
}

fn opt_u64(v: Option<u64>) -> Value {
    v.map(|n| Value::Int(n as i64)).unwrap_or(Value::Null)
}

/// The operator a metric belongs to, from whichever label the subsystem used.
fn metric_operator(key: &squery_common::telemetry::MetricKey) -> Value {
    opt_str(
        key.label("operator")
            .or_else(|| key.label("map"))
            .or_else(|| key.label("store")),
    )
}

fn sys_metrics_schema() -> Arc<Schema> {
    schema(vec![
        ("name", DataType::Str),
        ("kind", DataType::Str),
        ("operator", DataType::Str),
        ("value", DataType::Int),
        ("count", DataType::Int),
        ("p50_us", DataType::Int),
        ("p90_us", DataType::Int),
        ("p99_us", DataType::Int),
        ("max_us", DataType::Int),
    ])
}

fn sys_metrics_rows(registry: &MetricsRegistry) -> Vec<Vec<Value>> {
    let mut rows = Vec::new();
    for (key, value) in registry.counters() {
        rows.push(vec![
            Value::str(&key.name),
            Value::str("counter"),
            metric_operator(&key),
            Value::Int(value as i64),
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
        ]);
    }
    for (key, value) in registry.gauges() {
        rows.push(vec![
            Value::str(&key.name),
            Value::str("gauge"),
            metric_operator(&key),
            Value::Int(value),
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
            Value::Null,
        ]);
    }
    for (key, hist) in registry.histograms() {
        rows.push(vec![
            Value::str(&key.name),
            Value::str("histogram"),
            metric_operator(&key),
            Value::Null,
            Value::Int(hist.count() as i64),
            Value::Int(hist.percentile(0.50) as i64),
            Value::Int(hist.percentile(0.90) as i64),
            Value::Int(hist.percentile(0.99) as i64),
            Value::Int(hist.max() as i64),
        ]);
    }
    rows
}

fn sys_events_schema() -> Arc<Schema> {
    schema(vec![
        ("seq", DataType::Int),
        ("at_us", DataType::Int),
        ("kind", DataType::Str),
        ("operator", DataType::Str),
        ("ssid", DataType::Int),
        ("duration_us", DataType::Int),
        ("detail", DataType::Str),
    ])
}

fn sys_events_rows(registry: &MetricsRegistry) -> Vec<Vec<Value>> {
    registry
        .events()
        .snapshot()
        .into_iter()
        .map(|ev| {
            vec![
                Value::Int(ev.seq as i64),
                Value::Int(ev.at_us as i64),
                Value::str(ev.kind.as_str()),
                opt_str(ev.operator.as_deref()),
                opt_u64(ev.ssid),
                opt_u64(ev.duration_us),
                Value::str(&ev.detail),
            ]
        })
        .collect()
}

fn sys_operators_schema() -> Arc<Schema> {
    schema(vec![
        ("operator", DataType::Str),
        ("live_entries", DataType::Int),
        ("live_bytes", DataType::Int),
        ("snapshot_versions", DataType::Int),
        ("snapshot_entries", DataType::Int),
        ("snapshot_bytes", DataType::Int),
        ("records_in", DataType::Int),
        ("records_out", DataType::Int),
        ("state_updates", DataType::Int),
    ])
}

fn sys_operators_rows(grid: &Grid) -> Vec<Vec<Value>> {
    let registry = grid.telemetry();
    // Union of operators holding state and operators only known through
    // their worker counters (sources and sinks have no maps).
    let mut names: Vec<String> = grid
        .map_names()
        .into_iter()
        .chain(
            grid.snapshot_table_names()
                .into_iter()
                .map(|t| t.strip_prefix("snapshot_").unwrap_or(&t).to_string()),
        )
        .chain(registry.counters().into_iter().filter_map(|(k, _)| {
            (k.name == "operator_records_in_total")
                .then(|| k.label("operator").map(str::to_string))
                .flatten()
        }))
        .filter(|n| !n.starts_with("__"))
        .collect();
    names.sort();
    names.dedup();
    names
        .into_iter()
        .map(|operator| {
            let live = grid.get_map(&operator);
            let stats = grid.get_snapshot_store(&operator).map(|s| s.stats());
            let labels = [("operator", operator.as_str())];
            let counter = |name: &str| opt_u64(registry.counter_value(name, &labels));
            vec![
                Value::str(&operator),
                live.as_ref()
                    .map(|m| Value::Int(m.len() as i64))
                    .unwrap_or(Value::Null),
                live.as_ref()
                    .map(|m| Value::Int(m.approximate_bytes() as i64))
                    .unwrap_or(Value::Null),
                Value::Int(stats.as_ref().map_or(0, |s| s.retained_versions) as i64),
                Value::Int(stats.as_ref().map_or(0, |s| s.stored_entries) as i64),
                Value::Int(stats.as_ref().map_or(0, |s| s.approx_bytes) as i64),
                counter("operator_records_in_total"),
                counter("operator_records_out_total"),
                counter("state_updates_total"),
            ]
        })
        .collect()
}

fn sys_checkpoints_schema() -> Arc<Schema> {
    schema(vec![
        ("job", DataType::Str),
        ("ssid", DataType::Int),
        ("began_at_us", DataType::Int),
        ("phase1_us", DataType::Int),
        ("total_us", DataType::Int),
        ("watermark_us", DataType::Int),
    ])
}

fn sys_checkpoints_rows(jobs: &JobLog) -> Vec<Vec<Value>> {
    let mut rows = Vec::new();
    let _lo = lockorder::acquired(LockClass::CoreJobs);
    for (job, stats) in jobs.lock().iter() {
        for r in stats.records() {
            rows.push(vec![
                Value::str(job),
                Value::Int(r.ssid.0 as i64),
                Value::Int(r.began_at_us as i64),
                Value::Int(r.phase1_us as i64),
                Value::Int(r.total_us as i64),
                if r.watermark_us > 0 {
                    Value::Int(r.watermark_us as i64)
                } else {
                    Value::Null
                },
            ]);
        }
    }
    rows
}

fn sys_snapshots_schema() -> Arc<Schema> {
    schema(vec![
        ("store", DataType::Str),
        ("ssid", DataType::Int),
        ("entries", DataType::Int),
        ("bytes", DataType::Int),
        ("committed", DataType::Int),
    ])
}

fn sys_snapshots_rows(grid: &Grid) -> Vec<Vec<Value>> {
    let committed = grid.registry().committed_ssids();
    let mut rows = Vec::new();
    for table in grid.snapshot_table_names() {
        let op = table.strip_prefix("snapshot_").unwrap_or(&table);
        if op.starts_with("__") {
            continue;
        }
        let Some(store) = grid.get_snapshot_store(op) else {
            continue;
        };
        for (ssid, entries, bytes) in store.version_stats() {
            rows.push(vec![
                Value::str(&table),
                Value::Int(ssid.0 as i64),
                Value::Int(entries as i64),
                Value::Int(bytes as i64),
                Value::Int(committed.contains(&ssid) as i64),
            ]);
        }
    }
    rows
}

fn sys_faults_schema() -> Arc<Schema> {
    schema(vec![
        ("seq", DataType::Int),
        ("at_us", DataType::Int),
        ("point", DataType::Str),
        ("action", DataType::Str),
        ("operator", DataType::Str),
        ("instance", DataType::Int),
        ("ssid", DataType::Int),
        ("partition", DataType::Int),
        ("outcome", DataType::Str),
        ("detail", DataType::Str),
    ])
}

fn sys_faults_rows(grid: &Grid) -> Vec<Vec<Value>> {
    let Some(injector) = grid.fault_injector() else {
        return Vec::new();
    };
    injector
        .records()
        .into_iter()
        .map(|r| {
            vec![
                Value::Int(r.seq as i64),
                Value::Int(r.at_us as i64),
                Value::str(r.point.as_str()),
                Value::str(r.action.as_str()),
                opt_str(r.operator.as_deref()),
                r.instance
                    .map(|i| Value::Int(i as i64))
                    .unwrap_or(Value::Null),
                opt_u64(r.ssid),
                r.partition
                    .map(|p| Value::Int(p as i64))
                    .unwrap_or(Value::Null),
                Value::str(&r.outcome),
                Value::str(&r.detail),
            ]
        })
        .collect()
}

fn sys_spans_schema() -> Arc<Schema> {
    schema(vec![
        ("id", DataType::Int),
        ("parent", DataType::Int),
        ("kind", DataType::Str),
        ("operator", DataType::Str),
        ("start_us", DataType::Int),
        ("end_us", DataType::Int),
        ("duration_us", DataType::Int),
        ("labels", DataType::Str),
    ])
}

fn sys_spans_rows(registry: &MetricsRegistry) -> Vec<Vec<Value>> {
    registry
        .spans()
        .snapshot()
        .into_iter()
        .map(|s| {
            let labels: Vec<String> = s.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            vec![
                Value::Int(s.id as i64),
                s.parent
                    .map(|p| Value::Int(p as i64))
                    .unwrap_or(Value::Null),
                Value::str(s.kind),
                opt_str(s.label("operator")),
                Value::Int(s.start_us as i64),
                Value::Int(s.end_us as i64),
                Value::Int(s.duration_us() as i64),
                Value::str(labels.join(",")),
            ]
        })
        .collect()
}

fn sys_partitions_schema() -> Arc<Schema> {
    schema(vec![
        ("table", DataType::Str),
        ("partition", DataType::Int),
        ("ssid", DataType::Int),
        ("rows", DataType::Int),
        ("bytes", DataType::Int),
        ("writes", DataType::Int),
        ("removes", DataType::Int),
    ])
}

/// One row per *non-empty* partition: live maps report write-path
/// accounting (`ssid` NULL), snapshot stores one row per committed version
/// with `writes`/`removes` NULL (a snapshot does not churn).
fn sys_partitions_rows(grid: &Grid) -> Vec<Vec<Value>> {
    let mut rows = Vec::new();
    for name in grid.map_names() {
        if name.starts_with("__") {
            continue;
        }
        let Some(map) = grid.get_map(&name) else {
            continue;
        };
        for (pid, s) in map.partition_stats().into_iter().enumerate() {
            if s == squery_storage::PartitionStats::default() {
                continue;
            }
            rows.push(vec![
                Value::str(&name),
                Value::Int(pid as i64),
                Value::Null,
                Value::Int(s.rows as i64),
                Value::Int(s.bytes as i64),
                Value::Int(s.writes as i64),
                Value::Int(s.removes as i64),
            ]);
        }
    }
    let committed = grid.registry().committed_ssids();
    for table in grid.snapshot_table_names() {
        let op = table.strip_prefix("snapshot_").unwrap_or(&table);
        if op.starts_with("__") {
            continue;
        }
        let Some(store) = grid.get_snapshot_store(op) else {
            continue;
        };
        for &ssid in &committed {
            let Ok(parts) = store.resolved_partition_stats(ssid) else {
                continue;
            };
            for (pid, (entries, bytes)) in parts.into_iter().enumerate() {
                if entries == 0 && bytes == 0 {
                    continue;
                }
                rows.push(vec![
                    Value::str(&table),
                    Value::Int(pid as i64),
                    Value::Int(ssid.0 as i64),
                    Value::Int(entries as i64),
                    Value::Int(bytes as i64),
                    Value::Null,
                    Value::Null,
                ]);
            }
        }
    }
    rows
}

fn sys_state_stats_schema() -> Arc<Schema> {
    schema(vec![
        ("table", DataType::Str),
        ("rows", DataType::Int),
        ("bytes", DataType::Int),
        ("writes", DataType::Int),
        ("removes", DataType::Int),
        ("write_rate_per_s", DataType::Float),
        ("remove_rate_per_s", DataType::Float),
        ("distinct_keys", DataType::Int),
        ("skew", DataType::Float),
        ("hot_keys", DataType::Int),
        ("samples", DataType::Int),
    ])
}

fn sys_state_stats_rows(stats: &crate::stats::StatsCatalog) -> Vec<Vec<Value>> {
    stats
        .snapshot()
        .into_iter()
        .map(|t| {
            vec![
                Value::str(&t.table),
                Value::Int(t.rows as i64),
                Value::Int(t.bytes as i64),
                Value::Int(t.writes as i64),
                Value::Int(t.removes as i64),
                Value::Float(t.write_rate_per_s),
                Value::Float(t.remove_rate_per_s),
                Value::Int(t.distinct_keys as i64),
                Value::Float(t.skew),
                Value::Int(t.hot_keys.len() as i64),
                Value::Int(t.samples as i64),
            ]
        })
        .collect()
}

fn sys_hot_keys_schema() -> Arc<Schema> {
    schema(vec![
        ("table", DataType::Str),
        ("key", DataType::Str),
        ("count", DataType::Int),
        ("error", DataType::Int),
        ("share", DataType::Float),
    ])
}

/// Heavy hitters per table, hottest first; `share` is the key's estimated
/// fraction of all writes observed since arming, `error` the SpaceSaving
/// overcount bound (true count ≥ count − error).
fn sys_hot_keys_rows(stats: &crate::stats::StatsCatalog) -> Vec<Vec<Value>> {
    let mut rows = Vec::new();
    for t in stats.snapshot() {
        let observed: u64 = t.hot_keys.iter().map(|h| h.count).sum();
        for h in &t.hot_keys {
            rows.push(vec![
                Value::str(&t.table),
                Value::str(h.key.to_string()),
                Value::Int(h.count as i64),
                Value::Int(h.error as i64),
                Value::Float(if observed == 0 {
                    0.0
                } else {
                    h.count as f64 / observed as f64
                }),
            ]);
        }
    }
    rows
}

fn sys_wal_schema() -> Arc<Schema> {
    schema(vec![
        ("store", DataType::Str),
        ("segments", DataType::Int),
        ("bytes", DataType::Int),
        ("sealed_min", DataType::Int),
        ("sealed_max", DataType::Int),
        ("last_compaction_us", DataType::Int),
        ("torn_truncations", DataType::Int),
    ])
}

/// One row per store with a WAL footprint; empty when the deployment runs
/// without a WAL directory. `store` joins with `sys_snapshots` through
/// `'snapshot_' || store`, and `sealed_min`/`sealed_max` bound the versions a
/// cold start could replay. `last_compaction_us` is 0 until a compaction has
/// rewritten one of the store's segments.
fn sys_wal_rows(grid: &Grid) -> Vec<Vec<Value>> {
    let Some(manager) = grid.wal() else {
        return Vec::new();
    };
    manager
        .store_stats()
        .into_iter()
        .map(|s| {
            vec![
                Value::str(&s.store),
                Value::Int(s.segments as i64),
                Value::Int(s.bytes as i64),
                opt_u64(s.sealed_min),
                opt_u64(s.sealed_max),
                Value::Int(s.last_compaction_us as i64),
                Value::Int(s.torn_truncations as i64),
            ]
        })
        .collect()
}

fn sys_watermarks_schema() -> Arc<Schema> {
    schema(vec![
        ("operator", DataType::Str),
        ("instance", DataType::Int),
        ("watermark_us", DataType::Int),
        ("lag_us", DataType::Int),
    ])
}

/// One row per operator instance that has advanced its event-time frontier:
/// `watermark_us` is the low watermark (every record the instance will ever
/// see carries `src_ts` at or above it) in µs since the unix epoch — the
/// workers rebase the gauge so it is comparable to persisted seal stamps —
/// and `lag_us` its distance behind epoch "now". Instances that never saw
/// a timestamped record have no row.
fn sys_watermarks_rows(registry: &MetricsRegistry) -> Vec<Vec<Value>> {
    let now = registry.clock().epoch_micros();
    let mut rows: Vec<(String, i64, u64)> = registry
        .gauges()
        .into_iter()
        .filter(|(key, value)| key.name == "watermark_us" && *value > 0)
        .map(|(key, value)| {
            (
                key.label("operator").unwrap_or("").to_string(),
                key.label("instance")
                    .and_then(|i| i.parse().ok())
                    .unwrap_or(0),
                value as u64,
            )
        })
        .collect();
    rows.sort();
    rows.into_iter()
        .map(|(operator, instance, wm)| {
            vec![
                Value::str(&operator),
                Value::Int(instance),
                Value::Int(wm as i64),
                Value::Int(now.saturating_sub(wm) as i64),
            ]
        })
        .collect()
}

fn sys_freshness_schema() -> Arc<Schema> {
    schema(vec![
        ("ssid", DataType::Int),
        ("watermark_us", DataType::Int),
        ("sealed_at_us", DataType::Int),
        ("staleness_us", DataType::Int),
        ("lag_vs_live_us", DataType::Int),
    ])
}

/// One row per retained committed snapshot. `staleness_us` bounds how far
/// behind real time a query pinned to the snapshot reads: epoch "now" minus
/// the snapshot's global low watermark (falling back to seal time when the
/// round carried no watermark, NULL when neither is known — pre-watermark
/// WAL history recovers that way). Freshness stamps are persisted in the
/// unix-epoch domain, so this subtraction stays a true age even for
/// snapshots recovered from a previous process. `lag_vs_live_us` compares
/// against the slowest *live* frontier instead, so it stays meaningful
/// while ingestion is paused.
fn sys_freshness_rows(grid: &Grid) -> Vec<Vec<Value>> {
    let registry = grid.telemetry();
    let now = registry.clock().epoch_micros();
    let live_frontier = registry
        .gauges()
        .into_iter()
        .filter(|(key, value)| key.name == "watermark_us" && *value > 0)
        .map(|(_, value)| value as u64)
        .min();
    grid.registry()
        .freshness_all()
        .into_iter()
        .map(|(ssid, f)| {
            let staleness = if f.watermark_us > 0 {
                Some(now.saturating_sub(f.watermark_us))
            } else if f.sealed_at_us > 0 {
                Some(now.saturating_sub(f.sealed_at_us))
            } else {
                None
            };
            let lag_vs_live = match live_frontier {
                Some(live) if f.watermark_us > 0 => Some(live.saturating_sub(f.watermark_us)),
                _ => None,
            };
            vec![
                Value::Int(ssid.0 as i64),
                if f.watermark_us > 0 {
                    Value::Int(f.watermark_us as i64)
                } else {
                    Value::Null
                },
                if f.sealed_at_us > 0 {
                    Value::Int(f.sealed_at_us as i64)
                } else {
                    Value::Null
                },
                opt_u64(staleness),
                opt_u64(lag_vs_live),
            ]
        })
        .collect()
}

fn sys_query_log_schema() -> Arc<Schema> {
    schema(vec![
        ("seq", DataType::Int),
        ("sql", DataType::Str),
        ("status", DataType::Str),
        ("rows", DataType::Int),
        ("parse_us", DataType::Int),
        ("plan_us", DataType::Int),
        ("exec_us", DataType::Int),
        ("total_us", DataType::Int),
        ("dop", DataType::Int),
        ("started_at_us", DataType::Int),
    ])
}

fn sys_query_log_rows(log: &QueryLog) -> Vec<Vec<Value>> {
    log.snapshot()
        .into_iter()
        .map(|e| {
            vec![
                Value::Int(e.seq as i64),
                Value::str(&e.sql),
                Value::str(&e.status),
                Value::Int(e.rows as i64),
                Value::Int(e.parse_us as i64),
                Value::Int(e.plan_us as i64),
                Value::Int(e.exec_us as i64),
                Value::Int(e.total_us as i64),
                Value::Int(e.dop as i64),
                Value::Int(e.started_at_us as i64),
            ]
        })
        .collect()
}

/// Register the fourteen `sys_*` tables in `catalog`.
pub(crate) fn register_sys_tables(
    catalog: &GridCatalog,
    grid: Arc<Grid>,
    jobs: JobLog,
    query_log: QueryLog,
) {
    let metric_grid = Arc::clone(&grid);
    catalog.register(Arc::new(SysTable::new(
        "sys_metrics",
        sys_metrics_schema(),
        Arc::new(move || sys_metrics_rows(metric_grid.telemetry())),
    )) as Arc<dyn Table>);
    let event_grid = Arc::clone(&grid);
    catalog.register(Arc::new(SysTable::new(
        "sys_events",
        sys_events_schema(),
        Arc::new(move || sys_events_rows(event_grid.telemetry())),
    )));
    let op_grid = Arc::clone(&grid);
    catalog.register(Arc::new(SysTable::new(
        "sys_operators",
        sys_operators_schema(),
        Arc::new(move || sys_operators_rows(&op_grid)),
    )));
    catalog.register(Arc::new(SysTable::new(
        "sys_checkpoints",
        sys_checkpoints_schema(),
        Arc::new(move || sys_checkpoints_rows(&jobs)),
    )));
    let fault_grid = Arc::clone(&grid);
    catalog.register(Arc::new(SysTable::new(
        "sys_faults",
        sys_faults_schema(),
        Arc::new(move || sys_faults_rows(&fault_grid)),
    )));
    let span_grid = Arc::clone(&grid);
    catalog.register(Arc::new(SysTable::new(
        "sys_spans",
        sys_spans_schema(),
        Arc::new(move || sys_spans_rows(span_grid.telemetry())),
    )));
    catalog.register(Arc::new(SysTable::new(
        "sys_query_log",
        sys_query_log_schema(),
        Arc::new(move || sys_query_log_rows(&query_log)),
    )));
    let part_grid = Arc::clone(&grid);
    catalog.register(Arc::new(SysTable::new(
        "sys_partitions",
        sys_partitions_schema(),
        Arc::new(move || sys_partitions_rows(&part_grid)),
    )));
    let state_stats = crate::stats::StatsCatalog::new(Arc::clone(&grid));
    catalog.register(Arc::new(SysTable::new(
        "sys_state_stats",
        sys_state_stats_schema(),
        Arc::new(move || sys_state_stats_rows(&state_stats)),
    )));
    let hot_stats = crate::stats::StatsCatalog::new(Arc::clone(&grid));
    catalog.register(Arc::new(SysTable::new(
        "sys_hot_keys",
        sys_hot_keys_schema(),
        Arc::new(move || sys_hot_keys_rows(&hot_stats)),
    )));
    let wal_grid = Arc::clone(&grid);
    catalog.register(Arc::new(SysTable::new(
        "sys_wal",
        sys_wal_schema(),
        Arc::new(move || sys_wal_rows(&wal_grid)),
    )));
    let wm_grid = Arc::clone(&grid);
    catalog.register(Arc::new(SysTable::new(
        "sys_watermarks",
        sys_watermarks_schema(),
        Arc::new(move || sys_watermarks_rows(wm_grid.telemetry())),
    )));
    let fresh_grid = Arc::clone(&grid);
    catalog.register(Arc::new(SysTable::new(
        "sys_freshness",
        sys_freshness_schema(),
        Arc::new(move || sys_freshness_rows(&fresh_grid)),
    )));
    catalog.register(Arc::new(SysTable::new(
        "sys_snapshots",
        sys_snapshots_schema(),
        Arc::new(move || sys_snapshots_rows(&grid)),
    )));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SQueryConfig;
    use crate::system::SQuery;
    use squery_common::SnapshotId;

    fn populated_system() -> SQuery {
        let system = SQuery::new(SQueryConfig::default()).unwrap();
        let grid = system.grid();
        let live = grid.map("orders");
        live.put(Value::Int(1), Value::str("x"));
        live.put(Value::Int(2), Value::str("y"));
        let store = grid.snapshot_store("orders");
        let ssid = grid.registry().begin().unwrap();
        store.write_partition(
            ssid,
            store.partition_of(&Value::Int(1)),
            vec![(Value::Int(1), Some(Value::str("x")))],
            true,
        );
        grid.registry().commit(ssid).unwrap();
        system
    }

    #[test]
    fn sys_metrics_reports_live_counters() {
        let system = populated_system();
        let rs = system
            .query("SELECT value FROM sys_metrics WHERE name = 'map_writes_total'")
            .unwrap();
        assert_eq!(rs.rows(), &[vec![Value::Int(2)]]);
        // Histograms expose percentiles, not a scalar value.
        let rs = system
            .query(
                "SELECT count FROM sys_metrics \
                 WHERE name = 'map_write_us' AND kind = 'histogram'",
            )
            .unwrap();
        assert_eq!(rs.rows(), &[vec![Value::Int(2)]]);
    }

    #[test]
    fn sys_operators_matches_overview() {
        let system = populated_system();
        let rs = system
            .query(
                "SELECT live_entries, snapshot_versions FROM sys_operators \
                 WHERE operator = 'orders'",
            )
            .unwrap();
        assert_eq!(rs.rows(), &[vec![Value::Int(2), Value::Int(1)]]);
        let overview = system.overview();
        assert_eq!(overview.operators[0].live_entries, Some(2));
    }

    #[test]
    fn sys_snapshots_lists_versions_with_commit_flag() {
        let system = populated_system();
        let rs = system
            .query(
                "SELECT store, ssid, committed FROM sys_snapshots \
                 WHERE entries > 0",
            )
            .unwrap();
        assert_eq!(
            rs.rows(),
            &[vec![
                Value::str("snapshot_orders"),
                Value::Int(1),
                Value::Int(1)
            ]]
        );
        let _ = SnapshotId(1);
    }

    #[test]
    fn sys_events_capture_queries_against_the_engine() {
        let system = populated_system();
        // The metrics query itself lands in the event log, so a second
        // query over sys_events can observe the first.
        system
            .query("SELECT name FROM sys_metrics LIMIT 1")
            .unwrap();
        let rs = system
            .query("SELECT COUNT(*) AS n FROM sys_events WHERE kind = 'query_started'")
            .unwrap();
        assert!(
            rs.scalar("n").unwrap().as_int().unwrap() >= 1,
            "prior query_started event visible"
        );
    }

    #[test]
    fn sys_query_log_records_engine_queries() {
        let system = populated_system();
        system
            .query("SELECT name FROM sys_metrics LIMIT 1")
            .unwrap();
        assert!(system.query("SELECT nope FROM orders").is_err());
        let rs = system
            .query("SELECT seq, sql, status, rows, dop FROM sys_query_log ORDER BY seq")
            .unwrap();
        assert_eq!(
            rs.rows()[0][1],
            Value::str("SELECT name FROM sys_metrics LIMIT 1")
        );
        assert_eq!(rs.rows()[0][2], Value::str("ok"));
        assert_eq!(rs.rows()[0][3], Value::Int(1));
        assert!(
            rs.rows()[1][2].to_string().starts_with("error:"),
            "{:?}",
            rs.rows()[1]
        );
    }

    #[test]
    fn sys_spans_exposes_explain_analyze_profiles() {
        let system = populated_system();
        assert!(!system.config().tracing, "untraced deployment");
        let rs = system
            .query("EXPLAIN ANALYZE SELECT partitionKey FROM orders")
            .unwrap();
        assert!(
            rs.rows()
                .iter()
                .any(|r| r[0].to_string().contains("rows=2")),
            "{rs}"
        );
        // The forced profile landed in sys_spans: one query root, its scan
        // child nested under it.
        let root = system
            .query("SELECT id FROM sys_spans WHERE kind = 'query'")
            .unwrap();
        let root_id = root.rows()[0][0].clone();
        let child = system
            .query("SELECT parent, duration_us FROM sys_spans WHERE kind = 'scan'")
            .unwrap();
        assert_eq!(child.rows()[0][0], root_id);
    }

    #[test]
    fn traced_deployment_spans_every_query() {
        let system = SQuery::new(SQueryConfig::default().with_tracing(true)).unwrap();
        system
            .query("SELECT COUNT(*) AS n FROM sys_events")
            .unwrap();
        let rs = system
            .query("SELECT COUNT(*) AS n FROM sys_spans WHERE kind = 'query'")
            .unwrap();
        assert!(rs.scalar("n").unwrap().as_int().unwrap() >= 1);
    }

    #[test]
    fn sys_partitions_covers_live_and_snapshot_state() {
        let system = populated_system();
        // Two live keys in distinct partitions plus one snapshot entry.
        let rs = system
            .query(
                "SELECT COUNT(*) AS n, SUM(rows) AS r FROM sys_partitions \
                 WHERE table = 'orders'",
            )
            .unwrap();
        assert_eq!(rs.scalar("n"), Some(&Value::Int(2)));
        assert_eq!(rs.scalar("r"), Some(&Value::Int(2)));
        let rs = system
            .query(
                "SELECT ssid, rows FROM sys_partitions \
                 WHERE table = 'snapshot_orders'",
            )
            .unwrap();
        assert_eq!(rs.rows(), &[vec![Value::Int(1), Value::Int(1)]]);
        // Live rows carry NULL ssid.
        let rs = system
            .query("SELECT COUNT(*) AS n FROM sys_partitions WHERE ssid IS NULL")
            .unwrap();
        assert_eq!(rs.scalar("n"), Some(&Value::Int(2)));
    }

    #[test]
    fn sys_state_stats_and_hot_keys_follow_sampling() {
        let system = populated_system();
        system.grid().arm_stats(true);
        let map = system.grid().map("orders");
        for i in 0..50 {
            map.put(Value::Int(i % 10), Value::Int(i));
        }
        let rs = system
            .query("SELECT samples FROM sys_state_stats WHERE table = 'orders'")
            .unwrap();
        assert_eq!(rs.rows(), &[vec![Value::Int(0)]], "no sample yet");
        system.sample_stats_now();
        let rs = system
            .query(
                "SELECT distinct_keys, hot_keys FROM sys_state_stats \
                 WHERE table = 'orders'",
            )
            .unwrap();
        assert_eq!(rs.rows()[0][0], Value::Int(10));
        assert!(rs.rows()[0][1].as_int().unwrap() >= 1);
        let rs = system
            .query(
                "SELECT table, count FROM sys_hot_keys \
                 WHERE table = 'orders' ORDER BY count DESC LIMIT 1",
            )
            .unwrap();
        assert_eq!(rs.rows()[0][0], Value::str("orders"));
        assert!(rs.rows()[0][1].as_int().unwrap() >= 5);
    }

    #[test]
    fn sys_wal_is_empty_without_a_wal_directory() {
        let system = SQuery::new(SQueryConfig::default()).unwrap();
        let rs = system.query("SELECT COUNT(*) AS n FROM sys_wal").unwrap();
        assert_eq!(rs.scalar("n"), Some(&Value::Int(0)));
    }

    #[test]
    fn sys_wal_reports_segments_and_joins_sys_snapshots() {
        let dir = std::env::temp_dir().join(format!(
            "squery-syswal-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let system = SQuery::new(SQueryConfig::default().with_wal_dir(&dir)).unwrap();
        let grid = system.grid();
        let store = grid.snapshot_store("orders");
        let ssid = grid.registry().begin().unwrap();
        store.write_partition(
            ssid,
            store.partition_of(&Value::Int(1)),
            vec![(Value::Int(1), Some(Value::str("x")))],
            true,
        );
        grid.wal_seal(ssid).unwrap();
        grid.registry().commit(ssid).unwrap();
        let rs = system
            .query(
                "SELECT segments, sealed_min, sealed_max, torn_truncations \
                 FROM sys_wal WHERE store = 'orders'",
            )
            .unwrap();
        assert_eq!(
            rs.rows(),
            &[vec![
                Value::Int(1),
                Value::Int(1),
                Value::Int(1),
                Value::Int(0)
            ]]
        );
        assert!(
            rs.rows()[0][0].as_int().unwrap() >= 1,
            "one partition segment on disk"
        );
        // Joinable with sys_snapshots: the sealed range bounds the versions
        // a cold start replays, which are exactly the retained ones.
        let rs = system
            .query(
                "SELECT s.store, s.entries FROM sys_wal w \
                 JOIN sys_snapshots s ON s.ssid = w.sealed_max \
                 WHERE w.store = 'orders'",
            )
            .unwrap();
        assert_eq!(
            rs.rows(),
            &[vec![Value::str("snapshot_orders"), Value::Int(1)]]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sys_watermarks_reports_instance_frontiers_and_lag() {
        let system = populated_system();
        let tel = system.grid().telemetry();
        // The registry clock's zero is system creation, so tiny frontiers
        // are guaranteed to sit behind "now".
        tel.gauge("watermark_us", &[("instance", "0"), ("operator", "bids")])
            .set(10);
        tel.gauge("watermark_us", &[("instance", "1"), ("operator", "bids")])
            .set(20);
        let rs = system
            .query(
                "SELECT operator, instance, watermark_us FROM sys_watermarks \
                 ORDER BY instance",
            )
            .unwrap();
        assert_eq!(
            rs.rows(),
            &[
                vec![Value::str("bids"), Value::Int(0), Value::Int(10)],
                vec![Value::str("bids"), Value::Int(1), Value::Int(20)],
            ]
        );
        // Lag is measured against the registry's own clock, so it is always
        // at least wall-now minus the frontier.
        let rs = system
            .query("SELECT COUNT(*) AS n FROM sys_watermarks WHERE lag_us > 0")
            .unwrap();
        assert_eq!(rs.scalar("n"), Some(&Value::Int(2)));
    }

    #[test]
    fn sys_freshness_bounds_committed_snapshot_staleness() {
        let system = populated_system();
        let grid = system.grid();
        // Freshness stamps live in the unix-epoch domain; fabricate a seal
        // 5 ms stale against epoch "now".
        let now = grid.telemetry().clock().epoch_micros();
        let ssid = grid.registry().begin().unwrap();
        grid.registry()
            .commit_with_freshness(
                ssid,
                squery_storage::SnapshotFreshness {
                    watermark_us: now.saturating_sub(5_000),
                    sealed_at_us: now,
                },
            )
            .unwrap();
        let rs = system
            .query(
                "SELECT ssid, staleness_us, lag_vs_live_us FROM sys_freshness \
                 ORDER BY ssid",
            )
            .unwrap();
        // Two committed rounds: the helper's (pre-watermark, all-zero
        // freshness → NULL staleness) and ours, at least 5 ms stale.
        assert_eq!(rs.rows().len(), 2);
        assert_eq!(rs.rows()[0][1], Value::Null);
        assert!(rs.rows()[1][1].as_int().unwrap() >= 5_000, "{rs}");
        // No live frontier gauges in this deployment → NULL lag_vs_live.
        assert_eq!(rs.rows()[1][2], Value::Null);
        // With a live frontier published, the snapshot's lag against it is
        // the frontier delta, independent of the wall clock.
        grid.telemetry()
            .gauge("watermark_us", &[("instance", "0"), ("operator", "bids")])
            .set(now as i64);
        let rs = system
            .query("SELECT lag_vs_live_us FROM sys_freshness WHERE staleness_us >= 0")
            .unwrap();
        assert_eq!(rs.rows(), &[vec![Value::Int(5_000)]]);
    }

    /// The review's cold-start failure mode: freshness stamps must be
    /// unix-epoch values, so a restarted process reports a recovered
    /// snapshot's *true* age — not ~0 against its own freshly-zeroed clock.
    #[test]
    fn sys_freshness_staleness_survives_cold_start_as_true_age() {
        let dir = std::env::temp_dir().join(format!(
            "squery-coldfresh-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (ssid, sealed_wm) = {
            // Incarnation 1: seal a round whose watermark already lags epoch
            // "now" by 10 ms, exactly as the coordinator stamps it.
            let system = SQuery::new(SQueryConfig::default().with_wal_dir(&dir)).unwrap();
            let grid = system.grid();
            let store = grid.snapshot_store("orders");
            let ssid = grid.registry().begin().unwrap();
            store.write_partition(
                ssid,
                store.partition_of(&Value::Int(1)),
                vec![(Value::Int(1), Some(Value::str("x")))],
                true,
            );
            let now = grid.telemetry().clock().epoch_micros();
            let wm = now.saturating_sub(10_000);
            grid.wal_seal_with(ssid, wm, now).unwrap();
            grid.registry().commit(ssid).unwrap();
            (ssid, wm)
        };
        // Incarnation 2: a brand-new process-equivalent (fresh clocks) whose
        // cold start recovers the sealed round from the WAL.
        let system = SQuery::new(SQueryConfig::default().with_wal_dir(&dir)).unwrap();
        let rs = system
            .query("SELECT ssid, watermark_us, staleness_us FROM sys_freshness")
            .unwrap();
        assert_eq!(rs.rows().len(), 1);
        assert_eq!(rs.rows()[0][0], Value::Int(ssid.0 as i64));
        // The persisted watermark survives verbatim…
        assert_eq!(rs.rows()[0][1], Value::Int(sealed_wm as i64));
        // …and its staleness reads as at least the age it had at the seal,
        // not the near-zero a process-relative stamp would produce (small
        // slack for the two incarnations' epoch-anchor sampling).
        assert!(
            rs.rows()[0][2].as_int().unwrap() >= 9_000,
            "recovered staleness is a true age: {rs}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sys_events_ring_stays_bounded_at_event_capacity() {
        let system = SQuery::new(SQueryConfig::default().with_event_capacity(4)).unwrap();
        for _ in 0..6 {
            system
                .query("SELECT name FROM sys_metrics LIMIT 1")
                .unwrap();
        }
        let rs = system
            .query("SELECT COUNT(*) AS n, MIN(seq) AS oldest FROM sys_events")
            .unwrap();
        assert!(
            rs.scalar("n").unwrap().as_int().unwrap() <= 4,
            "ring bounded: {rs}"
        );
        // More events were recorded than retained, so the oldest surviving
        // sequence number has moved past the first few.
        assert!(
            rs.scalar("oldest").unwrap().as_int().unwrap() > 1,
            "oldest events dropped: {rs}"
        );
    }

    #[test]
    fn sys_tables_are_listed_in_the_catalog() {
        let system = SQuery::new(SQueryConfig::default()).unwrap();
        let rs = system
            .query("SELECT COUNT(*) AS n FROM sys_checkpoints")
            .unwrap();
        assert_eq!(rs.scalar("n"), Some(&Value::Int(0)), "no jobs yet");
        let rs = system
            .query("SELECT COUNT(*) AS n FROM sys_events")
            .unwrap();
        assert!(rs.scalar("n").unwrap().as_int().unwrap() >= 0);
    }
}
