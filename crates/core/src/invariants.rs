//! Fault-tolerance invariant checkers.
//!
//! Each checker returns `Err` with a descriptive message instead of
//! panicking, so the same functions serve `#[test]`s (via `.unwrap()`),
//! the chaos soak binary (which counts failures per seed), and ad-hoc
//! debugging. They verify the three guarantees the paper's recovery design
//! rests on:
//!
//! * **exactly-once state effect** — after a drain barrier, operator state
//!   equals what a single fault-free pass over the input would produce, no
//!   matter how many crashes and replays happened in between (§IV);
//! * **snapshot-id monotonicity** — committed snapshot ids only ever grow;
//!   an aborted round may burn an id but can never publish out of order;
//! * **live ≡ snapshot equivalence** — after a final checkpoint barrier,
//!   the live map and the committed snapshot hold identical rows (the
//!   premise that makes both query paths of Figure 1 interchangeable).

use squery_common::fault::FaultInjector;
use squery_common::lockorder;
use squery_common::telemetry::{EventKind, MetricsRegistry};
use squery_common::{SnapshotId, SqError, SqResult, Value};
use squery_storage::Grid;

/// Sorted live-map entries of `operator` (the canonical state view).
fn sorted_live(grid: &Grid, operator: &str) -> SqResult<Vec<(Value, Value)>> {
    let map = grid
        .get_map(operator)
        .ok_or_else(|| SqError::NotFound(format!("no live map for operator {operator}")))?;
    let mut entries = map.entries();
    entries.sort();
    Ok(entries)
}

/// Exactly-once: `operator`'s live state equals `expected` row for row.
///
/// Call only behind a drain barrier (all input produced and a checkpoint
/// committed after it) — mid-flight state is legitimately partial.
pub fn check_exactly_once(
    grid: &Grid,
    operator: &str,
    expected: &[(Value, Value)],
) -> SqResult<()> {
    let got = sorted_live(grid, operator)?;
    let mut want = expected.to_vec();
    want.sort();
    if got != want {
        return Err(SqError::Runtime(format!(
            "exactly-once violated for {operator}: expected {} rows, got {} ({})",
            want.len(),
            got.len(),
            diff_summary(&want, &got),
        )));
    }
    Ok(())
}

/// Committed snapshot ids in the event log are strictly increasing.
pub fn check_snapshot_monotonic(telemetry: &MetricsRegistry) -> SqResult<()> {
    let committed: Vec<u64> = telemetry
        .events()
        .snapshot()
        .iter()
        .filter(|e| e.kind == EventKind::CheckpointCommitted)
        .filter_map(|e| e.ssid)
        .collect();
    for pair in committed.windows(2) {
        if pair[1] <= pair[0] {
            return Err(SqError::Runtime(format!(
                "snapshot ids not monotonic: {} committed after {}",
                pair[1], pair[0]
            )));
        }
    }
    Ok(())
}

/// Live map and the snapshot at `ssid` hold identical rows.
///
/// Valid behind the same barrier as [`check_exactly_once`]: the snapshot
/// must be the *last* committed one with no records processed since.
pub fn check_live_matches_snapshot(grid: &Grid, operator: &str, ssid: SnapshotId) -> SqResult<()> {
    let live = sorted_live(grid, operator)?;
    let store = grid
        .get_snapshot_store(operator)
        .ok_or_else(|| SqError::NotFound(format!("no snapshot store for {operator}")))?;
    let (mut snap, _) = store.scan_at(ssid)?;
    snap.sort();
    if live != snap {
        return Err(SqError::Runtime(format!(
            "live/snapshot divergence for {operator} at snapshot {ssid}: \
             live has {} rows, snapshot has {} ({})",
            live.len(),
            snap.len(),
            diff_summary(&snap, &live),
        )));
    }
    Ok(())
}

/// Every fired fault has a terminal outcome — nothing is left `pending`
/// once the run has converged.
pub fn check_faults_resolved(injector: &FaultInjector) -> SqResult<()> {
    let pending: Vec<String> = injector
        .records()
        .into_iter()
        .filter(|r| r.outcome == "pending")
        .map(|r| format!("#{} {}/{}", r.seq, r.point.as_str(), r.action.as_str()))
        .collect();
    if !pending.is_empty() {
        return Err(SqError::Runtime(format!(
            "{} fault(s) never resolved: {}",
            pending.len(),
            pending.join(", ")
        )));
    }
    Ok(())
}

/// The runtime lock-order tracker (armed via `SQUERY_LOCK_ORDER=1` or
/// `lockorder::set_enabled(true)`) recorded no rank inversions. Drains the
/// global violation list so each chaos seed is judged on its own
/// acquisitions; violations that panicked inside a supervised worker (and
/// were swallowed by its `catch_unwind`) still show up here.
pub fn check_lock_order_clean() -> SqResult<()> {
    let violations = lockorder::take_violations();
    if violations.is_empty() {
        return Ok(());
    }
    Err(SqError::Runtime(format!(
        "lock-order tracker recorded {} violation(s): {}",
        violations.len(),
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    )))
}

/// First few rows present in exactly one of the two sorted sets.
fn diff_summary(want: &[(Value, Value)], got: &[(Value, Value)]) -> String {
    let mut diffs = Vec::new();
    for e in want {
        if !got.contains(e) {
            diffs.push(format!("missing {e:?}"));
        }
    }
    for e in got {
        if !want.contains(e) {
            diffs.push(format!("extra {e:?}"));
        }
    }
    diffs.truncate(4);
    if diffs.is_empty() {
        "rows reordered".into()
    } else {
        diffs.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squery_common::fault::{FaultAction, FaultPlan, FaultSpec, FaultTrigger, InjectionPoint};
    use squery_common::PartitionId;

    fn grid_with_state() -> std::sync::Arc<Grid> {
        let grid = Grid::single_node();
        let map = grid.map("op");
        map.put(Value::Int(1), Value::Int(10));
        map.put(Value::Int(2), Value::Int(20));
        grid
    }

    #[test]
    fn exactly_once_accepts_matching_state() {
        let grid = grid_with_state();
        let expected = vec![
            (Value::Int(1), Value::Int(10)),
            (Value::Int(2), Value::Int(20)),
        ];
        check_exactly_once(&grid, "op", &expected).unwrap();
        let wrong = vec![(Value::Int(1), Value::Int(11))];
        let err = check_exactly_once(&grid, "op", &wrong).unwrap_err();
        assert!(err.to_string().contains("exactly-once violated"), "{err}");
    }

    #[test]
    fn live_snapshot_equivalence_detects_divergence() {
        let grid = grid_with_state();
        let store = grid.snapshot_store("op");
        let ssid = grid.registry().begin().unwrap();
        store.write_partition(
            ssid,
            PartitionId(0),
            vec![
                (Value::Int(1), Some(Value::Int(10))),
                (Value::Int(2), Some(Value::Int(20))),
            ],
            true,
        );
        grid.registry().commit(ssid).unwrap();
        check_live_matches_snapshot(&grid, "op", ssid).unwrap();
        grid.map("op").put(Value::Int(3), Value::Int(30));
        let err = check_live_matches_snapshot(&grid, "op", ssid).unwrap_err();
        assert!(err.to_string().contains("divergence"), "{err}");
    }

    #[test]
    fn monotonicity_holds_over_registry_commits() {
        let grid = grid_with_state();
        for _ in 0..3 {
            let ssid = grid.registry().begin().unwrap();
            grid.telemetry()
                .event(EventKind::CheckpointCommitted, None, Some(ssid.0), None, "");
            grid.registry().commit(ssid).unwrap();
        }
        check_snapshot_monotonic(grid.telemetry()).unwrap();
        // A fabricated out-of-order commit event trips the checker.
        grid.telemetry()
            .event(EventKind::CheckpointCommitted, None, Some(1), None, "");
        assert!(check_snapshot_monotonic(grid.telemetry()).is_err());
    }

    #[test]
    fn unresolved_faults_are_reported() {
        let plan = FaultPlan::new(1).with(FaultSpec {
            point: InjectionPoint::Phase2Commit,
            action: FaultAction::FailCommit,
            trigger: FaultTrigger::default(),
            once: true,
        });
        let injector = FaultInjector::new(plan);
        check_faults_resolved(&injector).unwrap();
        injector.on_phase2(1);
        let err = check_faults_resolved(&injector).unwrap_err();
        assert!(err.to_string().contains("never resolved"), "{err}");
        injector.resolve_pending("recovered");
        check_faults_resolved(&injector).unwrap();
    }
}
