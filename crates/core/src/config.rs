//! Top-level S-QUERY configuration.

use squery_common::config::{ClusterConfig, Parallelism};
use squery_common::{SqError, SqResult};
use squery_storage::{FsyncMode, SnapshotMode};
use squery_streaming::{EngineConfig, StateConfig};
use std::path::PathBuf;
use std::time::Duration;

/// Configuration of a whole S-QUERY deployment: the simulated cluster, the
/// state mechanisms, checkpointing cadence, snapshot retention, and (when a
/// WAL directory is set) crash durability.
#[derive(Debug, Clone)]
pub struct SQueryConfig {
    /// Cluster topology (nodes, partitions, replication, network model).
    pub cluster: ClusterConfig,
    /// Which state mechanisms are active (the Figure 8 configurations).
    pub state: StateConfig,
    /// Periodic checkpoint interval; `None` = manual checkpoints only
    /// (deterministic tests). The paper's evaluation uses 0.5–2 s.
    pub checkpoint_interval: Option<Duration>,
    /// Committed snapshot versions to retain (default 2, §VI-A "Snapshot
    /// Versions": constant memory, always one queryable version).
    pub retained_versions: usize,
    /// Engine tuning: channel capacity between instances.
    pub channel_capacity: usize,
    /// Engine tuning: source batch size.
    pub source_batch: usize,
    /// Degree of parallelism for SQL queries and direct multi-key reads
    /// (default sequential; `Parallelism::auto()` uses all cores).
    pub query_parallelism: Parallelism,
    /// Phase-1 ack timeout before a checkpoint round aborts.
    pub ack_timeout: Duration,
    /// In-place retries of an aborted checkpoint round before the error
    /// surfaces (the supervisor handles anything beyond that).
    pub checkpoint_retries: u32,
    /// Base backoff between checkpoint retries (exponential, jittered).
    pub retry_backoff: Duration,
    /// Capacity of the telemetry event ring (`sys_events` retention).
    pub event_capacity: usize,
    /// Collect spans for every query, checkpoint round, and recovery
    /// (`sys_spans`, Chrome-trace export). Off by default; `EXPLAIN
    /// ANALYZE` profiles its own query regardless.
    pub tracing: bool,
    /// Background state-statistics sampling interval. `None` (default)
    /// disables the sampler thread entirely — write-path accounting stays
    /// on regardless, but sketches (distinct counts, hot keys, skew, rates)
    /// only advance when something calls `sample_stats_now`.
    pub stats_interval: Option<Duration>,
    /// Heavy-hitter slots tracked per table by the SpaceSaving sketch
    /// (`sys_hot_keys` rows per table, ≥ 1).
    pub stats_hot_keys: usize,
    /// Write-ahead-log root directory for durable snapshots. `None`
    /// (default) keeps everything in memory — no disk I/O, no recovery.
    /// When set, [`crate::SQuery::new`] replays any sealed rounds found
    /// there before serving queries (cold-start recovery).
    pub wal_dir: Option<PathBuf>,
    /// When to fsync WAL writes (only meaningful with `wal_dir` set).
    pub wal_fsync: FsyncMode,
    /// Sealed rounds a WAL segment may accumulate below the prune horizon
    /// before compaction rewrites it (≥ 1).
    pub wal_retention: usize,
}

impl SQueryConfig {
    /// Single-node deployment, S-QUERY snapshot configuration, manual
    /// checkpoints — the deterministic test/default setup.
    pub fn default_config() -> SQueryConfig {
        SQueryConfig {
            cluster: ClusterConfig::single_node(),
            state: StateConfig::snapshot_only(),
            checkpoint_interval: None,
            retained_versions: 2,
            channel_capacity: 1024,
            source_batch: 256,
            query_parallelism: Parallelism::sequential(),
            ack_timeout: Duration::from_secs(10),
            checkpoint_retries: 0,
            retry_backoff: Duration::from_millis(50),
            event_capacity: squery_common::telemetry::DEFAULT_EVENT_CAPACITY,
            tracing: false,
            stats_interval: None,
            stats_hot_keys: squery_common::sketch::DEFAULT_TOP_K,
            wal_dir: None,
            wal_fsync: FsyncMode::Never,
            wal_retention: 4,
        }
    }

    /// Full S-QUERY: live write-through and queryable snapshots, 1 s
    /// checkpoint interval (the paper's default).
    pub fn live_and_snapshot() -> SQueryConfig {
        SQueryConfig {
            state: StateConfig::live_and_snapshot(),
            checkpoint_interval: Some(Duration::from_secs(1)),
            ..SQueryConfig::default_config()
        }
    }

    /// Snapshot-only S-QUERY with periodic checkpoints — the configuration
    /// the paper's evaluation focuses on.
    pub fn snapshot_periodic(interval: Duration) -> SQueryConfig {
        SQueryConfig {
            checkpoint_interval: Some(interval),
            ..SQueryConfig::default_config()
        }
    }

    /// Incremental snapshots (§VI-A optimization).
    pub fn incremental(mut self) -> SQueryConfig {
        self.state.queryable_snapshots = true;
        self.state.snapshot_mode = SnapshotMode::Incremental;
        self
    }

    /// Use the given state-mechanism configuration.
    pub fn with_state(mut self, state: StateConfig) -> SQueryConfig {
        self.state = state;
        self
    }

    /// Override retention (≥ 1).
    pub fn with_retention(mut self, versions: usize) -> SQueryConfig {
        self.retained_versions = versions;
        self
    }

    /// Run on a simulated `n`-node cluster.
    pub fn on_cluster(mut self, n: u32) -> SQueryConfig {
        self.cluster = ClusterConfig::simulated(n);
        self
    }

    /// Run SQL queries and direct multi-key reads with this parallelism.
    pub fn with_query_parallelism(mut self, parallelism: Parallelism) -> SQueryConfig {
        self.query_parallelism = parallelism;
        self
    }

    /// Abort checkpoint rounds whose phase-1 acks take longer than this.
    pub fn with_ack_timeout(mut self, timeout: Duration) -> SQueryConfig {
        self.ack_timeout = timeout;
        self
    }

    /// Retry aborted checkpoint rounds `retries` times with `backoff` base
    /// delay before surfacing the error.
    pub fn with_checkpoint_retries(mut self, retries: u32, backoff: Duration) -> SQueryConfig {
        self.checkpoint_retries = retries;
        self.retry_backoff = backoff;
        self
    }

    /// Retain up to `capacity` engine events in the telemetry ring (≥ 1).
    pub fn with_event_capacity(mut self, capacity: usize) -> SQueryConfig {
        self.event_capacity = capacity;
        self
    }

    /// Enable (or disable) span tracing for the whole deployment.
    pub fn with_tracing(mut self, on: bool) -> SQueryConfig {
        self.tracing = on;
        self
    }

    /// Sample state statistics (distinct counts, hot keys, skew, write
    /// rates) in the background every `interval`; `None` disables the
    /// sampler thread.
    pub fn with_stats_interval(mut self, interval: Option<Duration>) -> SQueryConfig {
        self.stats_interval = interval;
        self
    }

    /// Track up to `k` heavy-hitter keys per table (≥ 1).
    pub fn with_stats_hot_keys(mut self, k: usize) -> SQueryConfig {
        self.stats_hot_keys = k;
        self
    }

    /// Persist snapshots to a write-ahead log rooted at `path`, and replay
    /// any sealed rounds found there at startup (cold-start recovery).
    pub fn with_wal_dir(mut self, path: impl Into<PathBuf>) -> SQueryConfig {
        self.wal_dir = Some(path.into());
        self
    }

    /// When to fsync WAL writes (only meaningful with a WAL directory set).
    pub fn with_fsync(mut self, mode: FsyncMode) -> SQueryConfig {
        self.wal_fsync = mode;
        self
    }

    /// Compact a WAL segment once `rounds` sealed rounds fall below the
    /// prune horizon (≥ 1).
    pub fn with_wal_retention(mut self, rounds: usize) -> SQueryConfig {
        self.wal_retention = rounds;
        self
    }

    /// Validate the configuration.
    pub fn validate(&self) -> SqResult<()> {
        self.cluster.validate()?;
        if self.retained_versions == 0 {
            return Err(SqError::Config("retention must be at least 1".into()));
        }
        if self.channel_capacity == 0 {
            return Err(SqError::Config("channel capacity must be positive".into()));
        }
        if self.source_batch == 0 {
            return Err(SqError::Config("source batch must be positive".into()));
        }
        if self.event_capacity == 0 {
            return Err(SqError::Config("event capacity must be positive".into()));
        }
        if self.stats_hot_keys == 0 {
            return Err(SqError::Config(
                "stats hot-key capacity must be at least 1".into(),
            ));
        }
        if self.wal_retention == 0 {
            return Err(SqError::Config("WAL retention must be at least 1".into()));
        }
        self.query_parallelism.validate()?;
        Ok(())
    }

    /// The engine configuration this implies.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            state: self.state,
            checkpoint_interval: self.checkpoint_interval,
            channel_capacity: self.channel_capacity,
            source_batch: self.source_batch,
            ack_timeout: self.ack_timeout,
            checkpoint_retries: self.checkpoint_retries,
            retry_backoff: self.retry_backoff,
            stats_interval: self.stats_interval,
        }
    }
}

impl Default for SQueryConfig {
    fn default() -> Self {
        SQueryConfig::default_config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_snapshot_only() {
        let c = SQueryConfig::default();
        c.validate().unwrap();
        assert!(!c.state.live_state);
        assert!(c.state.queryable_snapshots);
        assert_eq!(c.retained_versions, 2);
        assert!(c.checkpoint_interval.is_none());
    }

    #[test]
    fn presets_compose() {
        let c = SQueryConfig::live_and_snapshot()
            .incremental()
            .with_retention(5)
            .on_cluster(3);
        c.validate().unwrap();
        assert!(c.state.live_state);
        assert_eq!(c.state.snapshot_mode, SnapshotMode::Incremental);
        assert_eq!(c.retained_versions, 5);
        assert_eq!(c.cluster.nodes, 3);
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = SQueryConfig {
            retained_versions: 0,
            ..SQueryConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SQueryConfig {
            channel_capacity: 0,
            ..SQueryConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SQueryConfig {
            source_batch: 0,
            ..SQueryConfig::default()
        };
        assert!(c.validate().is_err());
        let c = SQueryConfig {
            query_parallelism: Parallelism {
                degree: 0,
                min_morsel_rows: 1,
            },
            ..SQueryConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn event_capacity_and_tracing_builders() {
        let c = SQueryConfig::default();
        assert_eq!(
            c.event_capacity,
            squery_common::telemetry::DEFAULT_EVENT_CAPACITY
        );
        assert!(!c.tracing);
        let c = c.with_event_capacity(16).with_tracing(true);
        c.validate().unwrap();
        assert_eq!(c.event_capacity, 16);
        assert!(c.tracing);
        let c = c.with_event_capacity(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn stats_builders_and_validation() {
        let c = SQueryConfig::default();
        assert!(c.stats_interval.is_none());
        assert_eq!(c.stats_hot_keys, squery_common::sketch::DEFAULT_TOP_K);
        let c = c
            .with_stats_interval(Some(Duration::from_millis(100)))
            .with_stats_hot_keys(8);
        c.validate().unwrap();
        assert_eq!(c.stats_interval, Some(Duration::from_millis(100)));
        assert_eq!(c.stats_hot_keys, 8);
        assert_eq!(
            c.engine_config().stats_interval,
            Some(Duration::from_millis(100))
        );
        let c = c.with_stats_hot_keys(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn wal_builders_and_validation() {
        let c = SQueryConfig::default();
        assert!(c.wal_dir.is_none(), "WAL is off by default");
        assert_eq!(c.wal_fsync, FsyncMode::Never);
        assert_eq!(c.wal_retention, 4);
        let c = c
            .with_wal_dir("/tmp/squery-wal")
            .with_fsync(FsyncMode::OnCommit)
            .with_wal_retention(2);
        c.validate().unwrap();
        assert_eq!(
            c.wal_dir.as_deref(),
            Some(std::path::Path::new("/tmp/squery-wal"))
        );
        assert_eq!(c.wal_fsync, FsyncMode::OnCommit);
        assert_eq!(c.wal_retention, 2);
        let c = c.with_wal_retention(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn query_parallelism_builder() {
        let c = SQueryConfig::default().with_query_parallelism(Parallelism::of(4));
        c.validate().unwrap();
        assert_eq!(c.query_parallelism.degree, 4);
        assert!(c.query_parallelism.is_parallel());
    }

    #[test]
    fn engine_config_mirrors_fields() {
        let c = SQueryConfig::snapshot_periodic(Duration::from_millis(500));
        let e = c.engine_config();
        assert_eq!(e.checkpoint_interval, Some(Duration::from_millis(500)));
        assert_eq!(e.state, c.state);
        assert_eq!(e.channel_capacity, 1024);
        let c = c
            .with_ack_timeout(Duration::from_millis(200))
            .with_checkpoint_retries(3, Duration::from_millis(10));
        let e = c.engine_config();
        assert_eq!(e.ack_timeout, Duration::from_millis(200));
        assert_eq!(e.checkpoint_retries, 3);
        assert_eq!(e.retry_backoff, Duration::from_millis(10));
    }
}
