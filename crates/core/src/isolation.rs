//! Isolation levels for state queries (paper §VII).
//!
//! S-QUERY offers two read paths with different guarantees:
//!
//! * **Live state** — read uncommitted in general: a failure rolls the
//!   system back to the last checkpoint, so values observed live may later
//!   "un-happen" (the dirty read of Figure 5). Absent failures, key-level
//!   locking lifts live reads to read committed. The paper sketches (but
//!   does not implement) two upgrades: hot-standby active replication for
//!   failure-proof read committed, and holding key locks for a whole query
//!   for repeatable read — rejected for its performance cost.
//! * **Snapshot state** — snapshot isolation by construction (immutable
//!   committed versions, atomic publication evading phantom reads), and in
//!   fact **serializable**: live updates are serialized by design (parallel
//!   single-threaded operators over disjoint key partitions ⇒ no concurrent
//!   writes, no write conflicts), and a snapshot crystallizes that serial
//!   history at one point (the Figure 6 behaviour).

use crate::direct::StateView;
use std::fmt;

/// ANSI-style isolation levels, as discussed in the paper's §VII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IsolationLevel {
    /// Dirty reads possible (live state across failures).
    ReadUncommitted,
    /// Only committed data observed (live state absent failures).
    ReadCommitted,
    /// Reads repeat within a transaction (not offered — would require
    /// holding key locks for whole queries, §VII-B).
    RepeatableRead,
    /// Queries see one committed snapshot, immune to concurrent updates.
    SnapshotIsolation,
    /// Equivalent to a serial schedule (snapshot queries, §VII-B).
    Serializable,
}

impl IsolationLevel {
    /// The isolation level a given state view provides.
    ///
    /// `assume_no_failures` reflects the paper's observation that live reads
    /// are read committed *"if we assume no failures"* — there is then no
    /// event that can destabilize an observed update, and key-level locking
    /// protects individual accesses.
    pub fn of_view(view: StateView, assume_no_failures: bool) -> IsolationLevel {
        match view {
            StateView::Live => {
                if assume_no_failures {
                    IsolationLevel::ReadCommitted
                } else {
                    IsolationLevel::ReadUncommitted
                }
            }
            // Snapshot reads are serializable: single-writer-per-partition
            // updates admit no write conflicts, and the snapshot is an atomic
            // crystallization of that serial history.
            StateView::LatestSnapshot | StateView::Snapshot(_) => IsolationLevel::Serializable,
        }
    }

    /// Whether dirty reads are possible at this level.
    pub fn allows_dirty_reads(self) -> bool {
        self == IsolationLevel::ReadUncommitted
    }

    /// Whether this level guarantees a query never observes effects of
    /// updates that commit after the query started.
    pub fn is_snapshot_stable(self) -> bool {
        matches!(
            self,
            IsolationLevel::SnapshotIsolation | IsolationLevel::Serializable
        )
    }

    /// One-line description, for reports and docs.
    pub fn description(self) -> &'static str {
        match self {
            IsolationLevel::ReadUncommitted => {
                "uncommitted updates observable; a failure may roll them back (dirty reads)"
            }
            IsolationLevel::ReadCommitted => {
                "only committed values observed; individual accesses protected by key-level locks"
            }
            IsolationLevel::RepeatableRead => {
                "reads repeat within a transaction; requires query-lifetime key locks"
            }
            IsolationLevel::SnapshotIsolation => {
                "each query reads one committed snapshot, isolated from concurrent updates"
            }
            IsolationLevel::Serializable => {
                "equivalent to a serial schedule; snapshot queries over single-writer state"
            }
        }
    }
}

impl fmt::Display for IsolationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            IsolationLevel::ReadUncommitted => "read uncommitted",
            IsolationLevel::ReadCommitted => "read committed",
            IsolationLevel::RepeatableRead => "repeatable read",
            IsolationLevel::SnapshotIsolation => "snapshot isolation",
            IsolationLevel::Serializable => "serializable",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squery_common::SnapshotId;

    #[test]
    fn live_view_levels_depend_on_failure_assumption() {
        assert_eq!(
            IsolationLevel::of_view(StateView::Live, false),
            IsolationLevel::ReadUncommitted
        );
        assert_eq!(
            IsolationLevel::of_view(StateView::Live, true),
            IsolationLevel::ReadCommitted
        );
    }

    #[test]
    fn snapshot_views_are_serializable() {
        assert_eq!(
            IsolationLevel::of_view(StateView::LatestSnapshot, false),
            IsolationLevel::Serializable
        );
        assert_eq!(
            IsolationLevel::of_view(StateView::Snapshot(SnapshotId(3)), false),
            IsolationLevel::Serializable
        );
    }

    #[test]
    fn level_ordering_matches_ansi_strength() {
        assert!(IsolationLevel::ReadUncommitted < IsolationLevel::ReadCommitted);
        assert!(IsolationLevel::ReadCommitted < IsolationLevel::RepeatableRead);
        assert!(IsolationLevel::RepeatableRead < IsolationLevel::SnapshotIsolation);
        assert!(IsolationLevel::SnapshotIsolation < IsolationLevel::Serializable);
    }

    #[test]
    fn predicates() {
        assert!(IsolationLevel::ReadUncommitted.allows_dirty_reads());
        assert!(!IsolationLevel::Serializable.allows_dirty_reads());
        assert!(IsolationLevel::Serializable.is_snapshot_stable());
        assert!(!IsolationLevel::ReadCommitted.is_snapshot_stable());
    }

    #[test]
    fn display_and_description() {
        assert_eq!(IsolationLevel::Serializable.to_string(), "serializable");
        assert!(IsolationLevel::ReadUncommitted
            .description()
            .contains("dirty"));
    }
}
