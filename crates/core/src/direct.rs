//! The direct object interface (paper Figure 1, §IX-D).
//!
//! Point and multi-key reads against an operator's state without going
//! through SQL — the interface the paper benchmarks against TSpoon in
//! Figure 14. Live reads go straight to the operator's grid map (each access
//! under its key lock); snapshot reads resolve a committed snapshot id at
//! the registry and read the immutable version data.

use parking_lot::Mutex;
use squery_common::config::Parallelism;
use squery_common::{SnapshotId, SqError, SqResult, Value};
use squery_storage::Grid;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Which state a direct read observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateView {
    /// The running live state (read uncommitted / read committed, §VII-B).
    Live,
    /// The latest committed snapshot at call time (serializable).
    LatestSnapshot,
    /// A specific committed snapshot (serializable; errors if pruned).
    Snapshot(SnapshotId),
}

/// Handle for direct object queries against a grid.
#[derive(Clone)]
pub struct DirectQuery {
    grid: Arc<Grid>,
    parallelism: Parallelism,
}

impl DirectQuery {
    /// A direct-query handle over `grid` (sequential reads).
    pub fn new(grid: Arc<Grid>) -> DirectQuery {
        DirectQuery {
            grid,
            parallelism: Parallelism::sequential(),
        }
    }

    /// The same handle with multi-key reads fanning out over worker threads,
    /// one claimable unit per grid partition.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> DirectQuery {
        self.parallelism = parallelism;
        self
    }

    fn resolve(&self, view: StateView) -> SqResult<Option<SnapshotId>> {
        match view {
            StateView::Live => Ok(None),
            StateView::LatestSnapshot => Ok(Some(self.grid.registry().resolve_query_ssid(None)?)),
            StateView::Snapshot(ssid) => {
                Ok(Some(self.grid.registry().resolve_query_ssid(Some(ssid))?))
            }
        }
    }

    /// Read one key of `operator`'s state.
    pub fn get(&self, operator: &str, key: &Value, view: StateView) -> SqResult<Option<Value>> {
        match self.resolve(view)? {
            None => {
                let map = self.grid.get_map(operator).ok_or_else(|| {
                    SqError::NotFound(format!("no live state for operator '{operator}'"))
                })?;
                Ok(map.get(key))
            }
            Some(ssid) => {
                let store = self.grid.get_snapshot_store(operator).ok_or_else(|| {
                    SqError::NotFound(format!("no snapshot state for operator '{operator}'"))
                })?;
                store.read_at(ssid, key)
            }
        }
    }

    /// Read several keys in one call; the snapshot id (for snapshot views)
    /// is resolved once, so all keys come from the same version.
    ///
    /// With a parallel handle ([`DirectQuery::with_parallelism`]) the keys
    /// are grouped by grid partition and workers claim one partition group
    /// at a time; results come back in input order either way.
    pub fn get_many(
        &self,
        operator: &str,
        keys: &[Value],
        view: StateView,
    ) -> SqResult<Vec<(Value, Option<Value>)>> {
        match self.resolve(view)? {
            None => {
                let map = self.grid.get_map(operator).ok_or_else(|| {
                    SqError::NotFound(format!("no live state for operator '{operator}'"))
                })?;
                if self.parallelism.is_parallel() && keys.len() > 1 {
                    self.get_many_parallel(keys, |k| Ok(map.get(k)))
                } else {
                    Ok(map.get_all(keys))
                }
            }
            Some(ssid) => {
                let store = self.grid.get_snapshot_store(operator).ok_or_else(|| {
                    SqError::NotFound(format!("no snapshot state for operator '{operator}'"))
                })?;
                if self.parallelism.is_parallel() && keys.len() > 1 {
                    self.get_many_parallel(keys, |k| store.read_at(ssid, k))
                } else {
                    keys.iter()
                        .map(|k| Ok((k.clone(), store.read_at(ssid, k)?)))
                        .collect()
                }
            }
        }
    }

    /// Partition-grouped fan-out for multi-key reads: group key indices by
    /// grid partition, let workers claim whole groups from an atomic cursor,
    /// and scatter the values back into input order.
    fn get_many_parallel(
        &self,
        keys: &[Value],
        read: impl Fn(&Value) -> SqResult<Option<Value>> + Sync,
    ) -> SqResult<Vec<(Value, Option<Value>)>> {
        let partitioner = self.grid.partitioner();
        let mut by_partition = vec![Vec::new(); partitioner.partition_count() as usize];
        for (i, key) in keys.iter().enumerate() {
            by_partition[partitioner.partition_of(key).0 as usize].push(i);
        }
        let groups: Vec<Vec<usize>> = by_partition.into_iter().filter(|g| !g.is_empty()).collect();
        let cursor = AtomicUsize::new(0);
        let first_error: Mutex<Option<SqError>> = Mutex::new(None);
        let results: Mutex<Vec<Option<Option<Value>>>> = Mutex::new(vec![None; keys.len()]);
        let workers = self.parallelism.degree.min(groups.len().max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let g = cursor.fetch_add(1, Ordering::Relaxed);
                    if g >= groups.len() || first_error.lock().is_some() {
                        return;
                    }
                    let mut local = Vec::with_capacity(groups[g].len());
                    for &i in &groups[g] {
                        match read(&keys[i]) {
                            Ok(v) => local.push((i, v)),
                            Err(e) => {
                                let mut guard = first_error.lock();
                                if guard.is_none() {
                                    *guard = Some(e);
                                }
                                return;
                            }
                        }
                    }
                    let mut out = results.lock();
                    for (i, v) in local {
                        out[i] = Some(v);
                    }
                });
            }
        });
        if let Some(e) = first_error.into_inner() {
            return Err(e);
        }
        Ok(results
            .into_inner()
            .into_iter()
            .zip(keys.iter())
            .map(|(v, k)| (k.clone(), v.expect("every key read")))
            .collect())
    }

    /// Read an operator's complete state (the "total state" retrieval of the
    /// paper's Figure 14 experiment).
    pub fn scan(&self, operator: &str, view: StateView) -> SqResult<Vec<(Value, Value)>> {
        match self.resolve(view)? {
            None => {
                let map = self.grid.get_map(operator).ok_or_else(|| {
                    SqError::NotFound(format!("no live state for operator '{operator}'"))
                })?;
                Ok(map.entries())
            }
            Some(ssid) => {
                let store = self.grid.get_snapshot_store(operator).ok_or_else(|| {
                    SqError::NotFound(format!("no snapshot state for operator '{operator}'"))
                })?;
                Ok(store.scan_at(ssid)?.0)
            }
        }
    }

    /// The latest committed snapshot id, if any.
    pub fn latest_snapshot(&self) -> Option<SnapshotId> {
        let latest = self.grid.registry().latest_committed();
        latest.is_some().then_some(latest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squery_common::PartitionId;

    fn grid_with_state() -> Arc<Grid> {
        let grid = Grid::single_node();
        let live = grid.map("counter");
        live.put(Value::Int(1), Value::Int(5));
        live.put(Value::Int(2), Value::Int(7));
        let store = grid.snapshot_store("counter");
        let ssid = grid.registry().begin().unwrap();
        for pid in 0..grid.partitioner().partition_count() {
            store.write_partition(ssid, PartitionId(pid), vec![], true);
        }
        store.write_partition(
            ssid,
            store.partition_of(&Value::Int(1)),
            vec![(Value::Int(1), Some(Value::Int(4)))],
            true,
        );
        grid.registry().commit(ssid).unwrap();
        grid
    }

    #[test]
    fn live_vs_snapshot_get() {
        let grid = grid_with_state();
        let dq = DirectQuery::new(grid);
        assert_eq!(
            dq.get("counter", &Value::Int(1), StateView::Live).unwrap(),
            Some(Value::Int(5)),
            "live sees the uncommitted value"
        );
        assert_eq!(
            dq.get("counter", &Value::Int(1), StateView::LatestSnapshot)
                .unwrap(),
            Some(Value::Int(4)),
            "snapshot sees the committed value"
        );
        assert_eq!(
            dq.get(
                "counter",
                &Value::Int(1),
                StateView::Snapshot(SnapshotId(1))
            )
            .unwrap(),
            Some(Value::Int(4))
        );
    }

    #[test]
    fn get_many_mixes_hits_and_misses() {
        let grid = grid_with_state();
        let dq = DirectQuery::new(grid);
        let live = dq
            .get_many("counter", &[Value::Int(1), Value::Int(9)], StateView::Live)
            .unwrap();
        assert_eq!(live[0].1, Some(Value::Int(5)));
        assert_eq!(live[1].1, None);
        let snap = dq
            .get_many(
                "counter",
                &[Value::Int(1), Value::Int(2)],
                StateView::LatestSnapshot,
            )
            .unwrap();
        assert_eq!(snap[0].1, Some(Value::Int(4)));
        assert_eq!(snap[1].1, None, "key 2 was not in the snapshot");
    }

    #[test]
    fn scan_views() {
        let grid = grid_with_state();
        let dq = DirectQuery::new(grid);
        assert_eq!(dq.scan("counter", StateView::Live).unwrap().len(), 2);
        assert_eq!(
            dq.scan("counter", StateView::LatestSnapshot).unwrap(),
            vec![(Value::Int(1), Value::Int(4))]
        );
    }

    #[test]
    fn unknown_operator_errors() {
        let dq = DirectQuery::new(grid_with_state());
        assert!(dq.get("nope", &Value::Int(1), StateView::Live).is_err());
        assert!(dq
            .get("nope", &Value::Int(1), StateView::LatestSnapshot)
            .is_err());
        assert!(dq.scan("nope", StateView::Live).is_err());
    }

    #[test]
    fn uncommitted_snapshot_errors() {
        let dq = DirectQuery::new(grid_with_state());
        assert!(dq
            .get(
                "counter",
                &Value::Int(1),
                StateView::Snapshot(SnapshotId(99))
            )
            .is_err());
    }

    #[test]
    fn no_snapshot_committed_yet() {
        let grid = Grid::single_node();
        grid.map("op").put(Value::Int(1), Value::Int(1));
        grid.snapshot_store("op");
        let dq = DirectQuery::new(grid);
        assert!(dq.latest_snapshot().is_none());
        assert!(dq
            .get("op", &Value::Int(1), StateView::LatestSnapshot)
            .is_err());
        assert_eq!(
            dq.get("op", &Value::Int(1), StateView::Live).unwrap(),
            Some(Value::Int(1))
        );
    }

    #[test]
    fn latest_snapshot_reports_id() {
        let dq = DirectQuery::new(grid_with_state());
        assert_eq!(dq.latest_snapshot(), Some(SnapshotId(1)));
    }

    #[test]
    fn parallel_get_many_matches_sequential() {
        use squery_common::config::Parallelism;
        let grid = grid_with_state();
        let sequential = DirectQuery::new(Arc::clone(&grid));
        let parallel = DirectQuery::new(grid).with_parallelism(Parallelism::of(4));
        // Mix of hits and misses, spread across partitions, with a repeat.
        let keys: Vec<Value> = (0..64).map(Value::Int).chain([Value::Int(1)]).collect();
        for view in [StateView::Live, StateView::LatestSnapshot] {
            let a = sequential.get_many("counter", &keys, view).unwrap();
            let b = parallel.get_many("counter", &keys, view).unwrap();
            assert_eq!(a, b, "{view:?}");
        }
        // Errors still surface (pruned/unknown snapshot id).
        assert!(parallel
            .get_many("counter", &keys, StateView::Snapshot(SnapshotId(99)))
            .is_err());
    }
}
