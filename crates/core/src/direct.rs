//! The direct object interface (paper Figure 1, §IX-D).
//!
//! Point and multi-key reads against an operator's state without going
//! through SQL — the interface the paper benchmarks against TSpoon in
//! Figure 14. Live reads go straight to the operator's grid map (each access
//! under its key lock); snapshot reads resolve a committed snapshot id at
//! the registry and read the immutable version data.

use squery_common::{SnapshotId, SqError, SqResult, Value};
use squery_storage::Grid;
use std::sync::Arc;

/// Which state a direct read observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateView {
    /// The running live state (read uncommitted / read committed, §VII-B).
    Live,
    /// The latest committed snapshot at call time (serializable).
    LatestSnapshot,
    /// A specific committed snapshot (serializable; errors if pruned).
    Snapshot(SnapshotId),
}

/// Handle for direct object queries against a grid.
#[derive(Clone)]
pub struct DirectQuery {
    grid: Arc<Grid>,
}

impl DirectQuery {
    /// A direct-query handle over `grid`.
    pub fn new(grid: Arc<Grid>) -> DirectQuery {
        DirectQuery { grid }
    }

    fn resolve(&self, view: StateView) -> SqResult<Option<SnapshotId>> {
        match view {
            StateView::Live => Ok(None),
            StateView::LatestSnapshot => Ok(Some(self.grid.registry().resolve_query_ssid(None)?)),
            StateView::Snapshot(ssid) => {
                Ok(Some(self.grid.registry().resolve_query_ssid(Some(ssid))?))
            }
        }
    }

    /// Read one key of `operator`'s state.
    pub fn get(&self, operator: &str, key: &Value, view: StateView) -> SqResult<Option<Value>> {
        match self.resolve(view)? {
            None => {
                let map = self.grid.get_map(operator).ok_or_else(|| {
                    SqError::NotFound(format!("no live state for operator '{operator}'"))
                })?;
                Ok(map.get(key))
            }
            Some(ssid) => {
                let store = self.grid.get_snapshot_store(operator).ok_or_else(|| {
                    SqError::NotFound(format!("no snapshot state for operator '{operator}'"))
                })?;
                store.read_at(ssid, key)
            }
        }
    }

    /// Read several keys in one call; the snapshot id (for snapshot views)
    /// is resolved once, so all keys come from the same version.
    pub fn get_many(
        &self,
        operator: &str,
        keys: &[Value],
        view: StateView,
    ) -> SqResult<Vec<(Value, Option<Value>)>> {
        match self.resolve(view)? {
            None => {
                let map = self.grid.get_map(operator).ok_or_else(|| {
                    SqError::NotFound(format!("no live state for operator '{operator}'"))
                })?;
                Ok(map.get_all(keys))
            }
            Some(ssid) => {
                let store = self.grid.get_snapshot_store(operator).ok_or_else(|| {
                    SqError::NotFound(format!("no snapshot state for operator '{operator}'"))
                })?;
                keys.iter()
                    .map(|k| Ok((k.clone(), store.read_at(ssid, k)?)))
                    .collect()
            }
        }
    }

    /// Read an operator's complete state (the "total state" retrieval of the
    /// paper's Figure 14 experiment).
    pub fn scan(&self, operator: &str, view: StateView) -> SqResult<Vec<(Value, Value)>> {
        match self.resolve(view)? {
            None => {
                let map = self.grid.get_map(operator).ok_or_else(|| {
                    SqError::NotFound(format!("no live state for operator '{operator}'"))
                })?;
                Ok(map.entries())
            }
            Some(ssid) => {
                let store = self.grid.get_snapshot_store(operator).ok_or_else(|| {
                    SqError::NotFound(format!("no snapshot state for operator '{operator}'"))
                })?;
                Ok(store.scan_at(ssid)?.0)
            }
        }
    }

    /// The latest committed snapshot id, if any.
    pub fn latest_snapshot(&self) -> Option<SnapshotId> {
        let latest = self.grid.registry().latest_committed();
        latest.is_some().then_some(latest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squery_common::PartitionId;

    fn grid_with_state() -> Arc<Grid> {
        let grid = Grid::single_node();
        let live = grid.map("counter");
        live.put(Value::Int(1), Value::Int(5));
        live.put(Value::Int(2), Value::Int(7));
        let store = grid.snapshot_store("counter");
        let ssid = grid.registry().begin().unwrap();
        for pid in 0..grid.partitioner().partition_count() {
            store.write_partition(ssid, PartitionId(pid), vec![], true);
        }
        store.write_partition(
            ssid,
            store.partition_of(&Value::Int(1)),
            vec![(Value::Int(1), Some(Value::Int(4)))],
            true,
        );
        grid.registry().commit(ssid).unwrap();
        grid
    }

    #[test]
    fn live_vs_snapshot_get() {
        let grid = grid_with_state();
        let dq = DirectQuery::new(grid);
        assert_eq!(
            dq.get("counter", &Value::Int(1), StateView::Live).unwrap(),
            Some(Value::Int(5)),
            "live sees the uncommitted value"
        );
        assert_eq!(
            dq.get("counter", &Value::Int(1), StateView::LatestSnapshot)
                .unwrap(),
            Some(Value::Int(4)),
            "snapshot sees the committed value"
        );
        assert_eq!(
            dq.get(
                "counter",
                &Value::Int(1),
                StateView::Snapshot(SnapshotId(1))
            )
            .unwrap(),
            Some(Value::Int(4))
        );
    }

    #[test]
    fn get_many_mixes_hits_and_misses() {
        let grid = grid_with_state();
        let dq = DirectQuery::new(grid);
        let live = dq
            .get_many("counter", &[Value::Int(1), Value::Int(9)], StateView::Live)
            .unwrap();
        assert_eq!(live[0].1, Some(Value::Int(5)));
        assert_eq!(live[1].1, None);
        let snap = dq
            .get_many(
                "counter",
                &[Value::Int(1), Value::Int(2)],
                StateView::LatestSnapshot,
            )
            .unwrap();
        assert_eq!(snap[0].1, Some(Value::Int(4)));
        assert_eq!(snap[1].1, None, "key 2 was not in the snapshot");
    }

    #[test]
    fn scan_views() {
        let grid = grid_with_state();
        let dq = DirectQuery::new(grid);
        assert_eq!(dq.scan("counter", StateView::Live).unwrap().len(), 2);
        assert_eq!(
            dq.scan("counter", StateView::LatestSnapshot).unwrap(),
            vec![(Value::Int(1), Value::Int(4))]
        );
    }

    #[test]
    fn unknown_operator_errors() {
        let dq = DirectQuery::new(grid_with_state());
        assert!(dq.get("nope", &Value::Int(1), StateView::Live).is_err());
        assert!(dq
            .get("nope", &Value::Int(1), StateView::LatestSnapshot)
            .is_err());
        assert!(dq.scan("nope", StateView::Live).is_err());
    }

    #[test]
    fn uncommitted_snapshot_errors() {
        let dq = DirectQuery::new(grid_with_state());
        assert!(dq
            .get(
                "counter",
                &Value::Int(1),
                StateView::Snapshot(SnapshotId(99))
            )
            .is_err());
    }

    #[test]
    fn no_snapshot_committed_yet() {
        let grid = Grid::single_node();
        grid.map("op").put(Value::Int(1), Value::Int(1));
        grid.snapshot_store("op");
        let dq = DirectQuery::new(grid);
        assert!(dq.latest_snapshot().is_none());
        assert!(dq
            .get("op", &Value::Int(1), StateView::LatestSnapshot)
            .is_err());
        assert_eq!(
            dq.get("op", &Value::Int(1), StateView::Live).unwrap(),
            Some(Value::Int(1))
        );
    }

    #[test]
    fn latest_snapshot_reports_id() {
        let dq = DirectQuery::new(grid_with_state());
        assert_eq!(dq.latest_snapshot(), Some(SnapshotId(1)));
    }
}
