//! Chaos + tracing integration: every injected fault that forced a
//! supervised recovery must leave a matching `recovery` span in
//! `sys_spans`, so an operator can correlate `sys_faults` with the trace
//! timeline after the fact.

use squery::{RestartPolicy, SQuery, SQueryConfig, StateConfig};
use squery_common::fault::{FaultAction, FaultPlan, FaultSpec, FaultTrigger, InjectionPoint};
use squery_common::schema::schema;
use squery_common::{DataType, Value};
use squery_streaming::dag::adapters::{FnStateful, FnStatefulOp, NullSinkFactory};
use squery_streaming::dag::{SourceFactory, Stateful};
use squery_streaming::source::{Source, SourceStatus};
use squery_streaming::state::KeyedState;
use squery_streaming::{EdgeKind, JobSpec, Record};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const KEYS: i64 = 5;
const ROUND: u64 = 60;
const ROUNDS: u64 = 3;

/// Allowance-gated keyed source; replays deterministically after rewind.
struct GatedSource {
    index: u64,
    allowance: Arc<AtomicU64>,
}

impl Source for GatedSource {
    fn next_batch(&mut self, max: usize, _now_us: u64, out: &mut Vec<Record>) -> SourceStatus {
        let allowed = self.allowance.load(Ordering::Acquire);
        let budget = allowed.saturating_sub(self.index).min(max as u64);
        if budget == 0 {
            return SourceStatus::Idle;
        }
        for _ in 0..budget {
            out.push(Record::new((self.index as i64) % KEYS, 1i64));
            self.index += 1;
        }
        SourceStatus::Active
    }

    fn offset(&self) -> Value {
        Value::Int(self.index as i64)
    }

    fn rewind(&mut self, offset: &Value) {
        self.index = offset.as_int().expect("int offset") as u64;
    }
}

struct GatedFactory {
    allowance: Arc<AtomicU64>,
}

impl SourceFactory for GatedFactory {
    fn create(&self, _i: u32, _n: u32) -> Box<dyn Source> {
        Box::new(GatedSource {
            index: 0,
            allowance: Arc::clone(&self.allowance),
        })
    }
}

fn counting_job(allowance: &Arc<AtomicU64>) -> JobSpec {
    let mut b = JobSpec::builder("trace-chaos");
    let src = b.source(
        "src",
        1,
        Arc::new(GatedFactory {
            allowance: Arc::clone(allowance),
        }),
    );
    let factory = Arc::new(FnStateful(|_, _| {
        Box::new(FnStatefulOp(
            |r: Record, state: &mut dyn KeyedState, out: &mut Vec<Record>| {
                let next = state.get(&r.key).and_then(|v| v.as_int()).unwrap_or(0) + 1;
                state.put(r.key.clone(), Value::Int(next));
                out.push(Record {
                    key: r.key,
                    value: Value::Int(next),
                    src_ts: r.src_ts,
                    port: 0,
                });
            },
        )) as Box<dyn Stateful>
    }));
    let op = b.stateful_with_schema("count", 2, factory, schema(vec![("this", DataType::Int)]));
    let sink = b.sink("sink", 1, Arc::new(NullSinkFactory));
    b.edge(src, op, EdgeKind::Keyed);
    b.edge(op, sink, EdgeKind::Forward);
    b.build().unwrap()
}

fn live_sum(system: &SQuery) -> i64 {
    system
        .grid()
        .get_map("count")
        .map(|m| {
            m.entries()
                .iter()
                .filter_map(|(_, v)| v.as_int())
                .sum::<i64>()
        })
        .unwrap_or(0)
}

#[test]
fn every_recovered_fault_has_a_matching_recovery_span_in_sys_spans() {
    let system = SQuery::new(
        SQueryConfig::default()
            .with_state(StateConfig::live_and_snapshot())
            .with_tracing(true)
            .with_ack_timeout(Duration::from_millis(250))
            .with_checkpoint_retries(3, Duration::from_millis(2)),
    )
    .unwrap();
    // Two worker panics: one mid-round at a record count, one between
    // checkpoint phases 1 and 2. Both force a supervised rollback.
    let injector = system.inject_faults(
        FaultPlan::new(11)
            .with(FaultSpec {
                point: InjectionPoint::WorkerRecord,
                action: FaultAction::PanicWorker,
                trigger: FaultTrigger {
                    at_record: Some(25),
                    operator: Some("count".into()),
                    instance: Some(1),
                    ..FaultTrigger::default()
                },
                once: true,
            })
            .with(FaultSpec {
                point: InjectionPoint::WorkerPostAck,
                action: FaultAction::PanicWorker,
                trigger: FaultTrigger {
                    at_ssid: Some(2),
                    operator: Some("count".into()),
                    instance: Some(0),
                    ..FaultTrigger::default()
                },
                once: true,
            }),
    );
    let allowance = Arc::new(AtomicU64::new(0));
    let job = system
        .submit_supervised(
            counting_job(&allowance),
            RestartPolicy {
                max_restarts: 8,
                base_backoff: Duration::from_millis(2),
                max_backoff: Duration::from_millis(50),
                poll_interval: Duration::from_millis(2),
                jitter_seed: 11,
            },
        )
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);

    // Feed in rounds with a checkpoint after each so both ssid- and
    // record-triggered faults fire, retrying checkpoints that land in a
    // recovery window.
    for round in 1..=ROUNDS {
        let released = round * ROUND;
        allowance.store(released, Ordering::Release);
        while live_sum(&system) < released as i64 {
            assert!(!job.status().gave_up, "supervisor gave up");
            assert!(Instant::now() < deadline, "round {round} never drained");
            std::thread::sleep(Duration::from_millis(2));
        }
        loop {
            assert!(Instant::now() < deadline, "round {round} checkpoint failed");
            if job.with_job(|j| j.checkpoint_now()).is_ok() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    // Settle: every fired fault must reach a terminal outcome.
    loop {
        assert!(!job.status().gave_up, "supervisor gave up");
        assert!(Instant::now() < deadline, "faults never resolved");
        let fired = injector.records();
        if fired.len() >= 2 && fired.iter().all(|f| f.outcome != "pending") {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let fired = injector.records();
    let recovered = fired.iter().filter(|f| f.outcome == "recovered").count();
    let by_retry = fired
        .iter()
        .filter(|f| f.outcome == "recovered_by_retry")
        .count();
    assert!(
        recovered >= 1,
        "no fault recovered via supervisor: {fired:?}"
    );

    // Every supervisor-recovered fault has a matching rollback `recovery`
    // span, and every retry-recovered fault a `checkpoint_retry` span.
    let recovery_spans = system
        .query("SELECT id FROM sys_spans WHERE kind = 'recovery'")
        .unwrap()
        .rows()
        .len();
    assert!(
        recovery_spans >= recovered,
        "{recovered} recovered faults but only {recovery_spans} recovery spans"
    );
    let retry_spans = system
        .query("SELECT id FROM sys_spans WHERE kind = 'checkpoint_retry'")
        .unwrap()
        .rows()
        .len();
    assert!(
        retry_spans >= by_retry,
        "{by_retry} retry-recovered faults but only {retry_spans} retry spans"
    );
    // The rollback spans carry the job and mode labels the operator joins
    // against sys_faults.
    let labelled = system
        .query("SELECT labels FROM sys_spans WHERE kind = 'recovery'")
        .unwrap();
    for row in labelled.rows() {
        let labels = row[0].as_str().unwrap();
        assert!(labels.contains("job=trace-chaos"), "labels: {labels}");
        assert!(labels.contains("mode="), "labels: {labels}");
    }
    // sys_faults agrees with the injector, so the two tables can be joined.
    let sys_faults = system
        .query("SELECT COUNT(*) AS n FROM sys_faults")
        .unwrap()
        .scalar("n")
        .and_then(Value::as_int)
        .unwrap();
    assert_eq!(sys_faults, fired.len() as i64);
    job.stop();
}
