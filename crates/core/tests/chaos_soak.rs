//! Chaos soak: seeded fault plans against the supervised counting workload.
//!
//! Fifty seeds, split into blocks of ten so the harness runs them on
//! parallel test threads. Every seed samples its own [`FaultPlan`] (worker
//! panics at record counts, post-ack kills, dropped phase-1 acks, failed
//! phase-2 commits, coordinator kills, plus benign stalls and delays) and
//! [`squery::chaos::run_seed`] fails the test unless, after supervised
//! recovery:
//!
//! * the per-key counts equal a fault-free pass (exactly-once),
//! * committed snapshot ids stayed strictly monotonic,
//! * the live map matches the final committed snapshot row for row,
//! * every fired fault reached a terminal outcome, and
//! * `sys_faults` agrees with the injector's log.

use squery::chaos::{run_plan, run_seed, ChaosConfig};
use squery_common::fault::{FaultAction, FaultPlan, FaultSpec, FaultTrigger, InjectionPoint};

fn soak(seeds: std::ops::RangeInclusive<u64>) {
    let cfg = ChaosConfig::default();
    let mut fired = 0usize;
    let mut restarts = 0u32;
    for seed in seeds {
        let report = run_seed(&cfg, seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        fired += report.faults.len();
        restarts += report.restarts;
    }
    eprintln!("soak block: {fired} faults fired, {restarts} supervisor restarts");
}

#[test]
fn soak_seeds_01_to_10() {
    soak(1..=10);
}

#[test]
fn soak_seeds_11_to_20() {
    soak(11..=20);
}

#[test]
fn soak_seeds_21_to_30() {
    soak(21..=30);
}

#[test]
fn soak_seeds_31_to_40() {
    soak(31..=40);
}

#[test]
fn soak_seeds_41_to_50() {
    soak(41..=50);
}

/// The acceptance scenario, end to end: a fixed plan kills a worker after
/// it acks checkpoint phase 1 (between phases 1 and 2), the supervisor
/// recovers without any manual `recover()` call, and two full runs of the
/// same plan produce byte-identical state and fault logs.
#[test]
fn fixed_seed_worker_kill_between_phases_is_byte_identical() {
    let cfg = ChaosConfig::default();
    let plan = || {
        FaultPlan::new(7).with(FaultSpec {
            point: InjectionPoint::WorkerPostAck,
            action: FaultAction::PanicWorker,
            trigger: FaultTrigger {
                at_ssid: Some(2),
                operator: Some("count".into()),
                instance: Some(1),
                ..FaultTrigger::default()
            },
            once: true,
        })
    };
    let a = run_plan(&cfg, plan()).unwrap();
    let b = run_plan(&cfg, plan()).unwrap();
    assert_eq!(a.fingerprint, b.fingerprint, "reruns diverged");
    assert!(a.restarts >= 1, "supervisor never had to act");
    assert_eq!(a.faults.len(), 1, "exactly the planned fault fired");
    assert_eq!(a.faults[0].outcome, "recovered");
}

/// Seeds with a crash point in every checkpoint phase: a record-count
/// worker panic (mid-round), a dropped phase-1 ack (abort + retry), and a
/// failed phase-2 commit, all in one plan.
#[test]
fn crash_points_across_all_checkpoint_phases_in_one_run() {
    let cfg = ChaosConfig::default();
    let plan = FaultPlan::new(13)
        .with(FaultSpec {
            point: InjectionPoint::WorkerRecord,
            action: FaultAction::PanicWorker,
            trigger: FaultTrigger {
                at_record: Some(9),
                operator: Some("count".into()),
                instance: Some(0),
                ..FaultTrigger::default()
            },
            once: true,
        })
        .with(FaultSpec {
            point: InjectionPoint::Phase1Ack,
            action: FaultAction::DropAck,
            trigger: FaultTrigger {
                at_ssid: Some(2),
                ..FaultTrigger::default()
            },
            once: true,
        })
        .with(FaultSpec {
            point: InjectionPoint::Phase2Commit,
            action: FaultAction::FailCommit,
            trigger: FaultTrigger {
                at_ssid: Some(4),
                ..FaultTrigger::default()
            },
            once: true,
        });
    let report = run_plan(&cfg, plan).unwrap();
    assert!(
        report.faults.len() >= 2,
        "expected several phases hit, got {:?}",
        report.faults
    );
    assert!(
        report.faults.iter().all(|f| f.outcome != "pending"),
        "unresolved faults: {:?}",
        report.faults
    );
}
