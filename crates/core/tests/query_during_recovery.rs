//! Queries stay on committed data while the supervisor recovers a crashed
//! job: a reader thread hammers the pinned-ssid SQL path and the direct
//! `get_many` path through a worker kill + rollback + replay, asserting
//! every single read is row-for-row identical to the pre-crash baseline
//! (pinned reads) or sums to a committed total (latest-snapshot reads) —
//! no torn or partially-recovered state is ever visible.

use squery::{RestartPolicy, SQuery, SQueryConfig, StateConfig, StateView};
use squery_common::fault::{FaultAction, FaultPlan, FaultSpec, FaultTrigger, InjectionPoint};
use squery_common::schema::schema;
use squery_common::{DataType, Value};
use squery_streaming::dag::adapters::{FnStateful, FnStatefulOp, NullSinkFactory};
use squery_streaming::dag::{SourceFactory, Stateful};
use squery_streaming::source::{Source, SourceStatus};
use squery_streaming::state::KeyedState;
use squery_streaming::{EdgeKind, JobSpec, Record};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const KEYS: i64 = 5;
const ROUND: u64 = 60;

/// Allowance-gated keyed source: emits record `i` with key `i % KEYS`
/// while `i < allowance`, and replays deterministically after rewind.
struct GatedSource {
    index: u64,
    allowance: Arc<AtomicU64>,
}

impl Source for GatedSource {
    fn next_batch(&mut self, max: usize, _now_us: u64, out: &mut Vec<Record>) -> SourceStatus {
        let allowed = self.allowance.load(Ordering::Acquire);
        let budget = allowed.saturating_sub(self.index).min(max as u64);
        if budget == 0 {
            return SourceStatus::Idle;
        }
        for _ in 0..budget {
            out.push(Record::new((self.index as i64) % KEYS, 1i64));
            self.index += 1;
        }
        SourceStatus::Active
    }

    fn offset(&self) -> Value {
        Value::Int(self.index as i64)
    }

    fn rewind(&mut self, offset: &Value) {
        self.index = offset.as_int().expect("int offset") as u64;
    }
}

struct GatedFactory {
    allowance: Arc<AtomicU64>,
}

impl SourceFactory for GatedFactory {
    fn create(&self, _i: u32, _n: u32) -> Box<dyn Source> {
        Box::new(GatedSource {
            index: 0,
            allowance: Arc::clone(&self.allowance),
        })
    }
}

fn counting_job(allowance: &Arc<AtomicU64>) -> JobSpec {
    let mut b = JobSpec::builder("recovery-count");
    let src = b.source(
        "src",
        1,
        Arc::new(GatedFactory {
            allowance: Arc::clone(allowance),
        }),
    );
    let factory = Arc::new(FnStateful(|_, _| {
        Box::new(FnStatefulOp(
            |r: Record, state: &mut dyn KeyedState, out: &mut Vec<Record>| {
                let next = state.get(&r.key).and_then(|v| v.as_int()).unwrap_or(0) + 1;
                state.put(r.key.clone(), Value::Int(next));
                out.push(Record {
                    key: r.key,
                    value: Value::Int(next),
                    src_ts: r.src_ts,
                    port: 0,
                });
            },
        )) as Box<dyn Stateful>
    }));
    let op = b.stateful_with_schema("count", 2, factory, schema(vec![("this", DataType::Int)]));
    let sink = b.sink("sink", 1, Arc::new(NullSinkFactory));
    b.edge(src, op, EdgeKind::Keyed);
    b.edge(op, sink, EdgeKind::Forward);
    b.build().unwrap()
}

/// Sum of the live per-key counts = distinct records reflected in state.
fn live_sum(system: &SQuery) -> i64 {
    system
        .grid()
        .get_map("count")
        .map(|m| {
            m.entries()
                .iter()
                .filter_map(|(_, v)| v.as_int())
                .sum::<i64>()
        })
        .unwrap_or(0)
}

fn sorted_rows(rows: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut sorted = rows.to_vec();
    sorted.sort();
    sorted
}

#[test]
fn pinned_queries_are_stable_through_supervised_recovery() {
    let system = Arc::new(
        SQuery::new(
            SQueryConfig::default()
                .with_state(StateConfig::live_and_snapshot())
                .with_retention(4) // the pinned baseline must never be pruned
                .with_ack_timeout(Duration::from_millis(250))
                .with_checkpoint_retries(2, Duration::from_millis(2)),
        )
        .unwrap(),
    );
    // A worker dies between checkpoint phases 1 and 2 of the second round.
    let injector = system.inject_faults(FaultPlan::new(0).with(FaultSpec {
        point: InjectionPoint::WorkerPostAck,
        action: FaultAction::PanicWorker,
        trigger: FaultTrigger {
            at_ssid: Some(2),
            operator: Some("count".into()),
            instance: Some(0),
            ..FaultTrigger::default()
        },
        once: true,
    }));
    let allowance = Arc::new(AtomicU64::new(0));
    let job = system
        .submit_supervised(
            counting_job(&allowance),
            RestartPolicy {
                max_restarts: 5,
                base_backoff: Duration::from_millis(2),
                max_backoff: Duration::from_millis(50),
                poll_interval: Duration::from_millis(2),
                jitter_seed: 3,
            },
        )
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);

    // Round 1: feed, drain, checkpoint — this snapshot is the baseline the
    // pinned readers must keep seeing unchanged through the crash.
    allowance.store(ROUND, Ordering::Release);
    while live_sum(&system) < ROUND as i64 {
        assert!(Instant::now() < deadline, "round 1 never drained");
        std::thread::sleep(Duration::from_millis(2));
    }
    job.with_job(|j| j.checkpoint_now()).unwrap();
    let pinned = system.latest_snapshot().expect("round 1 committed");
    let sql = format!(
        "SELECT partitionKey, this FROM snapshot_count WHERE ssid = {}",
        pinned.0
    );
    let baseline_sql = sorted_rows(system.query(&sql).unwrap().rows());
    let all_keys: Vec<Value> = (0..KEYS).map(Value::Int).collect();
    let baseline_direct = system
        .direct()
        .get_many("count", &all_keys, StateView::Snapshot(pinned))
        .unwrap();
    assert_eq!(baseline_sql.len(), KEYS as usize);

    // Readers hammer both query paths while the crash and recovery happen.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let system = Arc::clone(&system);
            let stop = Arc::clone(&stop);
            let sql = sql.clone();
            let baseline_sql = baseline_sql.clone();
            let baseline_direct = baseline_direct.clone();
            let all_keys = all_keys.clone();
            std::thread::spawn(move || {
                let mut reads = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let rows = sorted_rows(system.query(&sql).unwrap().rows());
                    assert_eq!(rows, baseline_sql, "pinned SQL read changed mid-recovery");
                    let direct = system
                        .direct()
                        .get_many("count", &all_keys, StateView::Snapshot(pinned))
                        .unwrap();
                    assert_eq!(direct, baseline_direct, "pinned direct read changed");
                    // Latest-snapshot reads may move forward, but only ever
                    // to another *committed* snapshot: the counts must sum
                    // to a full round, never a torn intermediate.
                    let latest = system
                        .direct()
                        .get_many("count", &all_keys, StateView::LatestSnapshot)
                        .unwrap();
                    let sum: i64 = latest
                        .iter()
                        .filter_map(|(_, v)| v.as_ref()?.as_int())
                        .sum();
                    assert!(
                        sum % ROUND as i64 == 0 && sum > 0,
                        "latest-snapshot read saw a torn total of {sum}"
                    );
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    // Round 2: feed and drain, then trigger checkpoint 2 — the planned
    // fault kills a worker right after its phase-1 ack. Whether or not
    // phase 2 still commits that round, the supervisor must notice the
    // dead worker, roll back, and replay with no manual recover() call.
    allowance.store(2 * ROUND, Ordering::Release);
    while live_sum(&system) < 2 * ROUND as i64 {
        assert!(Instant::now() < deadline, "round 2 never drained");
        std::thread::sleep(Duration::from_millis(2));
    }
    let _ = job.with_job(|j| j.checkpoint_now()); // fires the fault
    loop {
        assert!(!job.status().gave_up, "supervisor gave up");
        assert!(Instant::now() < deadline, "recovery never converged");
        if job.status().restarts >= 1 && live_sum(&system) >= 2 * ROUND as i64 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    // Replay is complete and no records remain, so a clean checkpoint of
    // the full two rounds must commit (retrying while the fresh workers
    // settle in).
    loop {
        assert!(Instant::now() < deadline, "post-recovery checkpoint failed");
        if job.with_job(|j| j.checkpoint_now()).is_ok() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    stop.store(true, Ordering::Release);
    let reads: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(reads > 0, "readers never ran during the recovery window");

    assert!(job.status().restarts >= 1, "fault never triggered recovery");
    let fired = injector.records();
    assert_eq!(fired.len(), 1);
    assert_eq!(fired[0].outcome, "recovered");

    // After recovery the new snapshot holds both rounds, and the pinned one
    // still holds exactly round 1.
    let final_sql = sorted_rows(system.query(&sql).unwrap().rows());
    assert_eq!(
        final_sql, baseline_sql,
        "pinned snapshot changed after recovery"
    );
    let latest = system.latest_snapshot().unwrap();
    assert!(latest > pinned, "recovery must commit a newer snapshot");
    let latest_rows = system
        .query(&format!(
            "SELECT partitionKey, this FROM snapshot_count WHERE ssid = {}",
            latest.0
        ))
        .unwrap();
    let total: i64 = latest_rows
        .rows()
        .iter()
        .filter_map(|r| r[1].as_int())
        .sum();
    assert_eq!(
        total,
        2 * ROUND as i64,
        "final snapshot reflects both rounds"
    );
    job.stop();
}
