#!/usr/bin/env bash
# Local CI gate: formatting, lints, static analysis, the full test suite,
# the chaos soak, the trace-export smoke, the state-statistics smoke, the
# SQL benchmark-regression gate, the WAL kill-restart durability soak, the
# watermark/freshness smoke, and the ThreadSanitizer pass.
# Usage: scripts/check.sh [--fix] [--list] [--only STEP]
#   --fix         apply rustfmt instead of only checking
#   --list        print the runnable step names, one per line, and exit
#   --only STEP   run a single step (what the CI jobs call)
#
# Exit-code contract: there is deliberately no `set -e`. Every step function
# chains its commands with `&&` so the function's status is the first
# failing command's status, and the dispatcher captures that status and
# exits with it verbatim. CI proves the plumbing with the hidden
# `selftest-fail` step, which must make this script exit 42.
set -uo pipefail
cd "$(dirname "$0")/.." || exit 1

steps="fmt clippy lint test chaos trace stats bench durability freshness tsan"

fix=0
only=""
while [[ $# -gt 0 ]]; do
    case "$1" in
        --fix) fix=1; shift ;;
        --list)
            # shellcheck disable=SC2086
            printf '%s\n' $steps
            exit 0
            ;;
        --only)
            only="${2:-}"
            if [[ -z "$only" ]]; then
                echo "--only requires an argument: ${steps// /|}" >&2
                exit 2
            fi
            shift 2
            ;;
        *)
            echo "unknown argument '$1' (usage: scripts/check.sh [--fix] [--list] [--only ${steps// /|}])" >&2
            exit 2
            ;;
    esac
done

run_fmt() {
    if [[ "$fix" == 1 ]]; then
        echo "==> cargo fmt" &&
            cargo fmt --all
    else
        echo "==> cargo fmt --check" &&
            cargo fmt --all -- --check
    fi
}

run_clippy() {
    echo "==> cargo clippy --workspace --all-targets -- -D warnings" &&
        cargo clippy --workspace --all-targets -- -D warnings
}

run_lint() {
    # squery-lint: the workspace's own static analysis (SQ001 lock-order
    # cycles, SQ002 panic hygiene, SQ003 telemetry-name registry, SQ004
    # unsafe audit, SQ005 blocking-under-lock, SQ006 clock-domain taint,
    # SQ007 atomics handoff audit). Gate is zero findings; the binary
    # prints a pass-by-pass summary before the total.
    echo "==> squery-lint" &&
        cargo run --release -q -p squery-lint --bin squery-lint -- --root .
}

run_test() {
    echo "==> cargo test --workspace -q" &&
        cargo test --workspace -q
}

run_chaos() {
    # Fixed seed range inside a fixed time budget: a deterministic soak of
    # the fault-injection + supervised-recovery path (~60 s ceiling).
    # SQUERY_LOCK_ORDER=1 arms the runtime lock-order tracker (DESIGN.md
    # §9): any rank inversion fails the seed via check_lock_order_clean.
    echo "==> chaos soak (100 seeds, 60 s budget)" &&
        SQUERY_LOCK_ORDER=1 cargo run --release -q -p squery-bench --bin chaos -- \
            --seeds 100 --base-seed 1 --time-budget-secs 60
}

run_trace() {
    # Trace-export smoke: run a traced fig13-style query round at dop 4,
    # export the span log as Chrome trace-event JSON, and validate that the
    # file parses and the checkpoint phase-1/phase-2 spans nest under their
    # round's root span.
    local out="${TRACE_JSON:-target/trace.json}"
    echo "==> trace smoke (fig13 workload, dop 4, -> $out)" &&
        mkdir -p "$(dirname "$out")" &&
        cargo run --release -q -p squery-bench --bin paper-figures -- \
            --quick --dop 4 --trace-json "$out" &&
        python3 - "$out" <<'EOF'
import json, sys

path = sys.argv[1]
events = json.load(open(path))["traceEvents"]
assert events, "trace export is empty"
for e in events:
    for field in ("name", "ph", "ts", "dur", "pid", "tid"):
        assert field in e, f"event missing {field}: {e}"
by_kind = {}
for e in events:
    by_kind.setdefault(e["name"], []).append(e)
for kind in ("checkpoint_round", "checkpoint_phase1", "checkpoint_phase2", "query"):
    assert by_kind.get(kind), f"no {kind} spans in the trace"
rounds = by_kind["checkpoint_round"]
for phase in by_kind["checkpoint_phase1"] + by_kind["checkpoint_phase2"]:
    parents = [
        r for r in rounds
        if r["tid"] == phase["tid"]
        and r["ts"] <= phase["ts"]
        and phase["ts"] + phase["dur"] <= r["ts"] + r["dur"]
    ]
    assert parents, f"phase span does not nest under a round: {phase}"
print(
    f"trace OK: {len(events)} spans, {len(rounds)} checkpoint round(s), "
    f"phases nested"
)
EOF
}

run_stats() {
    # State-statistics smoke: skewed population through the accounting +
    # sampler pipeline, asserting partition counts match real scans at
    # DOP 1/4, the planted hot key surfaces, EXPLAIN carries est_rows,
    # and the JSON dump is well-formed.
    local out="${STATS_JSON:-target/stats.json}"
    echo "==> stats smoke (-> $out)" &&
        cargo run --release -q -p squery-bench --bin stats-watch -- \
            --smoke --json "$out"
}

run_bench() {
    # SQL benchmark-regression gate: Q1-Q4 + NEXMark q6 at DOP 4 on both
    # engines, compared against the committed BENCH_sql.json baseline. The
    # gate is row-engine-normalized: each query's columnar-vs-row speedup
    # (both engines timed interleaved on this host) must stay within 15% of
    # its baseline speedup, so machine speed cancels out. Writes the fresh
    # report to $BENCH_JSON (default: overwrite the baseline path so an
    # intentional perf change is a one-line `git add`).
    local out="${BENCH_JSON:-BENCH_sql.json}"
    echo "==> bench gate (Q1-Q4 + NEXMark q6, dop 4, row vs columnar, -> $out)" &&
        cargo run --release -q -p squery-bench --bin bench-gate -- \
            --check --baseline BENCH_sql.json --out "$out" \
            ${BENCH_SUMMARY:+--summary "$BENCH_SUMMARY"}
}

run_durability() {
    # WAL kill-restart soak: 25 seeds, each crashing a WAL-backed job at a
    # seeded fault point (after seal / torn delta / before seal / mid-
    # compaction), cold-starting a fresh system from the log alone, and
    # comparing the recovered snapshot byte-for-byte against the pre-kill
    # fingerprint. Writes per-seed fingerprints to $DURABILITY_JSON for the
    # CI artifact. SQUERY_LOCK_ORDER=1 arms the lock-order tracker so the
    # WalSegment rank is checked under real recovery traffic.
    local out="${DURABILITY_JSON:-target/durability.json}"
    echo "==> durability soak (25 seeds, kill + cold restart, -> $out)" &&
        mkdir -p "$(dirname "$out")" &&
        SQUERY_LOCK_ORDER=1 DURABILITY_JSON="$out" \
            cargo run --release -q -p squery-bench --bin durability -- \
            --seeds 25 --base-seed 1 --time-budget-secs 120
}

run_freshness() {
    # Watermark/freshness smoke: NEXMark q6 under paced load, three explicit
    # checkpoint rounds, asserting non-decreasing sealed watermarks,
    # sys_freshness consistent with the committed sys_snapshots set, live
    # frontiers at or ahead of the seal, and the EXPLAIN ANALYZE staleness
    # annotation. Writes the per-round lag report to $LAG_JSON for the CI
    # artifact.
    local out="${LAG_JSON:-target/lag.json}"
    echo "==> freshness smoke (NEXMark q6, 3 checkpoint rounds, -> $out)" &&
        cargo run --release -q -p squery-bench --bin lag-watch -- \
            --smoke --json "$out"
}

run_tsan() {
    # ThreadSanitizer pass (DESIGN.md §9): the streaming crate's unit tests
    # (checkpoint + worker handoffs) and a short chaos seed slice compiled
    # with -Zsanitizer=thread. The prebuilt std is uninstrumented — hence
    # -Cunsafe-allow-abi-mismatch and the libtest-channel suppressions in
    # scripts/tsan.supp; every squery crate IS instrumented and never
    # suppressed. Builds into target/tsan so sanitized artifacts don't mix
    # with the normal cache. Skips (exit 0) when no nightly toolchain is
    # installed, since -Zsanitizer is nightly-only.
    local log="${TSAN_LOG:-target/tsan/tsan.log}"
    if ! cargo +nightly --version >/dev/null 2>&1; then
        echo "==> tsan: no nightly toolchain installed, skipping (-Zsanitizer is nightly-only)"
        return 0
    fi
    local rustflags="-Zsanitizer=thread -Cunsafe-allow-abi-mismatch=sanitizer"
    local topts="suppressions=$PWD/scripts/tsan.supp"
    local host
    host=$(rustc -vV | sed -n 's/^host: //p')
    echo "==> tsan (streaming unit tests + chaos slice, -> $log)" &&
        mkdir -p "$(dirname "$log")" &&
        RUSTFLAGS="$rustflags" CARGO_TARGET_DIR=target/tsan TSAN_OPTIONS="$topts" \
            cargo +nightly test --offline -q -p squery-streaming --lib \
            --target "$host" -- --nocapture 2>&1 | tee "$log" &&
        RUSTFLAGS="$rustflags" CARGO_TARGET_DIR=target/tsan TSAN_OPTIONS="$topts" \
            cargo +nightly run --offline -q -p squery-bench --bin chaos \
            --target "$host" -- --seeds 3 --base-seed 1 --time-budget-secs 120 \
            2>&1 | tee -a "$log"
}

run_selftest_fail() {
    # Hidden step, not in --list: CI's negative test that a failing step's
    # exit code really reaches the caller. Must exit 42.
    echo "==> selftest-fail (this step always fails with exit 42)" &&
        return 42
}

rc=0
case "$only" in
    "") run_fmt && run_clippy && run_lint && run_test; rc=$? ;;
    fmt) run_fmt; rc=$? ;;
    clippy) run_clippy; rc=$? ;;
    lint) run_lint; rc=$? ;;
    test) run_test; rc=$? ;;
    chaos) run_chaos; rc=$? ;;
    trace) run_trace; rc=$? ;;
    stats) run_stats; rc=$? ;;
    bench) run_bench; rc=$? ;;
    durability) run_durability; rc=$? ;;
    freshness) run_freshness; rc=$? ;;
    tsan) run_tsan; rc=$? ;;
    selftest-fail) run_selftest_fail; rc=$? ;;
    *)
        echo "unknown step '$only' (known: ${steps// /, })" >&2
        exit 2
        ;;
esac

if [[ "$rc" -ne 0 ]]; then
    echo "check failed with exit $rc" >&2
    exit "$rc"
fi
echo "All checks passed."
