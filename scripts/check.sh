#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Usage: scripts/check.sh [--fix]
#   --fix   apply rustfmt instead of only checking
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fix" ]]; then
    echo "==> cargo fmt"
    cargo fmt --all
else
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "All checks passed."
