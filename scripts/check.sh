#!/usr/bin/env bash
# Local CI gate: formatting, lints, static analysis, the full test suite,
# the chaos soak, the trace-export smoke, and the state-statistics smoke.
# Usage: scripts/check.sh [--fix] [--only fmt|clippy|lint|test|chaos|trace|stats]
#   --fix         apply rustfmt instead of only checking
#   --only STEP   run a single step (what the CI jobs call)
set -euo pipefail
cd "$(dirname "$0")/.."

fix=0
only=""
while [[ $# -gt 0 ]]; do
    case "$1" in
        --fix) fix=1; shift ;;
        --only)
            only="${2:-}"
            if [[ -z "$only" ]]; then
                echo "--only requires an argument: fmt|clippy|lint|test|chaos|trace|stats" >&2
                exit 2
            fi
            shift 2
            ;;
        *)
            echo "unknown argument '$1' (usage: scripts/check.sh [--fix] [--only fmt|clippy|lint|test|chaos|trace|stats])" >&2
            exit 2
            ;;
    esac
done

run_fmt() {
    if [[ "$fix" == 1 ]]; then
        echo "==> cargo fmt"
        cargo fmt --all
    else
        echo "==> cargo fmt --check"
        cargo fmt --all -- --check
    fi
}

run_clippy() {
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
}

run_lint() {
    # squery-lint: the workspace's own static analysis (SQ001 lock-order
    # cycles, SQ002 panic hygiene, SQ003 telemetry-name registry, SQ004
    # unsafe audit). Gate is zero findings.
    echo "==> squery-lint"
    cargo run --release -q -p squery-lint --bin squery-lint -- --root .
}

run_test() {
    echo "==> cargo test --workspace -q"
    cargo test --workspace -q
}

run_chaos() {
    # Fixed seed range inside a fixed time budget: a deterministic soak of
    # the fault-injection + supervised-recovery path (~60 s ceiling).
    echo "==> chaos soak (100 seeds, 60 s budget)"
    # SQUERY_LOCK_ORDER=1 arms the runtime lock-order tracker (DESIGN.md
    # §9): any rank inversion fails the seed via check_lock_order_clean.
    SQUERY_LOCK_ORDER=1 cargo run --release -q -p squery-bench --bin chaos -- \
        --seeds 100 --base-seed 1 --time-budget-secs 60
}

run_trace() {
    # Trace-export smoke: run a traced fig13-style query round at dop 4,
    # export the span log as Chrome trace-event JSON, and validate that the
    # file parses and the checkpoint phase-1/phase-2 spans nest under their
    # round's root span.
    local out="${TRACE_JSON:-target/trace.json}"
    echo "==> trace smoke (fig13 workload, dop 4, -> $out)"
    mkdir -p "$(dirname "$out")"
    cargo run --release -q -p squery-bench --bin paper-figures -- \
        --quick --dop 4 --trace-json "$out"
    python3 - "$out" <<'EOF'
import json, sys

path = sys.argv[1]
events = json.load(open(path))["traceEvents"]
assert events, "trace export is empty"
for e in events:
    for field in ("name", "ph", "ts", "dur", "pid", "tid"):
        assert field in e, f"event missing {field}: {e}"
by_kind = {}
for e in events:
    by_kind.setdefault(e["name"], []).append(e)
for kind in ("checkpoint_round", "checkpoint_phase1", "checkpoint_phase2", "query"):
    assert by_kind.get(kind), f"no {kind} spans in the trace"
rounds = by_kind["checkpoint_round"]
for phase in by_kind["checkpoint_phase1"] + by_kind["checkpoint_phase2"]:
    parents = [
        r for r in rounds
        if r["tid"] == phase["tid"]
        and r["ts"] <= phase["ts"]
        and phase["ts"] + phase["dur"] <= r["ts"] + r["dur"]
    ]
    assert parents, f"phase span does not nest under a round: {phase}"
print(
    f"trace OK: {len(events)} spans, {len(rounds)} checkpoint round(s), "
    f"phases nested"
)
EOF
}

run_stats() {
    # State-statistics smoke: skewed population through the accounting +
    # sampler pipeline, asserting partition counts match real scans at
    # DOP 1/4, the planted hot key surfaces, EXPLAIN carries est_rows,
    # and the JSON dump is well-formed.
    local out="${STATS_JSON:-target/stats.json}"
    echo "==> stats smoke (-> $out)"
    cargo run --release -q -p squery-bench --bin stats-watch -- \
        --smoke --json "$out"
}

case "$only" in
    "") run_fmt; run_clippy; run_lint; run_test ;;
    fmt) run_fmt ;;
    clippy) run_clippy ;;
    lint) run_lint ;;
    test) run_test ;;
    chaos) run_chaos ;;
    trace) run_trace ;;
    stats) run_stats ;;
    *)
        echo "unknown step '$only' (known: fmt, clippy, lint, test, chaos, trace, stats)" >&2
        exit 2
        ;;
esac

echo "All checks passed."
