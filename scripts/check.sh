#!/usr/bin/env bash
# Local CI gate: formatting, lints, the full test suite, and the chaos soak.
# Usage: scripts/check.sh [--fix] [--only fmt|clippy|test|chaos]
#   --fix         apply rustfmt instead of only checking
#   --only STEP   run a single step (what the CI jobs call)
set -euo pipefail
cd "$(dirname "$0")/.."

fix=0
only=""
while [[ $# -gt 0 ]]; do
    case "$1" in
        --fix) fix=1; shift ;;
        --only)
            only="${2:-}"
            if [[ -z "$only" ]]; then
                echo "--only requires an argument: fmt|clippy|test|chaos" >&2
                exit 2
            fi
            shift 2
            ;;
        *)
            echo "unknown argument '$1' (usage: scripts/check.sh [--fix] [--only fmt|clippy|test|chaos])" >&2
            exit 2
            ;;
    esac
done

run_fmt() {
    if [[ "$fix" == 1 ]]; then
        echo "==> cargo fmt"
        cargo fmt --all
    else
        echo "==> cargo fmt --check"
        cargo fmt --all -- --check
    fi
}

run_clippy() {
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
}

run_test() {
    echo "==> cargo test --workspace -q"
    cargo test --workspace -q
}

run_chaos() {
    # Fixed seed range inside a fixed time budget: a deterministic soak of
    # the fault-injection + supervised-recovery path (~60 s ceiling).
    echo "==> chaos soak (100 seeds, 60 s budget)"
    cargo run --release -q -p squery-bench --bin chaos -- \
        --seeds 100 --base-seed 1 --time-budget-secs 60
}

case "$only" in
    "") run_fmt; run_clippy; run_test ;;
    fmt) run_fmt ;;
    clippy) run_clippy ;;
    test) run_test ;;
    chaos) run_chaos ;;
    *)
        echo "unknown step '$only' (known: fmt, clippy, test, chaos)" >&2
        exit 2
        ;;
esac

echo "All checks passed."
