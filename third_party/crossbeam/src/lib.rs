//! Vendored offline shim exposing the subset of `crossbeam`'s API this
//! workspace uses: MPMC channels with cloneable senders *and* receivers,
//! bounded (blocking send) and unbounded flavours, and timeout-aware
//! receives. Implemented over `Mutex<VecDeque>` + `Condvar`; correctness
//! over raw speed — the engine's hot paths batch work per message, so
//! channel overhead is not the bottleneck at this scale.
//!
//! Like the parking_lot shim, the channel carries a ThreadSanitizer-visible
//! happens-before token (`Inner::hb`): the std mutex/condvar synchronize
//! through futexes TSan cannot intercept, so without it every message
//! handoff under `-Zsanitizer=thread` reports as a false race. Every path
//! `Acquire`-loads the token right after taking the queue lock (and after a
//! condvar wait reacquires it) and `Release`-bumps it just before the lock
//! is released (including into a wait) — the same unlock→lock edge the real
//! mutex provides, so no genuine race is masked.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        /// Signalled when a message arrives or all senders disconnect.
        recv_ready: Condvar,
        /// Signalled when capacity frees up or all receivers disconnect.
        send_ready: Condvar,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        /// TSan happens-before token for the futex-backed queue mutex.
        hb: AtomicUsize,
    }

    impl<T> Inner<T> {
        fn lock_queue(&self) -> MutexGuard<'_, VecDeque<T>> {
            let queue = self.queue.lock().unwrap_or_else(|p| p.into_inner());
            self.hb.load(Ordering::Acquire);
            queue
        }

        fn unlock_queue(&self, queue: MutexGuard<'_, VecDeque<T>>) {
            self.hb.fetch_add(1, Ordering::Release);
            drop(queue);
        }

        /// Wait on `cv`, keeping the hb token consistent across the
        /// release/reacquire the wait performs internally.
        fn wait_on<'a>(
            &self,
            cv: &Condvar,
            queue: MutexGuard<'a, VecDeque<T>>,
            timeout: Option<Duration>,
        ) -> MutexGuard<'a, VecDeque<T>> {
            self.hb.fetch_add(1, Ordering::Release);
            let queue = match timeout {
                None => cv.wait(queue).unwrap_or_else(|p| p.into_inner()),
                Some(t) => {
                    cv.wait_timeout(queue, t)
                        .unwrap_or_else(|p| p.into_inner())
                        .0
                }
            };
            self.hb.load(Ordering::Acquire);
            queue
        }
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; cloneable (messages go to whichever receiver
    /// dequeues first, as in crossbeam).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// An unbounded channel: sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// A bounded channel: sends block while `cap` messages are queued.
    /// `cap = 0` is treated as capacity 1 (this shim has no rendezvous mode;
    /// the workspace only uses small positive capacities).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            hb: AtomicUsize::new(0),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.inner.recv_ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.inner.send_ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Send `msg`, blocking while a bounded channel is full. Errors only
        /// when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut queue = self.inner.lock_queue();
            if let Some(cap) = self.inner.capacity {
                while queue.len() >= cap {
                    if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                        self.inner.unlock_queue(queue);
                        return Err(SendError(msg));
                    }
                    queue = self.inner.wait_on(
                        &self.inner.send_ready,
                        queue,
                        Some(Duration::from_millis(50)),
                    );
                }
            }
            if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                self.inner.unlock_queue(queue);
                return Err(SendError(msg));
            }
            queue.push_back(msg);
            self.inner.unlock_queue(queue);
            self.inner.recv_ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.lock_queue();
            loop {
                if let Some(msg) = queue.pop_front() {
                    self.inner.unlock_queue(queue);
                    self.inner.send_ready.notify_one();
                    return Ok(msg);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    self.inner.unlock_queue(queue);
                    return Err(RecvError);
                }
                queue = self.inner.wait_on(&self.inner.recv_ready, queue, None);
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.inner.lock_queue();
            if let Some(msg) = queue.pop_front() {
                self.inner.unlock_queue(queue);
                self.inner.send_ready.notify_one();
                return Ok(msg);
            }
            let err = if self.inner.senders.load(Ordering::SeqCst) == 0 {
                TryRecvError::Disconnected
            } else {
                TryRecvError::Empty
            };
            self.inner.unlock_queue(queue);
            Err(err)
        }

        /// Receive, blocking at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.inner.lock_queue();
            loop {
                if let Some(msg) = queue.pop_front() {
                    self.inner.unlock_queue(queue);
                    self.inner.send_ready.notify_one();
                    return Ok(msg);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    self.inner.unlock_queue(queue);
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    self.inner.unlock_queue(queue);
                    return Err(RecvTimeoutError::Timeout);
                }
                queue = self
                    .inner
                    .wait_on(&self.inner.recv_ready, queue, Some(remaining));
            }
        }

        /// Blocking iterator: yields messages until all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            let queue = self.inner.lock_queue();
            let n = queue.len();
            self.inner.unlock_queue(queue);
            n
        }

        /// Whether no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Blocking iterator over a [`Receiver`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_observed() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            let t = thread::spawn(move || {
                thread::sleep(Duration::from_millis(20));
                tx.send(42).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
            t.join().unwrap();
        }

        #[test]
        fn bounded_send_blocks_until_capacity_frees() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = thread::spawn(move || {
                tx.send(2).unwrap(); // blocks until the 1 is consumed
            });
            thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap();
        }

        #[test]
        fn mpmc_many_producers_many_consumers() {
            let (tx, rx) = unbounded();
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let tx = tx.clone();
                    thread::spawn(move || {
                        for i in 0..100 {
                            tx.send(p * 100 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    thread::spawn(move || {
                        let mut n = 0;
                        while rx.recv().is_ok() {
                            n += 1;
                        }
                        n
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, 400);
        }
    }
}
