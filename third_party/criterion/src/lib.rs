//! Vendored offline shim exposing the subset of `criterion`'s API the
//! workspace benches use. The statistical machinery of the real crate is
//! replaced by a plain adaptive timing loop (warm up, then run enough
//! iterations to fill a short measurement window and report the mean),
//! so `cargo bench` still compiles, runs every bench target, and prints
//! one comparable number per benchmark.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation printed alongside the timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<name>/<parameter>`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives one benchmark's timing loop.
pub struct Bencher {
    total: Duration,
    iters: u64,
    measure_window: Duration,
}

impl Bencher {
    fn new(measure_window: Duration) -> Bencher {
        Bencher {
            total: Duration::ZERO,
            iters: 0,
            measure_window,
        }
    }

    /// Time repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few untimed calls.
        for _ in 0..3 {
            black_box(routine());
        }
        let window = self.measure_window;
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < window {
            black_box(routine());
            iters += 1;
        }
        self.total = start.elapsed();
        self.iters = iters.max(1);
    }

    /// Time `routine` on fresh inputs produced (untimed) by `setup`.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let window = self.measure_window;
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let wall = Instant::now();
        // Bound by wall time too: setup may dominate.
        while measured < window && wall.elapsed() < window * 4 {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            measured += t0.elapsed();
            iters += 1;
        }
        self.total = measured;
        self.iters = iters.max(1);
    }

    /// Let the routine time itself: it receives an iteration count and
    /// returns the elapsed time for exactly that many iterations.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        let iters = 10u64;
        self.total = routine(iters);
        self.iters = iters;
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        let ns = self.total.as_nanos() as f64 / self.iters as f64;
        let rate = throughput.map(|t| match t {
            Throughput::Bytes(b) => {
                let per_sec = b as f64 * self.iters as f64 / self.total.as_secs_f64();
                format!("  {:.1} MiB/s", per_sec / (1024.0 * 1024.0))
            }
            Throughput::Elements(e) => {
                let per_sec = e as f64 * self.iters as f64 / self.total.as_secs_f64();
                format!("  {per_sec:.0} elem/s")
            }
        });
        println!(
            "bench: {name:<48} {ns:>12.1} ns/iter ({} iters){}",
            self.iters,
            rate.unwrap_or_default()
        );
    }
}

/// The bench context handed to every `criterion_group!` function.
pub struct Criterion {
    measure_window: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measure_window: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.measure_window);
        f(&mut b);
        b.report(name, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benches with a throughput rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim's timing loop is adaptive.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.measure_window);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// Run a parameterized benchmark inside this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.measure_window);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// Close the group.
    pub fn finish(&mut self) {}
}

/// Declare a bench group: `criterion_group!(benches, fn_a, fn_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench entry point: `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("group");
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &x| b.iter(|| x * 2));
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion {
            measure_window: Duration::from_millis(5),
        };
        smoke(&mut c);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(10).to_string(), "10");
    }
}
