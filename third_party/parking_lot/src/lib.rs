//! Vendored offline shim exposing the subset of `parking_lot`'s API this
//! workspace uses, implemented over `std::sync`. The build environment has no
//! crate registry, so external dependencies are replaced by local path crates.
//!
//! Semantics preserved from the real crate:
//!
//! * `lock()` / `read()` / `write()` return guards directly (no poisoning —
//!   a poisoned std lock is transparently recovered, matching parking_lot's
//!   behaviour of never poisoning).
//! * `try_lock()` returns `Option<MutexGuard>`.
//!
//! Each lock also carries a ThreadSanitizer-visible happens-before token:
//! the prebuilt std synchronizes through futexes TSan cannot intercept, so
//! under `-Zsanitizer=thread` (scripts/check.sh --only tsan) every
//! lock-protected access would otherwise report as a false race. Guards bump
//! an instrumented atomic with `Release` just before unlocking and every
//! acquisition `Acquire`-loads it, recreating exactly the unlock→lock edge
//! the real lock provides. Real implementations establish the same edge
//! through their own (instrumented) state word, so this masks nothing TSan
//! would otherwise catch; the uncontended atomic is noise next to the futex.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::PoisonError;

/// A mutex whose `lock()` never fails (parking_lot-style, no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    hb: AtomicUsize,
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`] / [`Mutex::try_lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    hb: &'a AtomicUsize,
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Publish before the inner guard (dropped after this body) unlocks.
        self.hb.fetch_add(1, Ordering::Release);
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            hb: AtomicUsize::new(0),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        self.hb.load(Ordering::Acquire);
        MutexGuard {
            hb: &self.hb,
            inner,
        }
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        self.hb.load(Ordering::Acquire);
        Some(MutexGuard {
            hb: &self.hb,
            inner,
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read()`/`write()` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    hb: AtomicUsize,
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    hb: &'a AtomicUsize,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    hb: &'a AtomicUsize,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.hb.fetch_add(1, Ordering::Release);
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.hb.fetch_add(1, Ordering::Release);
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            hb: AtomicUsize::new(0),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        self.hb.load(Ordering::Acquire);
        RwLockReadGuard {
            hb: &self.hb,
            inner,
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        self.hb.load(Ordering::Acquire);
        RwLockWriteGuard {
            hb: &self.hb,
            inner,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_locks_and_mutates() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = Arc::new(RwLock::new(7));
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
