//! Vendored offline shim exposing the subset of `parking_lot`'s API this
//! workspace uses, implemented over `std::sync`. The build environment has no
//! crate registry, so external dependencies are replaced by local path crates.
//!
//! Semantics preserved from the real crate:
//!
//! * `lock()` / `read()` / `write()` return guards directly (no poisoning —
//!   a poisoned std lock is transparently recovered, matching parking_lot's
//!   behaviour of never poisoning).
//! * `try_lock()` returns `Option<MutexGuard>`.

use std::sync::PoisonError;

/// A mutex whose `lock()` never fails (parking_lot-style, no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`] / [`Mutex::try_lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read()`/`write()` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_locks_and_mutates() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = Arc::new(RwLock::new(7));
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
