//! Vendored offline shim exposing the subset of the `bytes` crate this
//! workspace uses: a growable [`BytesMut`] write buffer (big-endian
//! integer puts, `Deref<Target = [u8]>`) and a [`Buf`] read trait
//! implemented for `&[u8]`.

use std::ops::{Deref, DerefMut};

/// A growable byte buffer backed by `Vec<u8>`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether no bytes are written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Drop all contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Consume the buffer into its backing vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side operations (big-endian, matching the real crate's defaults).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Read-side operations over an advancing cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Read a big-endian `u64`, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than 8 bytes remain (as in the real crate).
    fn get_u64(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u64(&mut self) -> u64 {
        assert!(self.len() >= 8, "buffer underflow reading u64");
        let (head, tail) = self.split_at(8);
        let v = u64::from_be_bytes(head.try_into().expect("checked length"));
        *self = tail;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_get_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u64(0x0102_0304_0506_0708);
        buf.put_slice(b"ab");
        assert_eq!(buf.len(), 11);
        let mut r: &[u8] = &buf[1..9];
        assert_eq!(r.remaining(), 8);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(r.remaining(), 0);
        assert_eq!(&buf[9..], b"ab");
    }

    #[test]
    fn clear_keeps_working() {
        let mut buf = BytesMut::new();
        buf.put_u8(1);
        buf.clear();
        assert!(buf.is_empty());
        buf.put_u8(2);
        assert_eq!(&buf[..], &[2]);
    }
}
